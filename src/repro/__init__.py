"""PUSHtap reproduction: PIM-based in-memory HTAP with a unified data format.

This package reproduces the system described in *PUSHtap: PIM-based
In-Memory HTAP with Unified Data Storage Format* (ASPLOS 2025): a
functional + timing simulation of a UPMEM-like PIM memory system, the
unified compact-aligned data format, MVCC with bitmap snapshots and
CPU/PIM/hybrid defragmentation, OLTP (TPC-C) and OLAP (TPC-H on CH)
engines, and the paper's baselines and experiments.

Quickstart::

    from repro import PushTapEngine, dimm_system
    from repro.workloads import chbench

    engine = PushTapEngine.build(dimm_system(), scale=0.001)
"""

from repro import telemetry
from repro.core.config import dimm_system, hbm_system, SystemConfig
from repro.core.engine import PushTapEngine

__all__ = ["PushTapEngine", "SystemConfig", "dimm_system", "hbm_system", "telemetry"]
__version__ = "1.0.0"
