"""Lightweight metrics + tracing over the simulated HTAP stack.

Every runtime layer (PIM controller/executor, OLTP, OLAP, defrag,
workload driver) reports into one process-global registry:

* **counters** — launches, polls, handovers, commits, aborts, bytes;
* **gauges** — point-in-time values;
* **histograms** — latency distributions with exact p50/p95/p99;
* **spans** — named intervals on the *simulated* timeline.

Telemetry is off by default (the no-op registry is installed), so
benchmark runs pay only an attribute check per event. Turn it on around
a run and export::

    from repro import telemetry
    from repro.telemetry import export

    reg = telemetry.enable()
    ...  # run transactions / queries
    open("metrics.json", "w").write(export.to_json(reg))
    telemetry.disable()

or view a dump with ``python -m repro.experiments report-metrics FILE``.
"""

from repro.telemetry.metrics import Counter, Gauge, Histogram, SpanEvent
from repro.telemetry.registry import (
    MetricsRegistry,
    NoopRegistry,
    active,
    disable,
    enable,
    enabled,
    install,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "SpanEvent",
    "MetricsRegistry",
    "NoopRegistry",
    "active",
    "disable",
    "enable",
    "enabled",
    "install",
]
