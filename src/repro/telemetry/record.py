"""Segment-recording registry for parallel shard workers.

A :class:`RecordingRegistry` is a full :class:`MetricsRegistry` that
additionally journals every metric mutation into per-segment event
lists. A shard worker installs one, executes its operation sub-stream,
and ships the segments back to the coordinator; the coordinator's
:class:`SegmentReplayer` re-applies them onto the *sequential* registry
in the sequential interleaving order, so a ``jobs=N`` run exports
telemetry byte-identical to ``jobs=1``.

Two subtleties make naive "replay the recorded spans" wrong:

* **Explicit span starts are cursor values.** A worker's cursor runs on
  its own trajectory (only its shard's events), so recorded start
  timestamps are meaningless on the coordinator's timeline. The
  recorder therefore resolves every explicit ``start`` against the
  *boundary log* — the sequence of cursor positions produced by
  serial (no-``start``) spans — and journals the boundary *index*; the
  replayer maps the index back to its own boundary at the same ordinal.

* **Cursor-derived durations must be recomputed, not replayed.**
  ``record_window_span`` / ``record_gap_span`` durations are float
  differences of cursor positions; summing the same durations from a
  different origin can round differently in the last ULP. The recorder
  journals the *inputs* (boundary index, total) and the replayer redoes
  the arithmetic on the sequential cursor — exactly what a ``jobs=1``
  run computes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ParallelExecutionError
from repro.telemetry.metrics import Counter, Gauge, Histogram, SpanEvent
from repro.telemetry.registry import MetricsRegistry

__all__ = ["RecordingRegistry", "SegmentReplayer", "Segment"]

#: One journaled segment: a flat list of metric-mutation events.
Segment = List[tuple]


class _RecordingCounter:
    """Counter wrapper journaling every increment."""

    __slots__ = ("_metric", "_registry")

    def __init__(self, metric: Counter, registry: "RecordingRegistry") -> None:
        self._metric = metric
        self._registry = registry

    def inc(self, amount: float = 1.0) -> None:
        self._metric.inc(amount)
        self._registry._log.append(("c", self._metric.name, amount))

    def __getattr__(self, name):
        return getattr(self._metric, name)


class _RecordingGauge:
    """Gauge wrapper journaling every mutation."""

    __slots__ = ("_metric", "_registry")

    def __init__(self, metric: Gauge, registry: "RecordingRegistry") -> None:
        self._metric = metric
        self._registry = registry

    def set(self, value: float) -> None:
        self._metric.set(value)
        self._registry._log.append(("g", self._metric.name, value))

    def add(self, delta: float) -> None:
        self._metric.add(delta)
        self._registry._log.append(("ga", self._metric.name, delta))

    def __getattr__(self, name):
        return getattr(self._metric, name)


class _RecordingHistogram:
    """Histogram wrapper journaling every observation."""

    __slots__ = ("_metric", "_registry")

    def __init__(self, metric: Histogram, registry: "RecordingRegistry") -> None:
        self._metric = metric
        self._registry = registry

    def observe(self, value: float) -> None:
        self._metric.observe(value)
        self._registry._log.append(("h", self._metric.name, value))

    def __getattr__(self, name):
        return getattr(self._metric, name)


class RecordingRegistry(MetricsRegistry):
    """A metrics registry that journals mutations into segments.

    The worker still accumulates real metrics (so worker-side code that
    *reads* telemetry — e.g. ``sim_time`` windows — behaves exactly as
    in a sequential run); the journal is what travels to the
    coordinator.
    """

    def __init__(self, max_histogram_samples: Optional[int] = None) -> None:
        super().__init__(max_histogram_samples)
        self._log: Segment = []
        self._wrappers: Dict[Tuple[str, str], object] = {}
        # Boundary log of the current segment: cursor value -> ordinal.
        self._boundaries: Dict[float, int] = {self._sim_cursor: 0}
        self._boundary_count = 1

    # ------------------------------------------------------------------
    # Segments
    # ------------------------------------------------------------------
    def begin_segment(self) -> None:
        """Start journaling a fresh segment at the current cursor."""
        self._log = []
        self._boundaries = {self._sim_cursor: 0}
        self._boundary_count = 1

    def end_segment(self) -> Segment:
        """Detach and return the events journaled since ``begin_segment``."""
        log = self._log
        self._log = []
        return log

    # ------------------------------------------------------------------
    # Metric access
    # ------------------------------------------------------------------
    def counter(self, name: str):
        metric = super().counter(name)
        key = ("c", metric.name)
        wrapper = self._wrappers.get(key)
        if wrapper is None:
            wrapper = self._wrappers[key] = _RecordingCounter(metric, self)
        return wrapper

    def gauge(self, name: str):
        metric = super().gauge(name)
        key = ("g", metric.name)
        wrapper = self._wrappers.get(key)
        if wrapper is None:
            wrapper = self._wrappers[key] = _RecordingGauge(metric, self)
        return wrapper

    def histogram(self, name: str):
        metric = super().histogram(name)
        key = ("h", metric.name)
        wrapper = self._wrappers.get(key)
        if wrapper is None:
            wrapper = self._wrappers[key] = _RecordingHistogram(metric, self)
        return wrapper

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def _mark_boundary(self) -> None:
        self._boundaries[self._sim_cursor] = self._boundary_count
        self._boundary_count += 1

    def _boundary_ref(self, start: float, name: str) -> int:
        ref = self._boundaries.get(start)
        if ref is None:
            raise ParallelExecutionError(
                f"span {name!r}: explicit start {start} does not match a "
                "segment boundary; this span pattern cannot be replayed "
                "deterministically under jobs > 1"
            )
        return ref

    def record_span(
        self,
        name: str,
        duration: float,
        attrs: Optional[Mapping[str, object]] = None,
        start: Optional[float] = None,
    ) -> SpanEvent:
        if start is None:
            span = super().record_span(name, duration, attrs)
            self._mark_boundary()
            self._log.append(("s", span.name, duration, span.attrs, None))
            return span
        ref = self._boundary_ref(start, name)
        span = super().record_span(name, duration, attrs, start=start)
        self._log.append(("s", span.name, duration, span.attrs, ref))
        return span

    def record_window_span(
        self,
        name: str,
        base: float,
        attrs: Optional[Mapping[str, object]] = None,
    ) -> SpanEvent:
        ref = self._boundary_ref(base, name)
        span = MetricsRegistry.record_span(
            self, name, self._sim_cursor - base, attrs, start=base
        )
        self._log.append(("w", span.name, span.attrs, ref))
        return span

    def record_gap_span(
        self,
        name: str,
        total: float,
        base: float,
        attrs: Optional[Mapping[str, object]] = None,
    ) -> Optional[SpanEvent]:
        ref = self._boundary_ref(base, name)
        gap = total - (self._sim_cursor - base)
        span = None
        if gap > 1e-9:
            span = MetricsRegistry.record_span(self, name, gap, attrs)
            self._mark_boundary()
        self._log.append(
            (
                "gap",
                self._full(name),
                total,
                tuple(sorted(attrs.items())) if attrs else (),
                ref,
            )
        )
        return span

    def advance_to(self, ts: float) -> None:
        raise ParallelExecutionError(
            "advance_to is not replayable; this code path cannot run "
            "inside a parallel shard worker"
        )


class SegmentReplayer:
    """Re-applies journaled segments onto the sequential registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def replay(self, segment: Segment) -> None:
        """Apply one segment's events at the current cursor position."""
        tel = self.registry
        boundaries: List[float] = [tel.sim_time]
        for event in segment:
            kind = event[0]
            if kind == "c":
                tel.counter(event[1]).inc(event[2])
            elif kind == "h":
                tel.histogram(event[1]).observe(event[2])
            elif kind == "g":
                tel.gauge(event[1]).set(event[2])
            elif kind == "ga":
                tel.gauge(event[1]).add(event[2])
            elif kind == "s":
                _, name, duration, attrs, ref = event
                if ref is None:
                    tel.record_span(name, duration, dict(attrs))
                    boundaries.append(tel.sim_time)
                else:
                    tel.record_span(
                        name, duration, dict(attrs), start=boundaries[ref]
                    )
            elif kind == "w":
                _, name, attrs, ref = event
                tel.record_window_span(name, boundaries[ref], dict(attrs))
            elif kind == "gap":
                _, name, total, attrs, ref = event
                if tel.record_gap_span(name, total, boundaries[ref], dict(attrs)):
                    boundaries.append(tel.sim_time)
            else:  # pragma: no cover - journal corruption
                raise ParallelExecutionError(f"unknown journal event {event!r}")
