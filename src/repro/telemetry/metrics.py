"""Metric primitives: counters, gauges, and sample-backed histograms.

These are dependency-free value holders. They carry no locking (the
simulator is single-threaded) and no wall-clock reads — every observed
quantity is *simulated* time or a count, supplied by the caller.

Each class has a ``Null*`` twin whose mutators are no-ops; the registry
hands those out when telemetry is disabled so instrumented code pays
(nearly) nothing on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, floor
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "SpanEvent",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]

#: Quantiles every histogram summary reports.
SUMMARY_QUANTILES = (0.50, 0.95, 0.99)


class Counter:
    """A monotonically increasing count (events, bytes, rows, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        self.value += amount

    def as_dict(self) -> Dict[str, float]:
        """Summary used by the exporters."""
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value that can move both ways (depths, fractions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (either sign)."""
        self.value += delta

    def as_dict(self) -> Dict[str, float]:
        """Summary used by the exporters."""
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A latency/size distribution that keeps its raw samples.

    Keeping samples exact (rather than bucketed) is affordable at
    simulator scale and makes quantiles and exporter round-trips exact.

    With ``max_samples`` set the histogram switches to a *bounded* mode
    for long profiling runs: ``count``/``sum``/``min``/``max`` stay
    exact, but only a deterministic systematic subset of samples is
    retained (every 2^k-th observation, with k growing as the stream
    does), so quantiles become approximations over that subset. The
    decimation is seed-free: two runs observing the same stream retain
    the same samples.

    A histogram can also be *summary-only* (see :meth:`from_summary`):
    rebuilt from an export without raw samples, it answers the summary
    statistics it was saved with and refuses everything else.
    """

    __slots__ = (
        "name",
        "_samples",
        "_sorted",
        "_count",
        "_sum",
        "_min",
        "_max",
        "max_samples",
        "_stride",
        "_frozen_quantiles",
    )

    def __init__(
        self,
        name: str,
        samples: Optional[List[float]] = None,
        max_samples: Optional[int] = None,
    ) -> None:
        if max_samples is not None and max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        self._samples: List[float] = []
        self._sorted = False
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self.max_samples = max_samples
        #: Observation stride of the systematic sample (1 = keep all).
        self._stride = 1
        #: Quantile table of a summary-only histogram, else None.
        self._frozen_quantiles: Optional[Dict[float, float]] = None
        if samples:
            for value in samples:
                self.observe(value)

    @classmethod
    def from_summary(cls, name: str, summary: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram from a sample-free exporter summary.

        The result is *summary-only*: it reports the saved count, sum,
        mean, min, max, and the saved quantiles, but raises on
        :meth:`observe` and on quantiles that were not exported —
        the raw distribution is gone and cannot be extended honestly.
        """
        hist = cls(name)
        hist._count = int(summary.get("count", 0))
        hist._sum = float(summary.get("sum", 0.0))
        if hist._count:
            hist._min = float(summary.get("min", 0.0))
            hist._max = float(summary.get("max", 0.0))
        hist._frozen_quantiles = {
            q: float(summary[f"p{int(q * 100)}"])
            for q in SUMMARY_QUANTILES
            if f"p{int(q * 100)}" in summary
        }
        return hist

    @property
    def summary_only(self) -> bool:
        """Whether this histogram was reloaded without raw samples."""
        return self._frozen_quantiles is not None

    def observe(self, value: float) -> None:
        """Record one sample."""
        if self._frozen_quantiles is not None:
            raise ValueError(
                f"histogram {self.name!r} is summary-only (reloaded from an "
                "export without samples) and cannot record new samples"
            )
        if (self._count % self._stride) == 0:
            self._samples.append(value)
            self._sorted = False
            if self.max_samples is not None and len(self._samples) > self.max_samples:
                # Deterministic decimation: keep every other retained
                # sample and double the stride for future observations.
                self._samples = self._samples[::2]
                self._stride *= 2
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def samples(self) -> List[float]:
        """The retained samples (all of them unless bounded)."""
        return list(self._samples)

    @property
    def count(self) -> int:
        """Number of recorded samples (exact even in bounded mode)."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all samples (exact even in bounded mode)."""
        return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        """Largest sample (0.0 when empty)."""
        return self._max if self._max is not None else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile ``q`` in [0, 1] (0.0 when empty).

        In bounded mode the quantile is computed over the retained
        systematic sample; on a summary-only histogram, only the
        quantiles saved in the export are available.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._frozen_quantiles is not None:
            if q in self._frozen_quantiles:
                return self._frozen_quantiles[q]
            raise ValueError(
                f"histogram {self.name!r} is summary-only; quantile {q} was "
                f"not exported (available: {sorted(self._frozen_quantiles)})"
            )
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        pos = q * (len(self._samples) - 1)
        lo, hi = floor(pos), ceil(pos)
        if lo == hi:
            return self._samples[lo]
        frac = pos - lo
        return self._samples[lo] * (1.0 - frac) + self._samples[hi] * frac

    @property
    def p50(self) -> float:
        """Median."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.quantile(0.99)

    def as_dict(self, include_samples: bool = True) -> Dict[str, object]:
        """Summary (and optionally raw samples) used by the exporters."""
        out: Dict[str, object] = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for q in SUMMARY_QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        if include_samples:
            out["samples"] = self.samples
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


@dataclass(frozen=True)
class SpanEvent:
    """One span on the simulated timeline.

    ``start`` and ``duration`` are simulated nanoseconds supplied by the
    instrumented layer — the simulator has no wall clock to measure.
    """

    name: str
    start: float
    duration: float
    attrs: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    @property
    def end(self) -> float:
        """Span end on the simulated timeline."""
        return self.start + self.duration

    def as_dict(self) -> Dict[str, object]:
        """Mapping used by the exporters."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class NullCounter:
    """No-op counter handed out when telemetry is disabled."""

    __slots__ = ()
    name = "<null>"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""

    def as_dict(self) -> Dict[str, float]:
        """Empty summary."""
        return {"value": 0.0}


class NullGauge:
    """No-op gauge handed out when telemetry is disabled."""

    __slots__ = ()
    name = "<null>"
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the value."""

    def add(self, delta: float) -> None:
        """Discard the delta."""

    def as_dict(self) -> Dict[str, float]:
        """Empty summary."""
        return {"value": 0.0}


class NullHistogram:
    """No-op histogram handed out when telemetry is disabled."""

    __slots__ = ()
    name = "<null>"
    samples: List[float] = []
    count = 0
    sum = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0
    p50 = 0.0
    p95 = 0.0
    p99 = 0.0

    def observe(self, value: float) -> None:
        """Discard the sample."""

    def quantile(self, q: float) -> float:
        """Always 0.0."""
        return 0.0

    def as_dict(self, include_samples: bool = True) -> Dict[str, object]:
        """Empty summary."""
        return {"count": 0, "sum": 0.0}


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()
