"""The metrics registry and the process-global telemetry switch.

A :class:`MetricsRegistry` owns every metric by dotted name plus the
span log. One registry is installed process-wide; it starts as the
shared no-op registry, so un-instrumented runs pay only an attribute
check per event. :func:`enable` swaps in a recording registry,
:func:`disable` swaps the no-op back.

Instrumented code follows one pattern::

    from repro import telemetry

    tel = telemetry.active()
    if tel.enabled:
        tel.counter("oltp.txn.committed").inc()
        tel.histogram("oltp.txn.payment.latency_ns").observe(t)
        tel.record_span("pim.phase.load", duration_ns, {"chunk": 0})

Names are hierarchical (``layer.component.metric``); :meth:`scope`
pushes a name prefix so nested code can use short local names.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional

from repro.telemetry.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    SpanEvent,
)

__all__ = [
    "MetricsRegistry",
    "NoopRegistry",
    "active",
    "enable",
    "disable",
    "enabled",
    "install",
]


class MetricsRegistry:
    """Holds every named metric and the span log of one run."""

    enabled = True

    def __init__(self, max_histogram_samples: Optional[int] = None) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: List[SpanEvent] = []
        self._prefix: List[str] = []
        #: Cursor of the serial simulated timeline; spans recorded without
        #: an explicit start are laid out end-to-end from here.
        self._sim_cursor = 0.0
        #: When set, histograms created by this registry retain at most
        #: this many raw samples (deterministic decimation; exact
        #: count/sum/min/max either way). Long profiling runs set this.
        self.max_histogram_samples = max_histogram_samples
        #: When true, instrumented layers may emit fine-grained spans
        #: (e.g. per-PIM-unit load/compute) that are too voluminous for
        #: ordinary metric dumps. The profiler turns this on.
        self.detail_spans = False
        #: When true, instrumented layers emit roofline accounting —
        #: per-operator bandwidth/op-intensity counters, extended span
        #: attributes, and row-buffer shadow tracking. Off by default so
        #: committed BENCH baselines (exact key diffs) stay bit-identical;
        #: the ``roofline`` subcommand and report-metrics turn it on.
        self.roofline = False

    # ------------------------------------------------------------------
    # Metric access (create-on-first-use)
    # ------------------------------------------------------------------
    def _full(self, name: str) -> str:
        if not name:
            raise ValueError("metric name must be non-empty")
        return ".".join(self._prefix + [name]) if self._prefix else name

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        full = self._full(name)
        metric = self.counters.get(full)
        if metric is None:
            metric = self.counters[full] = Counter(full)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        full = self._full(name)
        metric = self.gauges.get(full)
        if metric is None:
            metric = self.gauges[full] = Gauge(full)
        return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        full = self._full(name)
        metric = self.histograms.get(full)
        if metric is None:
            metric = self.histograms[full] = Histogram(
                full, max_samples=self.max_histogram_samples
            )
        return metric

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def record_span(
        self,
        name: str,
        duration: float,
        attrs: Optional[Mapping[str, object]] = None,
        start: Optional[float] = None,
    ) -> SpanEvent:
        """Record one span of simulated time.

        Without an explicit ``start`` the span is appended at the current
        timeline cursor, which then advances by ``duration`` — matching
        the serial engine, where phases/queries/transactions follow each
        other on one simulated clock.
        """
        if duration < 0:
            raise ValueError(f"span {name!r}: negative duration {duration}")
        if start is None:
            start = self._sim_cursor
            self._sim_cursor = start + duration
        span = SpanEvent(
            self._full(name),
            start,
            duration,
            tuple(sorted(attrs.items())) if attrs else (),
        )
        self.spans.append(span)
        return span

    def record_window_span(
        self,
        name: str,
        base: float,
        attrs: Optional[Mapping[str, object]] = None,
    ) -> SpanEvent:
        """Record a wrapper span covering the cursor advance since ``base``.

        ``base`` must be an earlier value of :attr:`sim_time`. Keeping
        the ``sim_time - base`` arithmetic inside the registry lets a
        replaying registry recompute the duration on its own cursor
        trajectory instead of trusting a recorded float.
        """
        return self.record_span(name, self._sim_cursor - base, attrs, start=base)

    def record_gap_span(
        self,
        name: str,
        total: float,
        base: float,
        attrs: Optional[Mapping[str, object]] = None,
    ) -> Optional[SpanEvent]:
        """Record the gap between ``total`` and the advance since ``base``.

        Used for host-side (CPU) time that a wrapped operation charged
        beyond what its sub-spans laid out on the timeline. Gaps at or
        below float noise are dropped.
        """
        gap = total - (self._sim_cursor - base)
        if gap > 1e-9:
            return self.record_span(name, gap, attrs)
        return None

    @property
    def sim_time(self) -> float:
        """Current cursor of the serial simulated timeline (ns)."""
        return self._sim_cursor

    def advance_to(self, ts: float) -> None:
        """Move the timeline cursor forward to ``ts`` (never backwards).

        Instrumented layers use this to align the cursor with the end of
        a wrapper span recorded at an explicit start, so later serial
        spans continue after it rather than overlapping it.
        """
        if ts > self._sim_cursor:
            self._sim_cursor = ts

    # ------------------------------------------------------------------
    # Scopes
    # ------------------------------------------------------------------
    @contextmanager
    def scope(self, name: str) -> Iterator["MetricsRegistry"]:
        """Prefix every metric/span name inside the block with ``name``."""
        if not name:
            raise ValueError("scope name must be non-empty")
        self._prefix.append(name)
        try:
            yield self
        finally:
            self._prefix.pop()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every metric and span (prefixes survive)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()
        self._sim_cursor = 0.0


class NoopRegistry:
    """The disabled registry: every operation is a cheap no-op."""

    enabled = False
    counters: Dict[str, Counter] = {}
    gauges: Dict[str, Gauge] = {}
    histograms: Dict[str, Histogram] = {}
    spans: List[SpanEvent] = []
    sim_time = 0.0
    max_histogram_samples = None
    detail_spans = False
    roofline = False

    def counter(self, name: str) -> "Counter":
        """The shared null counter."""
        return NULL_COUNTER  # type: ignore[return-value]

    def gauge(self, name: str) -> "Gauge":
        """The shared null gauge."""
        return NULL_GAUGE  # type: ignore[return-value]

    def histogram(self, name: str) -> "Histogram":
        """The shared null histogram."""
        return NULL_HISTOGRAM  # type: ignore[return-value]

    def record_span(self, name, duration, attrs=None, start=None) -> None:
        """Discard the span."""
        return None

    def record_window_span(self, name, base, attrs=None) -> None:
        """Discard the span."""
        return None

    def record_gap_span(self, name, total, base, attrs=None) -> None:
        """Discard the span."""
        return None

    def advance_to(self, ts: float) -> None:
        """Nothing to advance."""

    @contextmanager
    def scope(self, name: str) -> Iterator["NoopRegistry"]:
        """No-op scope."""
        yield self

    def reset(self) -> None:
        """Nothing to drop."""


_NOOP = NoopRegistry()
_active: object = _NOOP


def active():
    """The currently installed registry (recording or no-op)."""
    return _active


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _active.enabled  # type: ignore[union-attr]


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) a recording registry process-wide.

    A fresh registry is created unless one is passed in; enabling twice
    without an argument keeps the already-recording registry.
    """
    global _active
    if registry is not None:
        _active = registry
    elif not isinstance(_active, MetricsRegistry):
        _active = MetricsRegistry()
    return _active  # type: ignore[return-value]


def disable() -> None:
    """Swap the no-op registry back in (recorded data is dropped)."""
    global _active
    _active = _NOOP


def install(registry) -> None:
    """Install an arbitrary registry object (tests use this)."""
    global _active
    _active = registry
