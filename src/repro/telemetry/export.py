"""Exporters: registry ↔ dict/JSON, plus flat CSV and a text report.

The JSON form is lossless for counters, gauges, and histograms (raw
samples are included), so ``from_json(to_json(reg))`` reproduces every
summary statistic exactly — the property the exporter tests lock in.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List

from repro.telemetry.metrics import Counter, Gauge, Histogram, SpanEvent
from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "to_dict",
    "from_dict",
    "to_json",
    "from_json",
    "to_csv",
    "render_report",
]

#: Schema version stamped into every export.
FORMAT_VERSION = 1


def to_dict(registry: MetricsRegistry, include_samples: bool = True) -> Dict:
    """Serialize a registry to a plain dict (JSON-compatible)."""
    return {
        "version": FORMAT_VERSION,
        "counters": {n: c.value for n, c in sorted(registry.counters.items())},
        "gauges": {n: g.value for n, g in sorted(registry.gauges.items())},
        "histograms": {
            n: h.as_dict(include_samples=include_samples)
            for n, h in sorted(registry.histograms.items())
        },
        "spans": [s.as_dict() for s in registry.spans],
    }


def from_dict(data: Dict) -> MetricsRegistry:
    """Rebuild a registry from :func:`to_dict` output."""
    registry = MetricsRegistry()
    for name, value in data.get("counters", {}).items():
        registry.counters[name] = Counter(name, value)
    for name, value in data.get("gauges", {}).items():
        registry.gauges[name] = Gauge(name, value)
    for name, summary in data.get("histograms", {}).items():
        if "samples" in summary:
            registry.histograms[name] = Histogram(name, summary["samples"])
        else:
            # Dump written with include_samples=False: the raw
            # distribution is gone, but the count/sum/quantile summary
            # must survive the round-trip rather than silently reloading
            # as an empty histogram.
            registry.histograms[name] = Histogram.from_summary(name, summary)
    for span in data.get("spans", []):
        registry.spans.append(
            SpanEvent(
                span["name"],
                span["start"],
                span["duration"],
                tuple(sorted(span.get("attrs", {}).items())),
            )
        )
    return registry


def to_json(registry: MetricsRegistry, include_samples: bool = True) -> str:
    """Serialize a registry to a JSON string."""
    return json.dumps(to_dict(registry, include_samples=include_samples), indent=2)


def from_json(text: str) -> MetricsRegistry:
    """Rebuild a registry from :func:`to_json` output."""
    return from_dict(json.loads(text))


def to_csv(registry: MetricsRegistry) -> str:
    """Flatten a registry to ``kind,name,field,value`` CSV rows."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["kind", "name", "field", "value"])
    for name, counter in sorted(registry.counters.items()):
        writer.writerow(["counter", name, "value", counter.value])
    for name, gauge in sorted(registry.gauges.items()):
        writer.writerow(["gauge", name, "value", gauge.value])
    for name, hist in sorted(registry.histograms.items()):
        for key, value in hist.as_dict(include_samples=False).items():
            writer.writerow(["histogram", name, key, value])
    for span in registry.spans:
        writer.writerow(["span", span.name, "start", span.start])
        writer.writerow(["span", span.name, "duration", span.duration])
    return buf.getvalue()


def _rowbuffer_rows(counters: Dict[str, Counter]) -> List[List[str]]:
    """Group ``*.rowbuffer.<lane>.*`` counters into per-lane rate rows."""
    lanes: Dict[str, Dict[str, float]] = {}
    for name, counter in counters.items():
        if ".rowbuffer." not in name:
            continue
        lane, _, metric = name.rpartition(".")
        if metric in ("hits", "misses", "conflicts", "bytes"):
            lanes.setdefault(lane, {})[metric] = counter.value
    rows: List[List[str]] = []
    for lane, stats in sorted(lanes.items()):
        hits = stats.get("hits", 0)
        misses = stats.get("misses", 0)
        conflicts = stats.get("conflicts", 0)
        accesses = hits + misses + conflicts
        if accesses <= 0:
            continue
        rows.append(
            [
                lane,
                f"{accesses:,.0f}",
                f"{hits / accesses:.1%}",
                f"{misses / accesses:.1%}",
                f"{conflicts / accesses:.1%}",
                f"{stats.get('bytes', 0):,.0f}",
            ]
        )
    return rows


def render_report(registry: MetricsRegistry) -> str:
    """Human-readable summary of a registry (the CLI's output)."""
    from repro.report import format_table, format_time_ns

    sections: List[str] = []
    rowbuffer_rows = _rowbuffer_rows(registry.counters)
    if rowbuffer_rows:
        sections.append("row buffer (per lane):")
        sections.append(
            format_table(
                ["lane", "accesses", "hit", "miss", "conflict", "bytes"],
                rowbuffer_rows,
            )
        )
    if registry.counters:
        sections.append("counters:")
        sections.append(
            format_table(
                ["name", "value"],
                [[n, f"{c.value:,.0f}"] for n, c in sorted(registry.counters.items())],
            )
        )
    if registry.gauges:
        sections.append("gauges:")
        sections.append(
            format_table(
                ["name", "value"],
                [[n, f"{g.value:,.2f}"] for n, g in sorted(registry.gauges.items())],
            )
        )
    if registry.histograms:
        sections.append("histograms:")
        sections.append(
            format_table(
                ["name", "count", "mean", "p50", "p95", "p99"],
                [
                    [
                        n,
                        h.count,
                        format_time_ns(h.mean),
                        format_time_ns(h.p50),
                        format_time_ns(h.p95),
                        format_time_ns(h.p99),
                    ]
                    for n, h in sorted(registry.histograms.items())
                ],
            )
        )
    if registry.spans:
        from repro.trace.tracer import Tracer

        totals: Dict[str, List[float]] = {}
        for span in Tracer(registry.spans).spans:
            entry = totals.setdefault(span.name, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += span.duration
            entry[2] += span.self_time
        sections.append("spans (aggregated):")
        sections.append(
            format_table(
                ["name", "count", "total simulated time", "self time"],
                [
                    [n, int(count), format_time_ns(total), format_time_ns(self_t)]
                    for n, (count, total, self_t) in sorted(totals.items())
                ],
            )
        )
    if not sections:
        return "(no telemetry recorded)"
    return "\n".join(sections)
