"""Crash-sweep: inject a crash, recover, prove nothing committed was lost.

For one ``(hook, seed)`` cell the sweep:

1. builds an engine with durability enabled and drives a seeded TPC-C
   mix (with interleaved OLAP queries) until the crash hook kills the
   process — :class:`~repro.errors.SimulatedCrash` escapes mid-commit
   and the in-memory engine is abandoned with whatever reached disk;
2. recovers a fresh engine from the durability directory
   (checkpoint segments + WAL replay) and runs the
   :class:`~repro.faults.invariants.InvariantChecker` over it;
3. replays the *same* seeded workload on a never-crashed reference
   engine up to the recovered commit horizon (every executed
   transaction consumes exactly one timestamp, so the horizon is always
   hit exactly), and asserts Q1/Q6/Q9 results at that horizon are
   bit-identical between the recovered and reference engines.

A cell *survives* when recovery raises nothing, the invariants hold,
the stored liveness bitmaps match, and every compared query agrees.
Durability guarantees only cover what was acknowledged: a commit killed
before its WAL append simply does not exist after recovery, which is
why the reference runs to the recovered horizon, not the crash point.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import PushTapEngine
from repro.errors import ReproError, SimulatedCrash
from repro.faults import injector as faults
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import (
    CRASH_AFTER_WAL_APPEND,
    CRASH_BEFORE_WAL_APPEND,
    CRASH_MID_CHECKPOINT,
    FaultPlan,
    FaultRates,
)
from repro.olap.queries import run_query
from repro.wal.recovery import recover

__all__ = ["CRASH_SWEEP_HOOKS", "CrashSweepResult", "run_crash_sweep"]

#: The hooks a full sweep covers, in documentation order.
CRASH_SWEEP_HOOKS: Tuple[str, ...] = (
    CRASH_BEFORE_WAL_APPEND,
    CRASH_AFTER_WAL_APPEND,
    CRASH_MID_CHECKPOINT,
)

#: Default per-consultation rates. Append hooks are consulted once per
#: commit; the checkpoint hook only once per spill, so it needs a much
#: higher rate to strike within a short run.
_DEFAULT_RATES: Dict[str, float] = {
    CRASH_BEFORE_WAL_APPEND: 0.05,
    CRASH_AFTER_WAL_APPEND: 0.05,
    CRASH_MID_CHECKPOINT: 0.5,
}


@dataclass
class CrashSweepResult:
    """Outcome of one ``(hook, seed)`` crash-recovery cell."""

    hook: str
    seed: int
    rate: float
    plan_hash: str
    crash_fired: bool
    crashed_at_txn: Optional[int]
    committed_before_crash: int
    horizon: int
    checkpoint_horizon: int
    segments_applied: int
    wal_records_replayed: int
    torn_tail: bool
    orphan_segments: int
    violations: List[str] = field(default_factory=list)
    query_mismatches: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def survived(self) -> bool:
        """Recovery succeeded with invariants green and queries identical."""
        return not self.violations and not self.query_mismatches and self.error is None

    def as_dict(self) -> dict:
        return {
            "hook": self.hook,
            "seed": self.seed,
            "rate": self.rate,
            "plan_hash": self.plan_hash,
            "crash_fired": self.crash_fired,
            "crashed_at_txn": self.crashed_at_txn,
            "committed_before_crash": self.committed_before_crash,
            "horizon": self.horizon,
            "checkpoint_horizon": self.checkpoint_horizon,
            "segments_applied": self.segments_applied,
            "wal_records_replayed": self.wal_records_replayed,
            "torn_tail": self.torn_tail,
            "orphan_segments": self.orphan_segments,
            "violations": list(self.violations),
            "query_mismatches": list(self.query_mismatches),
            "error": self.error,
            "survived": self.survived,
        }


def _canonical_rows(rows: dict) -> List[Tuple[str, str]]:
    """Bit-faithful, order-free form of a query's result rows.

    ``repr`` of a Python float round-trips exactly, so two rows compare
    equal here iff their values are bit-identical.
    """

    def norm(value):
        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, tuple):
            return tuple(norm(item) for item in value)
        return value

    return sorted((repr(norm(key)), repr(norm(value))) for key, value in rows.items())


def run_crash_sweep(
    hook: str,
    seed: int,
    txns: int = 160,
    txns_per_query: int = 20,
    checkpoint_every: int = 24,
    scale: float = 2e-5,
    defrag_period: int = 100,
    controller_kind: str = "pushtap",
    delivery_fraction: float = 0.1,
    rate: Optional[float] = None,
    queries: Sequence[str] = ("Q1", "Q6", "Q9"),
    workdir: Optional[str] = None,
) -> CrashSweepResult:
    """Run one crash-recovery cell; see the module docstring."""
    if hook not in CRASH_SWEEP_HOOKS:
        raise ReproError(f"unknown crash hook {hook!r}; expected {CRASH_SWEEP_HOOKS}")
    rate = _DEFAULT_RATES[hook] if rate is None else float(rate)
    build_params = dict(
        scale=scale,
        seed=seed,
        controller_kind=controller_kind,
        defrag_period=defrag_period,
        block_rows=256,
    )
    temp = workdir is None
    path = tempfile.mkdtemp(prefix="crash-sweep-") if temp else workdir
    plan = FaultPlan(seed, FaultRates({hook: rate}))
    crashed_at: Optional[int] = None
    committed_before = 0
    try:
        engine = PushTapEngine.build(**build_params)
        manager = engine.enable_durability(path, checkpoint_every=checkpoint_every)
        driver = engine.make_driver(seed=seed, delivery_fraction=delivery_fraction)
        faults.install(FaultInjector(plan))
        try:
            for i in range(txns):
                engine.execute_transaction(driver.next_transaction())
                committed_before += 1
                if txns_per_query and (i + 1) % txns_per_query == 0:
                    engine.query(queries[(i // txns_per_query) % len(queries)])
        except SimulatedCrash:
            crashed_at = committed_before
        finally:
            faults.deactivate()
            manager.close()

        result = recover(path, lambda: PushTapEngine.build(**build_params))
        recovered = result.engine
        violations = list(InvariantChecker(recovered, raise_on_violation=False).check())
        violations.extend(result.bitmap_mismatches)

        reference = PushTapEngine.build(**build_params)
        ref_driver = reference.make_driver(seed=seed, delivery_fraction=delivery_fraction)
        guard = 0
        while reference.db.oracle.read_timestamp() < result.horizon:
            reference.execute_transaction(ref_driver.next_transaction())
            guard += 1
            if guard > txns:
                raise ReproError(
                    f"reference run overshot: horizon {result.horizon} not "
                    f"reachable within {txns} transactions"
                )
        mismatches: List[str] = []
        for name in queries:
            got = _canonical_rows(
                run_query(name, recovered.olap, recovered.db, result.horizon).rows
            )
            want = _canonical_rows(
                run_query(name, reference.olap, reference.db, result.horizon).rows
            )
            if got != want:
                differing = sum(1 for g, w in zip(got, want) if g != w)
                mismatches.append(
                    f"{name}@ts={result.horizon}: recovered rows differ from "
                    f"reference ({differing} of {max(len(got), len(want))} rows)"
                )
        return CrashSweepResult(
            hook=hook,
            seed=seed,
            rate=rate,
            plan_hash=plan.content_hash(),
            crash_fired=crashed_at is not None,
            crashed_at_txn=crashed_at,
            committed_before_crash=committed_before,
            horizon=result.horizon,
            checkpoint_horizon=result.checkpoint_horizon,
            segments_applied=result.segments_applied,
            wal_records_replayed=result.wal_records_replayed,
            torn_tail=result.torn_tail,
            orphan_segments=len(result.orphan_segments),
            violations=violations,
            query_mismatches=mismatches,
        )
    except ReproError as exc:
        return CrashSweepResult(
            hook=hook,
            seed=seed,
            rate=rate,
            plan_hash=plan.content_hash(),
            crash_fired=crashed_at is not None,
            crashed_at_txn=crashed_at,
            committed_before_crash=committed_before,
            horizon=0,
            checkpoint_horizon=0,
            segments_applied=0,
            wal_records_replayed=0,
            torn_tail=False,
            orphan_segments=0,
            error=f"{type(exc).__name__}: {exc}",
        )
    finally:
        if temp:
            shutil.rmtree(path, ignore_errors=True)
