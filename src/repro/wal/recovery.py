"""Crash recovery: rebuild an engine from the leveled store + WAL.

``recover(path, build_engine)`` starts from a *freshly built* engine
(the deterministic initial data load), applies every reachable
checkpoint segment at its horizon timestamp, then replays the WAL
records past the checkpoint horizon at their recorded commit
timestamps. All mutation goes through the normal runtime/MVCC paths
(``insert_row``/``update_row``/``mvcc.delete``/index ops), so the
recovered engine satisfies the same invariants a live engine does —
which is exactly what the crash-sweep asserts with the
``InvariantChecker``.

``build_engine`` must reproduce the engine the durability directory was
written by (same build parameters, same seed) and must **not** itself
enable durability — the caller re-enables it afterwards if the
recovered engine should keep logging.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from repro.errors import WALError
from repro.wal.log import WriteAheadLog, unjsonify
from repro.wal.manager import liveness_bitmap
from repro.wal.store import LeveledStore

__all__ = ["RecoveryResult", "recover"]

#: How many segment updates to apply between defrag-due checks; keeps a
#: merged segment with many cold rows from exhausting a delta region.
_DEFRAG_CHECK_EVERY = 64


@dataclass
class RecoveryResult:
    """What one recovery pass rebuilt, for reports and assertions."""

    engine: object
    #: Highest committed timestamp the recovered engine contains.
    horizon: int
    #: Horizon covered by checkpoint segments (0 if none reachable).
    checkpoint_horizon: int
    segments_applied: int
    wal_records_replayed: int
    wal_records_skipped: int
    ops_applied: int
    torn_tail: bool
    orphan_segments: List[str] = field(default_factory=list)
    bitmap_mismatches: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "checkpoint_horizon": self.checkpoint_horizon,
            "segments_applied": self.segments_applied,
            "wal_records_replayed": self.wal_records_replayed,
            "wal_records_skipped": self.wal_records_skipped,
            "ops_applied": self.ops_applied,
            "torn_tail": self.torn_tail,
            "orphan_segments": list(self.orphan_segments),
            "bitmap_mismatches": list(self.bitmap_mismatches),
        }


def recover(path: str, build_engine: Callable[[], object]) -> RecoveryResult:
    """Rebuild an engine from the durability directory at ``path``."""
    engine = build_engine()
    if engine.durability is not None:
        raise WALError("build_engine must not enable durability before recovery")
    store = LeveledStore(path)
    orphans = store.drop_orphans()
    ops_applied = 0
    segments = store.load_segments()
    for segment in segments:
        ops_applied += _apply_segment(engine, segment)
    checkpoint_horizon = store.horizon
    mismatches = _verify_bitmaps(engine, segments, checkpoint_horizon)

    wal = WriteAheadLog(os.path.join(path, "wal.log"), sync=False)
    records, torn_tail = wal.replay()
    replayed = skipped = 0
    horizon = checkpoint_horizon
    for ts, ops in records:
        if ts <= checkpoint_horizon:
            # Rotation happens after the manifest commit; a crash in
            # between leaves records the checkpoint already covers.
            skipped += 1
            continue
        engine.db.oracle.advance_to(ts)
        if engine.defrag_due():
            engine.defragment()
        ops_applied += _apply_ops(engine, ts, ops)
        engine.stats.transactions += 1
        engine._txns_since_defrag += 1
        replayed += 1
        horizon = ts
    engine.db.oracle.advance_to(horizon)
    return RecoveryResult(
        engine=engine,
        horizon=horizon,
        checkpoint_horizon=checkpoint_horizon,
        segments_applied=len(segments),
        wal_records_replayed=replayed,
        wal_records_skipped=skipped,
        ops_applied=ops_applied,
        torn_tail=torn_tail,
        orphan_segments=orphans,
        bitmap_mismatches=mismatches,
    )


def _apply_segment(engine, segment: dict) -> int:
    """Apply one folded checkpoint window, entirely at its horizon ts."""
    horizon = int(segment["horizon"])
    engine.db.oracle.advance_to(horizon)
    applied = 0
    for table in sorted(segment.get("tables", {})):
        rows = segment["tables"][table]
        runtime = engine.db.table(table)
        entries = {int(key): entry for key, entry in rows.items()}
        created = sorted(rid for rid, e in entries.items() if e["created"])
        for rid in created:
            entry = entries[rid]
            values = {col: unjsonify(v) for col, v in entry["values"].items()}
            new_id = runtime.insert_row(horizon, values)
            if new_id != rid:
                raise WALError(
                    f"{table}: segment row {rid} materialized as {new_id}; "
                    f"segment applied out of order or against the wrong build"
                )
            if entry["index"] and not entry["deleted"]:
                index_name, key = unjsonify(entry["index"])
                engine.db.index(index_name).insert(key, rid)
            applied += 1
        updated = sorted(
            rid
            for rid, e in entries.items()
            if not e["created"] and e["values"] is not None and not e["deleted"]
        )
        for position, rid in enumerate(updated):
            changes = {col: unjsonify(v) for col, v in entries[rid]["values"].items()}
            runtime.update_row(rid, horizon, changes)
            applied += 1
            if (position + 1) % _DEFRAG_CHECK_EVERY == 0 and engine.defrag_due():
                engine.defragment()
        for rid in sorted(rid for rid, e in entries.items() if e["deleted"]):
            entry = entries[rid]
            runtime.mvcc.delete(rid, horizon)
            if entry["del_index"] and not entry["created"]:
                # A row created *and* deleted inside the window never
                # materialized its index entry above, so only rows that
                # predate the window have an entry to remove.
                index_name, key = unjsonify(entry["del_index"])
                engine.db.index(index_name).remove(key)
            applied += 1
    if engine.defrag_due():
        engine.defragment()
    return applied


def _apply_ops(engine, ts: int, ops: list) -> int:
    """Replay one WAL commit record through the normal runtime paths."""
    for op in ops:
        kind = op[0]
        if kind == "update":
            _, table, rid, changes = op
            engine.db.table(table).update_row(int(rid), ts, dict(changes))
        elif kind == "insert":
            _, table, rid, values, index_key = op
            new_id = engine.db.table(table).insert_row(ts, dict(values))
            if new_id != int(rid):
                raise WALError(
                    f"{table}: WAL insert expected row {rid}, got {new_id}"
                )
            if index_key is not None:
                engine.db.index(index_key[0]).insert(index_key[1], new_id)
        elif kind == "delete":
            _, table, rid, index_key = op
            engine.db.table(table).mvcc.delete(int(rid), ts)
            if index_key is not None:
                engine.db.index(index_key[0]).remove(index_key[1])
        else:
            raise WALError(f"unknown WAL op kind {kind!r}")
    return len(ops)


def _verify_bitmaps(engine, segments: List[dict], horizon: int) -> List[str]:
    """Cross-check recovered liveness against the newest segment's bitmaps."""
    if not segments:
        return []
    stored = segments[-1].get("bitmaps", {})
    mismatches: List[str] = []
    for table, expected in sorted(stored.items()):
        mvcc = engine.db.table(table).mvcc
        actual = liveness_bitmap(mvcc, horizon)
        if actual["num_rows"] != expected["num_rows"]:
            mismatches.append(
                f"{table}: num_rows {actual['num_rows']} != stored "
                f"{expected['num_rows']} at checkpoint horizon {horizon}"
            )
            continue
        if actual["bits"] != expected["bits"]:
            stored_bits = np.unpackbits(
                np.frombuffer(bytes.fromhex(expected["bits"]), dtype=np.uint8)
            )[: expected["num_rows"]]
            live_bits = np.unpackbits(
                np.frombuffer(bytes.fromhex(actual["bits"]), dtype=np.uint8)
            )[: actual["num_rows"]]
            differing = int(np.count_nonzero(stored_bits != live_bits))
            mismatches.append(
                f"{table}: liveness bitmap differs in {differing} rows at "
                f"checkpoint horizon {horizon}"
            )
    return mismatches
