"""LSM-style leveled store of checkpoint segments behind a manifest.

A *segment* is the folded redo state of one checkpoint window plus the
per-table liveness bitmaps at the window's commit horizon::

    {"horizon": ts,
     "tables": {table: {"<row_id>": {"created": bool,
                                     "values": {col: ...} | None,
                                     "index": [name, key] | None,
                                     "deleted": bool,
                                     "del_index": [name, key] | None}}},
     "bitmaps": {table: {"num_rows": n, "bits": "<hex packbits>"}}}

Segments land in level 0; when a level exceeds the fanout its segments
are merged newest-wins into the next level (level 2 is the terminal
level and re-merges in place). ``MANIFEST.json`` names the reachable
segments per level and is replaced atomically (temp file + rename), so
a crash at any point leaves either the old or the new manifest — never
a half-written one. Segment files not named by the manifest are orphans
from a crash mid-checkpoint; :meth:`LeveledStore.drop_orphans` removes
them and recovery ignores them (the WAL still covers their window).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.errors import WALError

__all__ = ["LeveledStore", "merge_segments"]

MANIFEST_NAME = "MANIFEST.json"
LEVELS = 3


def _merge_entry(old: Optional[dict], new: dict) -> dict:
    """Fold a newer row entry over an older one (newest wins)."""
    if old is None:
        return dict(new)
    values = old.get("values")
    if new.get("values") is not None:
        values = dict(values or {})
        values.update(new["values"])
    return {
        "created": bool(old.get("created") or new.get("created")),
        "values": values,
        "index": old.get("index") or new.get("index"),
        "deleted": bool(old.get("deleted") or new.get("deleted")),
        "del_index": new.get("del_index") or old.get("del_index"),
    }


def merge_segments(segments: List[dict]) -> dict:
    """Merge segments (oldest first) into one at the newest horizon.

    Row states fold newest-wins: update changes-dicts accumulate, a
    creation or deletion anywhere in the run survives the merge, and the
    liveness bitmaps of the newest segment (the merged horizon) are kept.
    """
    if not segments:
        raise WALError("cannot merge zero segments")
    tables: Dict[str, Dict[str, dict]] = {}
    for segment in segments:
        for table, rows in segment.get("tables", {}).items():
            folded = tables.setdefault(table, {})
            for row_key, entry in rows.items():
                folded[row_key] = _merge_entry(folded.get(row_key), entry)
    return {
        "horizon": segments[-1]["horizon"],
        "tables": tables,
        "bitmaps": segments[-1].get("bitmaps", {}),
    }


class LeveledStore:
    """Manifest + leveled segment files in one directory."""

    def __init__(self, path: str, fanout: int = 4) -> None:
        if fanout < 2:
            raise WALError(f"compaction fanout must be >= 2, got {fanout}")
        self.path = path
        self.fanout = fanout
        self.compactions = 0
        os.makedirs(path, exist_ok=True)
        manifest = self._read_manifest()
        self._horizon: int = manifest["horizon"]
        self._levels: List[List[str]] = manifest["levels"]
        self._next_seq: int = manifest["next_seq"]

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    @property
    def horizon(self) -> int:
        """Commit horizon covered by the reachable segments (0 if none)."""
        return self._horizon

    @property
    def levels(self) -> List[List[str]]:
        """Reachable segment names per level (oldest first within a level)."""
        return [list(level) for level in self._levels]

    def _read_manifest(self) -> dict:
        if not os.path.exists(self.manifest_path):
            return {"horizon": 0, "levels": [[] for _ in range(LEVELS)], "next_seq": 0}
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except ValueError as exc:
            raise WALError(f"{self.manifest_path}: unreadable manifest: {exc}") from None
        for name in (n for level in manifest["levels"] for n in level):
            if not os.path.exists(os.path.join(self.path, name)):
                raise WALError(f"manifest references missing segment {name!r}")
        return manifest

    def _write_manifest(self) -> None:
        manifest = {
            "horizon": self._horizon,
            "levels": self._levels,
            "next_seq": self._next_seq,
        }
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)

    # ------------------------------------------------------------------
    # Segments
    # ------------------------------------------------------------------
    def write_segment(self, segment: dict) -> str:
        """Write a segment file durably *without* publishing it.

        The segment stays an orphan until :meth:`commit_segment` names it
        in the manifest — this is the window the ``crash_mid_checkpoint``
        fault hook strikes in.
        """
        name = f"seg-{self._next_seq:06d}.json"
        self._write_segment_file(name, segment)
        return name

    def _write_segment_file(self, name: str, segment: dict) -> None:
        with open(os.path.join(self.path, name), "w", encoding="utf-8") as handle:
            json.dump(segment, handle, separators=(",", ":"), sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())

    def commit_segment(self, name: str, horizon: int) -> int:
        """Publish a written segment into level 0; returns compactions run."""
        if horizon < self._horizon:
            raise WALError(
                f"checkpoint horizon regressed: {horizon} < {self._horizon}"
            )
        self._levels[0].append(name)
        self._horizon = int(horizon)
        self._next_seq += 1
        self._write_manifest()
        return self._maybe_compact()

    def segment_bytes(self, name: str) -> int:
        return os.path.getsize(os.path.join(self.path, name))

    def load_segment(self, name: str) -> dict:
        path = os.path.join(self.path, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except ValueError as exc:
            raise WALError(f"{path}: unreadable segment: {exc}") from None

    def load_segments(self) -> List[dict]:
        """Reachable segments in application order (oldest state first)."""
        names = [name for level in reversed(self._levels) for name in level]
        return [self.load_segment(name) for name in names]

    def drop_orphans(self) -> List[str]:
        """Delete segment files the manifest does not reference."""
        reachable = {name for level in self._levels for name in level}
        dropped = []
        for name in sorted(os.listdir(self.path)):
            if name.startswith("seg-") and name.endswith(".json") and name not in reachable:
                os.remove(os.path.join(self.path, name))
                dropped.append(name)
        return dropped

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> int:
        """Merge any over-fanout level into the next; terminal re-merges."""
        ran = 0
        for level in range(LEVELS):
            if len(self._levels[level]) <= self.fanout:
                continue
            terminal = level == LEVELS - 1
            if terminal:
                # The last level re-merges in place into one segment.
                target, victims = level, list(self._levels[level])
            else:
                # Fold this level's run into one segment pushed down a
                # level; the target's existing segments stay older than
                # (i.e. ahead of) the arrival, preserving merge order.
                target, victims = level + 1, list(self._levels[level])
            merged = merge_segments([self.load_segment(name) for name in victims])
            name = f"seg-{self._next_seq:06d}.json"
            self._write_segment_file(name, merged)
            self._next_seq += 1
            if terminal:
                self._levels[level] = [name]
            else:
                self._levels[level] = []
                self._levels[target].append(name)
            self._write_manifest()
            for victim in victims:
                os.remove(os.path.join(self.path, victim))
            ran += 1
            self.compactions += 1
        return ran
