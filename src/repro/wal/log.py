"""Append-only write-ahead log with CRC-framed JSON records.

One line per committed transaction::

    {"crc": <crc32 of [ts, ops]>, "ops": [...], "ts": <commit ts>}

Records carry *logical redo* operations (the ``TxnContext`` op journal),
not physical bytes, so replay goes through the normal MVCC/runtime paths
and every engine invariant holds on the recovered state by construction.

Torn-tail semantics: a crash can cut the final line anywhere. On replay,
a last line that fails to parse or fails its CRC is treated as a torn
tail and dropped; the same damage *before* the last line cannot be
explained by one interrupted append and raises
:class:`~repro.errors.WALError`.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import IO, List, Optional, Tuple

import numpy as np

from repro.errors import WALError

__all__ = ["WriteAheadLog", "jsonify", "unjsonify"]

#: The modelled flush granularity (one cache line) used to convert
#: appended bytes into §6.3 flush-line charges.
LINE_BYTES = 64


def jsonify(value):
    """Convert an op-journal value into a JSON-safe equivalent.

    ``bytes`` become ``{"__bytes__": hex}`` (the only dict shape the
    journal never produces naturally); tuples become lists; NumPy
    scalars collapse to their Python counterparts.
    """
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, dict):
        return {key: jsonify(item) for key, item in value.items()}
    raise WALError(f"cannot encode {type(value).__name__} value in a WAL record")


def unjsonify(value):
    """Inverse of :func:`jsonify`; JSON arrays come back as tuples."""
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        return {key: unjsonify(item) for key, item in value.items()}
    if isinstance(value, list):
        return tuple(unjsonify(item) for item in value)
    return value


def _record_crc(ts: int, ops: list) -> int:
    payload = json.dumps([ts, ops], separators=(",", ":"), sort_keys=True)
    return zlib.crc32(payload.encode("utf-8"))


class WriteAheadLog:
    """One append-only redo log file (``wal.log``)."""

    def __init__(self, path: str, sync: bool = True) -> None:
        self.path = path
        #: fsync after every append (the durability guarantee); tests
        #: and recovery-only readers may turn it off.
        self.sync = sync
        self._fh: Optional[IO[bytes]] = None
        self.appended_records = 0
        self.appended_bytes = 0

    def _handle(self) -> IO[bytes]:
        if self._fh is None:
            self._fh = open(self.path, "ab")
        return self._fh

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, ts: int, ops: list) -> int:
        """Append one commit record (already-jsonified ops); returns bytes.

        The record is flushed (and fsync'd when ``sync``) before
        returning — once this returns, the commit survives a crash.
        """
        record = {"crc": _record_crc(ts, ops), "ops": ops, "ts": int(ts)}
        data = (json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n").encode(
            "utf-8"
        )
        handle = self._handle()
        handle.write(data)
        handle.flush()
        if self.sync:
            os.fsync(handle.fileno())
        self.appended_records += 1
        self.appended_bytes += len(data)
        return len(data)

    def reset(self) -> None:
        """Rotate: truncate the log (after a checkpoint made it redundant)."""
        self.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())

    def close(self) -> None:
        """Release the file handle (no-op if never opened)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def replay(self) -> Tuple[List[Tuple[int, list]], bool]:
        """All intact records as ``(ts, ops)`` plus a torn-tail flag.

        ``ops`` come back through :func:`unjsonify` (tuples restored).
        """
        if not os.path.exists(self.path):
            return [], False
        with open(self.path, "rb") as handle:
            raw = handle.read()
        records: List[Tuple[int, list]] = []
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for position, line in enumerate(lines):
            record = self._parse(line)
            if record is None:
                if position == len(lines) - 1:
                    return records, True
                raise WALError(
                    f"{self.path}: corrupt record at line {position + 1} "
                    f"(not the tail; cannot be a torn append)"
                )
            ts, ops = record
            if records and ts < records[-1][0]:
                raise WALError(
                    f"{self.path}: commit timestamps regress at line {position + 1}"
                )
            records.append((ts, ops))
        return records, False

    @staticmethod
    def _parse(line: bytes) -> Optional[Tuple[int, list]]:
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(record, dict) or not {"crc", "ops", "ts"} <= set(record):
            return None
        if _record_crc(record["ts"], record["ops"]) != record["crc"]:
            return None
        return int(record["ts"]), [unjsonify(op) for op in record["ops"]]
