"""Durability: write-ahead log, leveled checkpoint store, crash recovery.

The engine itself is an in-memory simulator; this package gives it a
real on-disk durability story so that "everything is lost on process
death" stops being true:

* :mod:`repro.wal.log` — an append-only, CRC-framed redo log of
  committed transactions. Appends are fsync'd per commit and charged
  through the §6.3 flush cost model (``flush_per_line_ns`` per written
  line + ``commit_barrier_ns``), so enabling durability shows up in the
  simulated commit latency exactly like the clflush+barrier it models.
* :mod:`repro.wal.store` — an LSM-style leveled store of checkpoint
  segments (folded redo state + per-table liveness bitmaps) behind an
  atomically renamed manifest, with newest-wins compaction.
* :mod:`repro.wal.manager` — the :class:`DurabilityManager` glue an
  engine gets from :meth:`~repro.core.engine.PushTapEngine.enable_durability`.
* :mod:`repro.wal.recovery` — rebuilds an engine by applying checkpoint
  segments and replaying the WAL tail at the recorded timestamps.
* :mod:`repro.wal.crash` — the crash-sweep harness: inject a
  ``crash_*`` fault, recover, and assert invariants plus bit-identical
  OLAP results against a never-crashed reference run.
"""

from repro.wal.crash import CRASH_SWEEP_HOOKS, CrashSweepResult, run_crash_sweep
from repro.wal.log import WriteAheadLog
from repro.wal.manager import DurabilityManager
from repro.wal.recovery import RecoveryResult, recover
from repro.wal.store import LeveledStore

__all__ = [
    "WriteAheadLog",
    "LeveledStore",
    "DurabilityManager",
    "RecoveryResult",
    "recover",
    "CrashSweepResult",
    "run_crash_sweep",
    "CRASH_SWEEP_HOOKS",
]
