"""The durability layer an engine gets from ``enable_durability``.

``log_commit`` runs inside the commit path of every transaction: it
appends the transaction's logical redo ops to the WAL (fsync'd), folds
them into the pending checkpoint window, and — every
``checkpoint_every`` commits — spills the folded window plus per-table
liveness bitmaps as a segment into the :class:`~repro.wal.store.LeveledStore`
and rotates the WAL.

Costs are charged through the §6.3 commit model: every
:data:`~repro.wal.log.LINE_BYTES` bytes appended or spilled costs
``flush_per_line_ns`` and each fsync barrier costs
``commit_barrier_ns``, returned to the caller so the committing
transaction's flush phase (and hence the serve loop's simulated clock)
carries the durability overhead.

The three ``crash_*`` fault hooks strike here:

* ``crash_before_wal_append`` — the commit record never reaches disk;
* ``crash_after_wal_append`` — the record is durable, the process dies
  before acknowledging;
* ``crash_mid_checkpoint`` — the segment file is written but the
  manifest rename never happens (recovery must ignore the orphan).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.errors import SimulatedCrash
from repro.faults import injector as faults
from repro.faults import plan as fault_plan
from repro.telemetry import registry as telemetry
from repro.units import ceil_div
from repro.wal.log import LINE_BYTES, WriteAheadLog, jsonify
from repro.wal.store import LeveledStore

__all__ = ["DurabilityManager", "liveness_bitmap"]

META_NAME = "meta.json"


def liveness_bitmap(mvcc, horizon: int) -> dict:
    """Logical row-liveness of one table at ``horizon``, hex-packed.

    A row is live unless it was folded dead by defragmentation or
    carries a tombstone at or before the horizon. Checkpoints store
    this; recovery recomputes it to cross-check the rebuilt state.
    """
    n = int(mvcc.num_rows)
    tomb = mvcc._tomb_ts[:n]
    alive = ~mvcc._dead[:n] & ~((tomb >= 0) & (tomb <= horizon))
    return {"num_rows": n, "bits": np.packbits(alive).tobytes().hex()}


class DurabilityManager:
    """WAL + checkpoint spill for one :class:`PushTapEngine`."""

    def __init__(
        self, engine, path: str, checkpoint_every: int = 0, sync: bool = True
    ) -> None:
        self.engine = engine
        self.path = path
        self.checkpoint_every = int(checkpoint_every)
        os.makedirs(path, exist_ok=True)
        self.store = LeveledStore(path)
        self.wal = WriteAheadLog(os.path.join(path, "wal.log"), sync=sync)
        self.cost = engine.oltp.cost
        self._write_meta(sync)
        #: Folded redo state of the open checkpoint window:
        #: ``{table: {"<row_id>": entry}}`` in segment-entry shape.
        self._pending = {}
        self._since_checkpoint = 0
        self._last_ts = self.store.horizon
        self.records = 0
        self.bytes_appended = 0
        self.checkpoints = 0

    def _write_meta(self, sync: bool) -> None:
        # Informational only — recovery takes the engine-build callable
        # from its caller, not from disk.
        meta = {
            "format": 1,
            "checkpoint_every": self.checkpoint_every,
            "sync": bool(sync),
        }
        with open(os.path.join(self.path, META_NAME), "w", encoding="utf-8") as fh:
            json.dump(meta, fh, sort_keys=True)

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------
    def log_commit(self, ts: int, ops: list) -> float:
        """Harden one committed transaction; returns the charged ns."""
        inj = faults.active()
        if inj.enabled and inj.fire(fault_plan.CRASH_BEFORE_WAL_APPEND):
            raise SimulatedCrash(
                "injected crash before WAL append: commit record lost"
            )
        json_ops = [jsonify(op) for op in ops]
        nbytes = self.wal.append(ts, json_ops)
        cost = (
            ceil_div(nbytes, LINE_BYTES) * self.cost.flush_per_line_ns
            + self.cost.commit_barrier_ns
        )
        self.records += 1
        self.bytes_appended += nbytes
        self._fold(json_ops)
        self._last_ts = int(ts)
        self._since_checkpoint += 1
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("wal.records").inc()
            tel.counter("wal.bytes").inc(nbytes)
            tel.record_span("wal.append", cost, {"bytes": nbytes})
        if inj.enabled and inj.fire(fault_plan.CRASH_AFTER_WAL_APPEND):
            raise SimulatedCrash(
                "injected crash after WAL append: record durable, process dead"
            )
        if self.checkpoint_every and self._since_checkpoint >= self.checkpoint_every:
            cost += self.checkpoint()
        return cost

    def _fold(self, json_ops: list) -> None:
        for op in json_ops:
            kind, table, row_id = op[0], op[1], op[2]
            rows = self._pending.setdefault(table, {})
            key = str(row_id)
            entry = rows.setdefault(
                key,
                {
                    "created": False,
                    "values": None,
                    "index": None,
                    "deleted": False,
                    "del_index": None,
                },
            )
            if kind == "update":
                values = dict(entry["values"] or {})
                values.update(op[3])
                entry["values"] = values
            elif kind == "insert":
                entry["created"] = True
                entry["values"] = dict(op[3])
                entry["index"] = op[4]
            elif kind == "delete":
                entry["deleted"] = True
                entry["del_index"] = op[3]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> float:
        """Spill the folded window as a segment and rotate the WAL."""
        horizon = self._last_ts
        segment = {
            "horizon": horizon,
            "tables": self._pending,
            "bitmaps": {
                name: liveness_bitmap(runtime.mvcc, horizon)
                for name, runtime in self.engine.db.tables.items()
            },
        }
        name = self.store.write_segment(segment)
        inj = faults.active()
        if inj.enabled and inj.fire(fault_plan.CRASH_MID_CHECKPOINT):
            raise SimulatedCrash(
                "injected crash mid-checkpoint: segment written, manifest not renamed"
            )
        nbytes = self.store.segment_bytes(name)
        compactions = self.store.commit_segment(name, horizon)
        self.wal.reset()
        self._pending = {}
        self._since_checkpoint = 0
        self.checkpoints += 1
        cost = (
            ceil_div(nbytes, LINE_BYTES) * self.cost.flush_per_line_ns
            + self.cost.commit_barrier_ns
        )
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("wal.checkpoints").inc()
            if compactions:
                tel.counter("wal.compactions").inc(compactions)
            tel.record_span(
                "wal.checkpoint", cost, {"bytes": nbytes, "horizon": horizon}
            )
        return cost

    # ------------------------------------------------------------------
    # Lifecycle / reporting
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release file handles; never writes (a crash may precede this)."""
        self.wal.close()

    def report(self) -> dict:
        """Counters for reports and the crash-sweep."""
        return {
            "path": self.path,
            "records": self.records,
            "bytes_appended": self.bytes_appended,
            "checkpoints": self.checkpoints,
            "compactions": self.store.compactions,
            "horizon": self._last_ts,
            "levels": [len(level) for level in self.store.levels],
        }
