"""The ``cluster`` experiment: shard-count scaling and 2PC overhead.

Sweeps the sharded cluster along two axes and writes the BENCH_9.json
snapshot:

* **scaling** — shard count 1..N at the TPC-C-spec remote rates
  (``remote_fraction=1.0``, ~1 % remote New-Order lines / 15 % remote
  Payments, of which only the cross-*shard* subset pays 2PC). Every
  cell runs the *same* global row counts and the same tenant streams —
  the 1-shard cell executes the identical workload on one engine — so
  the tpmC ratio is a pure partitioning speedup. CI gates it at
  ``tpmC(N) >= min_scaling * N * tpmC(1)``.
* **overhead** — remote-fraction sweep at the maximum shard count,
  charting how tpmC and the coordination share degrade as more
  transactions cross shards (the classic distributed-OLTP overhead
  curve).

Every number in the snapshot is simulated (no wall-clock, no
timestamps), so regenerating it with the same arguments is bit-for-bit
reproducible — CI regenerates and byte-compares.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster import PushTapCluster, ClusterWorkload, cluster_row_counts
from repro.errors import ConfigError

__all__ = ["run_cluster_bench", "DEFAULT_SHARD_COUNTS", "DEFAULT_REMOTE_FRACTIONS"]

DEFAULT_SHARD_COUNTS = (1, 2, 4)
DEFAULT_REMOTE_FRACTIONS = (0.0, 1.0, 2.0, 4.0)


def _run_cell(
    shards: int,
    counts: Dict[str, int],
    tenants: int,
    remote_fraction: float,
    intervals: int,
    txns_per_query: int,
    seed: int,
    interconnect_ns: float,
    defrag_period: int,
    jobs: int = 1,
) -> Dict[str, object]:
    cluster = PushTapCluster.build(
        shards=shards,
        counts=counts,
        seed=seed,
        interconnect_ns=interconnect_ns,
        defrag_period=defrag_period,
        block_rows=256,
        # Long streams append many ORDERLINE/HISTORY rows; size the
        # insert capacity to the stream (the fig11 idiom).
        extra_rows=12 * intervals * txns_per_query,
    )
    report = ClusterWorkload(
        cluster,
        txns_per_query=txns_per_query,
        seed=seed,
        remote_fraction=remote_fraction,
        tenants=tenants,
        # Statistically identical tenant streams, pinned to the same
        # warehouse groups in every cell: each cell then draws literally
        # the same transactions, so the measured speedup isolates
        # partitioning overhead from client-mix variance.
        homogeneous_tenants=True,
        warehouse_groups=tenants,
        # Parallel shard execution is merge-deterministic (byte-identical
        # to jobs=1), so the snapshot stays reproducible at any job count.
        jobs=min(jobs, shards),
    ).run(intervals)
    return report.as_dict()


def run_cluster_bench(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    remote_fractions: Sequence[float] = DEFAULT_REMOTE_FRACTIONS,
    intervals: int = 4,
    txns_per_query: int = 60,
    scale: float = 2e-5,
    seed: int = 11,
    interconnect_ns: float = 500.0,
    defrag_period: int = 200,
    tag: str = "9",
    jobs: int = 1,
) -> Dict[str, object]:
    """Run the scaling and overhead sweeps; returns the snapshot dict.

    The row counts are derived once for the *largest* shard count and
    pinned across every cell, and every cell serves the same
    ``max(shard_counts)`` tenant streams — so cells differ only in how
    many engines the same work is partitioned over.
    """
    shard_counts = sorted(set(int(n) for n in shard_counts))
    if not shard_counts or shard_counts[0] < 1:
        raise ConfigError("shard_counts must be positive")
    if 1 not in shard_counts:
        # The scaling ratios are relative to the 1-shard cell; always
        # include it rather than silently normalizing to something else.
        shard_counts = [1] + shard_counts
    max_shards = shard_counts[-1]
    tenants = max_shards
    counts = cluster_row_counts(scale, max_shards)

    scaling: List[Dict[str, object]] = []
    for shards in shard_counts:
        cell = _run_cell(
            shards,
            counts,
            tenants,
            1.0,
            intervals,
            txns_per_query,
            seed,
            interconnect_ns,
            defrag_period,
            jobs,
        )
        scaling.append(cell)
    base_tpmc = scaling[0]["oltp_tpmc"]
    base_qphh = scaling[0]["olap_qphh"]
    for cell in scaling:
        cell["tpmc_speedup"] = (
            cell["oltp_tpmc"] / base_tpmc if base_tpmc else 0.0
        )
        cell["qphh_speedup"] = (
            cell["olap_qphh"] / base_qphh if base_qphh else 0.0
        )

    overhead: List[Dict[str, object]] = []
    for fraction in remote_fractions:
        cell = _run_cell(
            max_shards,
            counts,
            tenants,
            float(fraction),
            intervals,
            txns_per_query,
            seed,
            interconnect_ns,
            defrag_period,
            jobs,
        )
        cell["coordination_share"] = (
            cell["coordination_time_ns"] / cell["simulated_time_ns"]
            if cell["simulated_time_ns"]
            else 0.0
        )
        overhead.append(cell)

    return {
        "tag": tag,
        "params": {
            "shard_counts": list(shard_counts),
            "remote_fractions": [float(f) for f in remote_fractions],
            "intervals": intervals,
            "txns_per_query": txns_per_query,
            "scale": scale,
            "seed": seed,
            "interconnect_ns": interconnect_ns,
            "defrag_period": defrag_period,
            "counts": dict(counts),
            "tenants": tenants,
        },
        "scaling": scaling,
        "overhead": overhead,
    }
