"""Experiment modules — one per paper figure (§7).

Each module computes the data series behind one figure; the benchmark
suite (``benchmarks/``) runs them under pytest-benchmark and prints the
paper-vs-measured rows recorded in EXPERIMENTS.md.
"""

from repro.experiments import common, fig8, fig9, fig10, fig11, fig12

__all__ = ["common", "fig8", "fig9", "fig10", "fig11", "fig12"]
