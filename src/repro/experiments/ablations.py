"""Ablations of PUSHtap's design choices (DESIGN.md per-experiment index).

Each ablation isolates one mechanism the paper motivates:

* **block-circulant placement** (Fig. 5a vs 5b) — rotation on/off, same
  data, same query: parallelism and scan time;
* **leftover policy** — the bin-packer's th-guarantee (``pad``) vs
  padding-minimizing (``absorb``) variants: storage vs PIM bandwidth;
* **threshold th end-to-end** — measured Q6 latency under layouts built
  at different th values (the Fig. 8a trade-off surfacing in real query
  time);
* **key-column fallback** — scanning a column as a key column (PIM) vs
  as a normal column (CPU fallback, §4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import SystemConfig, dimm_system
from repro.core.engine import PushTapEngine
from repro.experiments.common import database_pim_bandwidth
from repro.format.binpack import compact_aligned_layout_with_report
from repro.olap.cost import column_scan_cost
from repro.olap.operators import FilterOperation
from repro.pim.pim_unit import Condition
from repro.workloads.chbench import all_queries, ch_schema, key_columns_for, row_counts

__all__ = [
    "CirculantPoint",
    "circulant_ablation",
    "LeftoverPoint",
    "leftover_policy_ablation",
    "ThLatencyPoint",
    "th_latency_ablation",
    "FallbackPoint",
    "key_column_fallback_ablation",
]


@dataclass(frozen=True)
class CirculantPoint:
    """One side of the rotation ablation."""

    circulant: bool
    units_used: int
    scan_time: float
    matches: int


def circulant_ablation(scale: float = 5e-5) -> List[CirculantPoint]:
    """Fig. 5a vs 5b: scan one column with rotation on and off."""
    out: List[CirculantPoint] = []
    for circulant in (True, False):
        engine = PushTapEngine.build(
            scale=scale, defrag_period=0, block_rows=256, circulant=circulant
        )
        table = engine.table("orderline")
        ts = engine.db.oracle.read_timestamp()
        table.snapshots.update_to(ts)
        op = FilterOperation(
            table.storage,
            engine.units,
            "ol_amount",
            Condition("ge", 0),
            table.region_rows(),
        )
        result = engine.olap.executor.execute(op)
        out.append(
            CirculantPoint(
                circulant=circulant,
                units_used=len(op.participating_units()),
                scan_time=result.total_time,
                matches=sum(int(m.sum()) for m in op.masks.values()),
            )
        )
    return out


@dataclass(frozen=True)
class LeftoverPoint:
    """One bin-packer leftover policy."""

    policy: str
    padding_fraction: float
    pim_bandwidth: float
    relaxed_keys: int


def leftover_policy_ablation(
    th: float = 0.6, config: Optional[SystemConfig] = None
) -> List[LeftoverPoint]:
    """th-guarantee (pad) vs padding-minimizing (absorb) layouts."""
    config = config or dimm_system()
    schemas = ch_schema()
    counts = row_counts(1.0)
    queries = all_queries()
    d = config.geometry.devices_per_rank
    out: List[LeftoverPoint] = []
    for policy in ("pad", "absorb"):
        layouts = {}
        pad_bytes = stored_bytes = 0
        relaxed = 0
        for name, schema in schemas.items():
            layout, report = compact_aligned_layout_with_report(
                schema, key_columns_for(queries, name), d, th, policy
            )
            layouts[name] = layout
            pad_bytes += report.padding_bytes_per_row * counts[name]
            stored_bytes += report.stored_bytes_per_row * counts[name]
            relaxed += len(report.relaxed_keys)
        out.append(
            LeftoverPoint(
                policy=policy,
                padding_fraction=pad_bytes / stored_bytes,
                pim_bandwidth=database_pim_bandwidth(layouts, queries),
                relaxed_keys=relaxed,
            )
        )
    return out


@dataclass(frozen=True)
class ThLatencyPoint:
    """Measured Q6 latency under one th layout."""

    th: float
    q6_time: float
    revenue: int


def th_latency_ablation(
    ths: Sequence[float] = (0.0, 0.6, 1.0), scale: float = 5e-5
) -> List[ThLatencyPoint]:
    """End-to-end Fig. 8a: the th trade-off in actual query latency."""
    out: List[ThLatencyPoint] = []
    for th in ths:
        engine = PushTapEngine.build(
            scale=scale, th=th, defrag_period=0, block_rows=256
        )
        result = engine.query("Q6")
        out.append(ThLatencyPoint(th=th, q6_time=result.total_time,
                                  revenue=result.rows["revenue"]))
    return out


@dataclass(frozen=True)
class FallbackPoint:
    """Key-column PIM scan vs normal-column CPU fallback, full scale."""

    path: str
    scan_time: float


def key_column_fallback_ablation(
    num_rows: int = 60_000_000,
    width: int = 6,
    part_row_width: int = 8,
    config: Optional[SystemConfig] = None,
) -> List[FallbackPoint]:
    """§4.1.2: the cost of demoting a scanned column to normal.

    PIM path: the whole PIM array streams the column's part. CPU path:
    the memory bus streams every part containing the column's bytes.
    """
    config = config or dimm_system()
    pim = column_scan_cost(config, num_rows, width, part_row_width=part_row_width)
    cpu_bytes = num_rows * part_row_width * config.geometry.devices_per_rank
    cpu_time = cpu_bytes / config.total_cpu_bandwidth
    return [
        FallbackPoint("PIM (key column)", pim.total_time),
        FallbackPoint("CPU fallback (normal column)", cpu_time),
    ]
