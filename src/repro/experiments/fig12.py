"""Figure 12 — defragmentation strategies and architecture comparison.

* **(a)** defragmentation time under purely-CPU, purely-PIM, and the
  hybrid strategy of §5.3: with the unified format producing part row
  widths from 2 B to 20+ B, neither pure strategy wins everywhere; the
  hybrid picks per part via Eq. 3 and is never worse.
* **(b)** Q6 execution time across WRAM sizes (16 kB–256 kB) on the
  original PIM architecture vs PUSHtap's extended controller (§7.5):
  the original improves 6.4× as WRAM grows because mode-switch overhead
  amortizes (88.8 % → 35.3 % of compute time); PUSHtap barely moves
  (~7 % overhead) and is ~3× faster at the default 64 kB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import SystemConfig, dimm_system
from repro.core.defrag import comm_cpu_time, comm_pim_time, pim_breakeven_width
from repro.experiments.common import build_layouts, query_scan_columns
from repro.mvcc.metadata import METADATA_BYTES
from repro.olap.cost import ScanCost, column_scan_cost
from repro.units import KIB, US
from repro.workloads.chbench import all_queries

__all__ = [
    "DefragStrategyPoint",
    "defrag_strategy_comparison",
    "WramPoint",
    "wram_size_sweep",
    "DEFAULT_WRAM_SIZES",
]

DEFAULT_WRAM_SIZES = (16 * KIB, 32 * KIB, 64 * KIB, 128 * KIB, 256 * KIB)


@dataclass(frozen=True)
class DefragStrategyPoint:
    """Defragmentation time of one strategy over the real table parts."""

    strategy: str
    total_time: float
    per_part: Dict[int, float]


def defrag_strategy_comparison(
    delta_rows: int = 50_000,
    newest_fraction: float = 0.9,
    th: float = 0.6,
    config: Optional[SystemConfig] = None,
) -> List[DefragStrategyPoint]:
    """Fig. 12a: CPU vs PIM vs hybrid defragmentation.

    Uses the real compact-aligned layouts' part widths (2 B to 20+ B
    across the CH tables under th = 0.6) with the Eq. 1/2 cost model;
    hybrid assigns each part by the Eq. 3 break-even width.
    """
    config = config or dimm_system()
    layouts = build_layouts(th, all_queries(), config)
    widths: List[int] = []
    for layout in layouts.values():
        widths.extend(part.row_width for part in layout.parts)
    d = config.geometry.devices_per_rank
    bdw_cpu = config.total_cpu_bandwidth
    bdw_pim = config.total_pim_bandwidth
    threshold = pim_breakeven_width(METADATA_BYTES, newest_fraction, bdw_cpu, bdw_pim)
    share = max(1, delta_rows // len(widths))

    out: List[DefragStrategyPoint] = []
    for strategy in ("cpu", "pim", "hybrid"):
        per_part: Dict[int, float] = {}
        for index, width in enumerate(widths):
            use_pim = strategy == "pim" or (strategy == "hybrid" and width > threshold)
            if use_pim:
                cost = comm_pim_time(
                    METADATA_BYTES, share, newest_fraction, d, width, bdw_cpu, bdw_pim
                )
            else:
                cost = comm_cpu_time(
                    METADATA_BYTES, share, newest_fraction, d, width, bdw_cpu
                )
            per_part[index] = cost
        out.append(DefragStrategyPoint(strategy, sum(per_part.values()), per_part))
    return out


@dataclass(frozen=True)
class WramPoint:
    """One WRAM size of the Fig. 12b sweep."""

    wram_bytes: int
    controller: str
    q6_time: float
    control_fraction: float
    cpu_blocked_time: float


def wram_size_sweep(
    wram_sizes: Sequence[int] = DEFAULT_WRAM_SIZES,
    scale: float = 1.0,
    config: Optional[SystemConfig] = None,
) -> List[WramPoint]:
    """Fig. 12b: Q6 time vs WRAM size, original PIM vs PUSHtap."""
    config = config or dimm_system()
    columns = query_scan_columns("Q6", scale)
    out: List[WramPoint] = []
    for controller in ("original", "pushtap"):
        for wram in wram_sizes:
            costs: List[ScanCost] = [
                column_scan_cost(
                    config,
                    rows,
                    width,
                    controller_kind=controller,
                    wram_bytes=wram,
                )
                for rows, width in columns
            ]
            total = sum(c.total_time for c in costs)
            control = sum(c.control_time for c in costs)
            blocked = sum(c.cpu_blocked_time for c in costs)
            out.append(
                WramPoint(
                    wram_bytes=wram,
                    controller=controller,
                    q6_time=total,
                    control_fraction=control / total,
                    cpu_blocked_time=blocked,
                )
            )
    return out
