"""Figure 11 — the defragmentation study (§7.4).

* **(a)** OLTP execution time with/without defragmentation plus the
  defragmentation overhead ratio (paper: < 1.5 % of OLTP time). Measured
  functionally at reduced scale.
* **(b)** OLAP overhead of *fragmentation* (queries stream stale delta
  rows — sub-8 B holes cannot be skipped) versus the cost of *periodic
  defragmentation*, across the defragmentation period. Fragmentation
  grows linearly with the transaction count while defragmentation
  amortizes its fixed overhead, crossing at ~10k transactions
  (paper: 2.05× at the crossover).
* **(c)** transaction time breakdown (indexing / allocation / computation
  dominate; version-chain traversal < 0.1 %).
* **(d)** defragmentation time breakdown (chain traversal + row copy,
  negligible per row compared to a transaction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.pushtap_model import PushTapQueryModel
from repro.core.config import SystemConfig, dimm_system
from repro.core.engine import PushTapEngine
from repro.experiments.common import query_scan_columns

__all__ = [
    "DefragOLTPPoint",
    "oltp_defrag_overhead",
    "FragmentationPoint",
    "fragmentation_vs_defrag",
    "transaction_breakdown",
    "defrag_breakdown",
]


@dataclass(frozen=True)
class DefragOLTPPoint:
    """One txn-count point of Fig. 11a."""

    num_txns: int
    oltp_time_with_defrag: float
    oltp_time_without_defrag: float
    defrag_time: float

    @property
    def defrag_overhead(self) -> float:
        """Defragmentation time relative to total transaction time."""
        if self.oltp_time_with_defrag == 0:
            return 0.0
        return self.defrag_time / self.oltp_time_with_defrag


def oltp_defrag_overhead(
    txn_counts: Sequence[int] = (100, 200, 400, 800),
    defrag_period: int = 200,
    scale: float = 2e-5,
    config: Optional[SystemConfig] = None,
) -> List[DefragOLTPPoint]:
    """Fig. 11a: run the OLTP stream with and without defragmentation."""
    out: List[DefragOLTPPoint] = []
    for count in txn_counts:
        with_engine = PushTapEngine.build(
            config=config,
            scale=scale,
            defrag_period=defrag_period,
            block_rows=256,
            extra_rows=12 * count,
        )
        with_engine.run_transactions(count, with_engine.make_driver())
        without_engine = PushTapEngine.build(
            config=config,
            scale=scale,
            defrag_period=0,
            block_rows=256,
            extra_rows=12 * count,
        )
        without_engine.run_transactions(count, without_engine.make_driver())
        out.append(
            DefragOLTPPoint(
                num_txns=count,
                oltp_time_with_defrag=with_engine.stats.oltp_time,
                oltp_time_without_defrag=without_engine.stats.oltp_time,
                defrag_time=with_engine.stats.defrag_time,
            )
        )
    return out


@dataclass(frozen=True)
class FragmentationPoint:
    """One txn-count point of Fig. 11b."""

    num_txns: int
    fragmentation_overhead: float
    defrag_overhead: float

    @property
    def ratio(self) -> float:
        """Fragmentation penalty over defragmentation cost."""
        if self.defrag_overhead == 0:
            return float("inf")
        return self.fragmentation_overhead / self.defrag_overhead


def fragmentation_vs_defrag(
    txn_counts: Sequence[int] = (1_000, 3_000, 10_000, 30_000, 100_000, 1_000_000),
    queries_per_window: float = 8.0,
    rotation_skew: Optional[float] = None,
    config: Optional[SystemConfig] = None,
) -> List[FragmentationPoint]:
    """Fig. 11b: fragmentation penalty vs defragmentation cost.

    For a candidate defragmentation period of ``num_txns`` transactions,
    *fragmentation overhead* is the extra query time the queries in that
    window pay for streaming un-defragmented delta rows; *defragmentation
    overhead* is the one run at the window's end. Fragmentation grows
    linearly; the fixed defragmentation overhead amortizes — the paper
    picks 10k where fragmentation first dominates (2.05×).
    """
    config = config or dimm_system()
    model = PushTapQueryModel(config)
    columns = (
        query_scan_columns("Q1")
        + query_scan_columns("Q6")
        + query_scan_columns("Q9")
    )
    # The scans are dominated by ORDERLINE; relate delta rows to it.
    base_rows = max(rows for rows, _ in columns)
    clean_scan = model.scan_time(columns, 0.0)
    # Delta blocks materialize round-robin over rotations while updates hit
    # them unevenly, so the streamed block footprint exceeds the allocated
    # rows by up to the device count (the functional allocator shows the
    # same effect).
    skew = rotation_skew if rotation_skew is not None else float(
        config.geometry.devices_per_rank
    )
    out: List[FragmentationPoint] = []
    for n in txn_counts:
        # Average delta occupancy over the window is half the final value.
        delta_fraction = 0.5 * n * model.writes_per_txn * skew / base_rows
        frag_per_query = model.scan_time(columns, delta_fraction) - clean_scan
        fragmentation = frag_per_query * queries_per_window
        out.append(
            FragmentationPoint(
                num_txns=n,
                fragmentation_overhead=fragmentation,
                defrag_overhead=model.defrag_time(n),
            )
        )
    return out


def transaction_breakdown(
    num_txns: int = 300,
    scale: float = 2e-5,
    config: Optional[SystemConfig] = None,
) -> Dict[str, float]:
    """Fig. 11c: per-phase fractions of transaction time."""
    engine = PushTapEngine.build(
        config=config,
        scale=scale,
        defrag_period=0,
        block_rows=256,
        extra_rows=12 * num_txns,
    )
    engine.run_transactions(num_txns, engine.make_driver())
    breakdown = engine.oltp.breakdown.as_dict()
    total = sum(breakdown.values())
    return {phase: time / total for phase, time in breakdown.items()}


def defrag_breakdown(
    num_txns: int = 400,
    scale: float = 2e-5,
    config: Optional[SystemConfig] = None,
) -> Dict[str, float]:
    """Fig. 11d: per-phase fractions of defragmentation time."""
    engine = PushTapEngine.build(
        config=config,
        scale=scale,
        defrag_period=0,
        block_rows=256,
        extra_rows=12 * num_txns,
    )
    engine.run_transactions(num_txns, engine.make_driver())
    results = engine.defragment()
    totals: Dict[str, float] = {
        "fixed": 0.0,
        "chain_traversal": 0.0,
        "metadata_read": 0.0,
        "broadcast": 0.0,
        "copy_cpu": 0.0,
        "copy_pim": 0.0,
    }
    for result in results.values():
        b = result.breakdown
        totals["fixed"] += b.fixed
        totals["chain_traversal"] += b.chain_traversal
        totals["metadata_read"] += b.metadata_read
        totals["broadcast"] += b.broadcast
        totals["copy_cpu"] += b.copy_cpu
        totals["copy_pim"] += b.copy_pim
    grand = sum(totals.values())
    return {phase: time / grand for phase, time in totals.items()}
