"""Figure 8 — unified data format results (§7.2).

* **(a)** CPU and PIM effective bandwidth as the threshold *th* sweeps
  0 → 1 (the trade-off of §4.1.2; the paper picks th = 0.6 giving
  97.4 % PIM / 59.8 % CPU).
* **(b)** storage breakdown: data vs. padding vs. snapshot bitmap
  (paper: negligible padding, 2.3 % bitmap).
* **(c)/(d)** the key-column study: maximum CPU (PIM) effective bandwidth
  achievable while keeping the other side above 70 %, as the OLAP subset
  grows Q1-1 → Q1-22 → ALL.
* The §7.2 generality check on HTAPBench (57 % CPU / 98 % PIM at
  th = 0.55).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import SystemConfig, dimm_system
from repro.experiments.common import (
    build_layouts,
    database_cpu_bandwidth,
    database_pim_bandwidth,
    database_storage,
)
from repro.format.bandwidth import (
    StorageBreakdown,
    cpu_lines_per_row,
    pim_column_efficiency,
)
from repro.format.binpack import compact_aligned_layout
from repro.workloads.chbench import all_queries, ch_schema
from repro.workloads.htapbench import (
    HTAPBENCH_TABLES,
    htapbench_key_columns,
    htapbench_scan_weights,
    htapbench_schema,
)

__all__ = [
    "ThPoint",
    "th_sweep",
    "storage_breakdown_point",
    "SubsetPoint",
    "subset_sweep",
    "htapbench_point",
    "DEFAULT_THS",
]

DEFAULT_THS = (0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class ThPoint:
    """One point of the Fig. 8a sweep."""

    th: float
    cpu_bandwidth: float
    pim_bandwidth: float
    total_parts: int


def th_sweep(
    ths: Sequence[float] = DEFAULT_THS,
    queries: Optional[Sequence[str]] = None,
    config: Optional[SystemConfig] = None,
) -> List[ThPoint]:
    """Fig. 8a: CPU/PIM effective bandwidth vs th."""
    config = config or dimm_system()
    query_set = list(queries) if queries is not None else all_queries()
    out: List[ThPoint] = []
    for th in ths:
        layouts = build_layouts(th, query_set, config)
        out.append(
            ThPoint(
                th=th,
                cpu_bandwidth=database_cpu_bandwidth(layouts, config),
                pim_bandwidth=database_pim_bandwidth(layouts, query_set),
                total_parts=sum(l.num_parts for l in layouts.values()),
            )
        )
    return out


def storage_breakdown_point(
    th: float = 0.6,
    delta_fraction: float = 0.1,
    queries: Optional[Sequence[str]] = None,
    config: Optional[SystemConfig] = None,
) -> StorageBreakdown:
    """Fig. 8b: database storage breakdown at one th."""
    config = config or dimm_system()
    query_set = list(queries) if queries is not None else all_queries()
    layouts = build_layouts(th, query_set, config)
    return database_storage(layouts, delta_fraction)


@dataclass(frozen=True)
class SubsetPoint:
    """One OLAP-subset point of Fig. 8c/d."""

    subset: str
    num_key_columns: int
    max_cpu_with_pim_constraint: float
    max_pim_with_cpu_constraint: float
    cpu_constraint_feasible: bool
    pim_constraint_feasible: bool


def subset_sweep(
    subset_ends: Sequence[int] = (1, 3, 6, 10, 16, 22),
    constraint: float = 0.70,
    ths: Sequence[float] = DEFAULT_THS,
    config: Optional[SystemConfig] = None,
) -> List[SubsetPoint]:
    """Fig. 8c/d: bandwidth head-room as the query subset grows.

    Subsets are Q1..Qk prefixes plus the degenerate ``ALL`` (every column
    a key column — the naïve aligned format).
    """
    config = config or dimm_system()
    out: List[SubsetPoint] = []
    for end in subset_ends:
        queries = [f"Q{i}" for i in range(1, end + 1)]
        out.append(_subset_point(f"Q1-{end}", queries, None, constraint, ths, config))
    out.append(_subset_point("ALL", all_queries(), "all", constraint, ths, config))
    return out


def _subset_point(
    label: str,
    queries: Sequence[str],
    key_override: Optional[str],
    constraint: float,
    ths: Sequence[float],
    config: SystemConfig,
) -> SubsetPoint:
    schemas = ch_schema()
    d = config.geometry.devices_per_rank
    points = []
    num_keys = 0
    for th in ths:
        if key_override == "all":
            layouts = {
                name: compact_aligned_layout(
                    schemas[name], schemas[name].column_names, d, th
                )
                for name in schemas
            }
            num_keys = sum(len(s.columns) for s in schemas.values())
        else:
            layouts = build_layouts(th, queries, config)
            num_keys = sum(len(l.key_columns) for l in layouts.values())
        cpu = database_cpu_bandwidth(layouts, config)
        pim = database_pim_bandwidth(layouts, queries)
        points.append((th, cpu, pim))
    cpu_candidates = [c for _, c, p in points if p >= constraint]
    pim_candidates = [p for _, c, p in points if c >= constraint]
    cpu_feasible = bool(cpu_candidates)
    pim_feasible = bool(pim_candidates)
    max_cpu = max(cpu_candidates) if cpu_feasible else max(
        c for _, c, p in points
    )
    max_pim = max(pim_candidates) if pim_feasible else max(
        p for _, c, p in points
    )
    return SubsetPoint(
        subset=label,
        num_key_columns=num_keys,
        max_cpu_with_pim_constraint=max_cpu,
        max_pim_with_cpu_constraint=max_pim,
        cpu_constraint_feasible=cpu_feasible,
        pim_constraint_feasible=pim_feasible,
    )


def htapbench_point(
    th: float = 0.55, config: Optional[SystemConfig] = None
) -> Dict[str, float]:
    """§7.2 generality: CPU/PIM bandwidth on HTAPBench at one th."""
    config = config or dimm_system()
    schemas = htapbench_schema()
    d = config.geometry.devices_per_rank
    row_weights = {"account": 10, "teller": 1, "branch": 1, "txn_history": 50}
    line = config.geometry.cache_line_bytes
    useful = transferred = 0.0
    weighted = total = 0.0
    for name in HTAPBENCH_TABLES:
        layout = compact_aligned_layout(
            schemas[name], htapbench_key_columns(name), d, th
        )
        rows = row_weights[name]
        useful += rows * layout.useful_bytes_per_row()
        transferred += rows * cpu_lines_per_row(layout, config.geometry) * line
        for column, weight in htapbench_scan_weights(name).items():
            w = weight * rows
            weighted += w * pim_column_efficiency(layout, column)
            total += w
    return {
        "th": th,
        "cpu_bandwidth": useful / transferred,
        "pim_bandwidth": weighted / total,
    }
