"""Command-line experiment runner.

Regenerate any of the paper's figures (or the ablations) directly::

    python -m repro.experiments fig8a
    python -m repro.experiments fig9b fig10
    python -m repro.experiments all

Each experiment prints the same rows/series its benchmark reports; see
EXPERIMENTS.md for the paper-vs-measured comparison.

Figure runs can leave a machine-readable telemetry trail::

    python -m repro.experiments fig9a --metrics-out fig9a.json
    python -m repro.experiments report-metrics fig9a.json
    python -m repro.experiments report-metrics --csv fig9a.json

The fault-injection harness runs the mixed workload under seeded control
faults and checks consistency invariants::

    python -m repro.experiments fault-sweep --seed 1 2 3 \\
        --rates drop_launch=0.05,forced_abort=0.1

The multi-tenant serving layer (admission control, adaptive HTAP
scheduler, per-tenant SLOs) runs deterministic simulated-time serving::

    python -m repro.experiments serve --tenants 4 --policy batched --seed 7
    python -m repro.experiments serve --ablation --out ablation.json

The roofline sweep benchmarks every registered hardware substrate and
attributes each operator to its bottleneck::

    python -m repro.experiments roofline
    python -m repro.experiments roofline --substrates ddr5 hbm3 --tag 8

Figures can also run on any registered substrate instead of the default
DIMM system::

    python -m repro.experiments fig9a fig11 --substrate hbm3

The sharded cluster sweeps shard-count scaling and 2PC overhead (and,
with ``--faults``, the cross-shard atomicity fault sweep)::

    python -m repro.experiments cluster --shards 1 2 4 --check
    python -m repro.experiments cluster --faults --fault-seeds 1 2 3
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro import telemetry
from repro.experiments import ablations, fig8, fig9, fig10, fig11, fig12
from repro.report import format_percent, format_table, format_time_ns
from repro.telemetry import export as telemetry_export


def run_fig8a(config=None) -> None:
    print(format_table(
        ["th", "CPU eff bw", "PIM eff bw", "parts"],
        [
            [p.th, format_percent(p.cpu_bandwidth), format_percent(p.pim_bandwidth), p.total_parts]
            for p in fig8.th_sweep(config=config)
        ],
    ))


def run_fig8b(config=None) -> None:
    sb = fig8.storage_breakdown_point(0.6, config=config)
    print(format_table(
        ["component", "share"],
        [
            ["data", format_percent(sb.data_bytes / sb.total_bytes)],
            ["padding", format_percent(sb.padding_fraction)],
            ["snapshot bitmap", format_percent(sb.bitmap_fraction)],
        ],
    ))


def run_fig8cd(config=None) -> None:
    print(format_table(
        ["subset", "key cols", "max CPU (PIM>=70%)", "max PIM (CPU>=70%)"],
        [
            [
                p.subset,
                p.num_key_columns,
                format_percent(p.max_cpu_with_pim_constraint),
                format_percent(p.max_pim_with_cpu_constraint),
            ]
            for p in fig8.subset_sweep(config=config)
        ],
    ))


def run_fig9a(config=None) -> None:
    print(format_table(
        ["format", "mean txn time", "vs RS"],
        [
            [p.label, format_time_ns(p.mean_txn_time), f"{p.relative_to_rs:.3f}x"]
            for p in fig9.oltp_comparison(config=config)
        ],
    ))


def run_fig9b(config=None) -> None:
    points = fig9.olap_comparison(config=config)
    ideal = {p.num_txns: p.scan_time for p in points if p.system == "ideal"}
    print(format_table(
        ["system", "txns", "consistency", "scan", "overhead vs ideal"],
        [
            [
                p.system,
                f"{p.num_txns:,}",
                format_time_ns(p.consistency_time),
                format_time_ns(p.scan_time),
                format_percent(p.overhead_vs(ideal[p.num_txns])),
            ]
            for p in points
        ],
    ))


def run_fig10(config=None) -> None:
    for system in ("pushtap", "mi"):
        print(format_table(
            ["system", "OLTP (MtpmC)", "OLAP (QphH)"],
            [
                [p.system, f"{p.oltp_tpmc / 1e6:.1f}", f"{p.olap_qphh:,.0f}"]
                for p in fig10.frontier(system, 12, config=config)
            ],
        ))
    model = fig10.FrontierModel(config) if config is not None else None
    ratios = fig10.peak_ratios(model)
    print(format_table(
        ["metric", "value"],
        [[k, f"{v:,.2f}"] for k, v in ratios.items()],
    ))


def run_fig11(config=None) -> None:
    print(format_table(
        ["txns in window", "fragmentation", "defragmentation", "ratio"],
        [
            [
                f"{p.num_txns:,}",
                format_time_ns(p.fragmentation_overhead),
                format_time_ns(p.defrag_overhead),
                f"{p.ratio:.2f}x",
            ]
            for p in fig11.fragmentation_vs_defrag(config=config)
        ],
    ))
    print("\ntransaction breakdown:")
    breakdown = fig11.transaction_breakdown(num_txns=100, config=config)
    for phase, share in breakdown.items():
        print(f"  {phase:10s} {format_percent(share)}")


def run_fig12a(config=None) -> None:
    print(format_table(
        ["strategy", "defragmentation time"],
        [
            [p.strategy, format_time_ns(p.total_time)]
            for p in fig12.defrag_strategy_comparison(config=config)
        ],
    ))


def run_fig12b(config=None) -> None:
    print(format_table(
        ["controller", "WRAM", "Q6 time", "control share"],
        [
            [
                p.controller,
                f"{p.wram_bytes // 1024} kB",
                format_time_ns(p.q6_time),
                format_percent(p.control_fraction),
            ]
            for p in fig12.wram_size_sweep(config=config)
        ],
    ))


def run_ablations(config=None) -> None:
    print(format_table(
        ["policy", "padding", "PIM eff bw"],
        [
            [p.policy, format_percent(p.padding_fraction), format_percent(p.pim_bandwidth)]
            for p in ablations.leftover_policy_ablation(config=config)
        ],
    ))
    print(format_table(
        ["path", "scan time"],
        [
            [p.path, format_time_ns(p.scan_time)]
            for p in ablations.key_column_fallback_ablation(config=config)
        ],
    ))


EXPERIMENTS: Dict[str, Callable[..., None]] = {
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig8cd": run_fig8cd,
    "fig9a": run_fig9a,
    "fig9b": run_fig9b,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12a": run_fig12a,
    "fig12b": run_fig12b,
    "ablations": run_ablations,
}


def report_metrics(argv) -> int:
    """``report-metrics``: pretty-print a telemetry JSON dump."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments report-metrics",
        description="Render a telemetry dump produced by --metrics-out.",
    )
    parser.add_argument("path", help="metrics JSON file to render")
    parser.add_argument(
        "--csv", action="store_true", help="emit flat CSV instead of tables"
    )
    args = parser.parse_args(argv)
    try:
        with open(args.path, "r", encoding="utf-8") as fh:
            registry = telemetry_export.from_json(fh.read())
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc.strerror}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {args.path} is not a telemetry JSON dump: {exc}", file=sys.stderr)
        return 2
    if args.csv:
        print(telemetry_export.to_csv(registry), end="")
    else:
        print(telemetry_export.render_report(registry))
    return 0


def profile(argv) -> int:
    """``profile``: trace one workload and write the perf snapshot."""
    import json
    import os

    from repro.trace.chrome import to_chrome_json
    from repro.trace.flame import to_folded
    from repro.trace.profile import run_profile

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments profile",
        description=(
            "Run one workload under the structured tracer; write a Chrome "
            "trace (Perfetto-loadable), folded flamegraph stacks, a ranked "
            "bottleneck report, and a machine-readable BENCH_<tag>.json "
            "perf snapshot."
        ),
    )
    parser.add_argument(
        "--workload",
        choices=["tpcc", "ch", "mixed"],
        default="mixed",
        help="workload mix to trace",
    )
    parser.add_argument(
        "--model",
        choices=["pushtap", "original"],
        default="pushtap",
        help="memory controller variant under test",
    )
    parser.add_argument(
        "--intervals", type=int, default=4, help="query intervals (or query count)"
    )
    parser.add_argument(
        "--txns-per-query", type=int, default=25, help="transactions per interval"
    )
    parser.add_argument("--scale", type=float, default=2e-5, help="CH-benCH scale")
    parser.add_argument(
        "--defrag-period", type=int, default=200, help="transactions between defrags"
    )
    parser.add_argument("--seed", type=int, default=11, help="workload seed")
    parser.add_argument(
        "--out-dir", default=".", help="directory for trace.json / flame.folded"
    )
    parser.add_argument(
        "--tag", default="profile", help="snapshot tag (writes BENCH_<tag>.json)"
    )
    parser.add_argument(
        "--top", type=int, default=10, help="bottleneck rows to print"
    )
    parser.add_argument(
        "--max-samples",
        type=int,
        default=4096,
        help="histogram sample bound (bounded/decimating mode)",
    )
    parser.add_argument(
        "--no-per-unit-spans",
        action="store_true",
        help="skip per-PIM-unit detail spans (smaller trace)",
    )
    args = parser.parse_args(argv)
    result = run_profile(
        workload=args.workload,
        model=args.model,
        intervals=args.intervals,
        txns_per_query=args.txns_per_query,
        scale=args.scale,
        seed=args.seed,
        defrag_period=args.defrag_period,
        max_histogram_samples=args.max_samples,
        per_unit_spans=not args.no_per_unit_spans,
        tag=args.tag,
    )
    os.makedirs(args.out_dir, exist_ok=True)
    trace_path = os.path.join(args.out_dir, "trace.json")
    flame_path = os.path.join(args.out_dir, "flame.folded")
    bench_path = os.path.join(args.out_dir, f"BENCH_{args.tag}.json")
    with open(trace_path, "w", encoding="utf-8") as fh:
        fh.write(to_chrome_json(result.tracer))
    with open(flame_path, "w", encoding="utf-8") as fh:
        fh.write(to_folded(result.tracer))
    with open(bench_path, "w", encoding="utf-8") as fh:
        json.dump(result.bench, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(result.report.render(top=args.top))
    sim = result.bench["simulated"]
    wall = result.bench["wall_clock"]
    print(
        f"\nsimulated: {format_time_ns(sim['time_ns'])} "
        f"({sim['transactions']} txns, {sim['queries']} queries, "
        f"tpmC {sim['oltp_tpmc']:,.0f}, QphH {sim['olap_qphh']:,.0f})"
    )
    print(
        f"wall clock: build {wall['build_s']:.2f}s, run {wall['run_s']:.2f}s, "
        f"peak RSS {wall['peak_rss_kib'] or '?'} KiB"
    )
    print(f"\ntrace written to {trace_path} (load in https://ui.perfetto.dev)")
    print(f"folded stacks written to {flame_path}")
    print(f"bench snapshot written to {bench_path}")
    return 0


def bench(argv) -> int:
    """``bench``: the perf-regression harness (naive vs. vectorized)."""
    import json
    import os

    from repro.bench import run_bench
    from repro.bench.harness import span_before_after

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments bench",
        description=(
            "Rerun the standard profile workloads on both host execution "
            "modes (naive reference and vectorized), assert the simulated "
            "metrics are bit-identical to each other and to the committed "
            "baseline snapshot, measure the wall-clock speedup, and write "
            "a BENCH_<tag>.json comparison snapshot."
        ),
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=["tpcc", "oltp", "ch", "mixed", "cluster"],
        default=["mixed", "ch"],
        help=(
            "workloads to rerun in both modes ('oltp' is the gated "
            "transaction-only profile; 'cluster' compares the sharded "
            "workload at jobs=1 vs jobs=N)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default="BENCH_3.json",
        help="committed baseline snapshot to diff simulated metrics against",
    )
    parser.add_argument("--tag", default="5", help="writes BENCH_<tag>.json")
    parser.add_argument(
        "--intervals", type=int, default=6, help="query intervals (or query count)"
    )
    parser.add_argument(
        "--txns-per-query", type=int, default=30, help="transactions per interval"
    )
    parser.add_argument("--scale", type=float, default=2e-5, help="CH-benCH scale")
    parser.add_argument("--seed", type=int, default=11, help="workload seed")
    parser.add_argument(
        "--defrag-period", type=int, default=200, help="transactions between defrags"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help=(
            "required naive/vectorized wall-clock ratio on the scan "
            "workloads (0 disables the gate, e.g. for noisy CI hosts)"
        ),
    )
    parser.add_argument(
        "--min-oltp-speedup",
        type=float,
        default=0.0,
        help=(
            "required naive/vectorized wall-clock ratio on the 'oltp' "
            "workload (0 disables the gate; the identity gate always runs)"
        ),
    )
    parser.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=0.0,
        help=(
            "required jobs=1/jobs=N wall-clock ratio on the 'cluster' "
            "workload (0 disables the gate, e.g. on single-core CI "
            "hosts; the byte-identity gate always runs)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker processes for the 'cluster' workload's parallel run",
    )
    parser.add_argument(
        "--cluster-shards",
        type=int,
        default=4,
        help="shard count for the 'cluster' workload",
    )
    parser.add_argument(
        "--no-micro",
        action="store_true",
        help="skip the per-hot-path micro-benchmarks",
    )
    parser.add_argument(
        "--out-dir", default=".", help="directory for the BENCH_<tag>.json snapshot"
    )
    args = parser.parse_args(argv)

    result = run_bench(
        workloads=args.workloads,
        baseline_path=args.baseline or None,
        tag=args.tag,
        intervals=args.intervals,
        txns_per_query=args.txns_per_query,
        scale=args.scale,
        seed=args.seed,
        defrag_period=args.defrag_period,
        min_speedup=args.min_speedup,
        min_oltp_speedup=args.min_oltp_speedup,
        min_parallel_speedup=args.min_parallel_speedup,
        jobs=args.jobs,
        cluster_shards=args.cluster_shards,
        micro=not args.no_micro,
    )

    print(format_table(
        ["workload", "simulated time", "txns", "queries", "naive run", "vec run", "speedup", "identical"],
        [
            [
                run.workload,
                format_time_ns(run.bench["simulated"]["time_ns"]),
                run.bench["simulated"]["transactions"],
                run.bench["simulated"]["queries"],
                f"{float(run.naive_wall['run_s']):.3f}s",
                f"{float(run.bench['wall_clock']['run_s']):.3f}s",
                f"{run.speedup:.2f}x",
                "yes" if not run.mode_drift else "NO",
            ]
            for run in result.runs
        ],
    ))

    if result.cluster is not None:
        c = result.cluster
        print(
            f"\ncluster workload ({c.shards} shards, same simulated "
            "workload three ways):"
        )
        print(format_table(
            ["run", "wall-clock", "vs jobs=1 (vec)", "identical"],
            [
                ["naive jobs=1", f"{c.naive_s:.3f}s", "-",
                 "yes" if not c.mode_drift else "NO"],
                ["vectorized jobs=1", f"{c.sequential_s:.3f}s", "1.00x", "-"],
                [f"vectorized jobs={c.jobs}", f"{c.parallel_s:.3f}s",
                 f"{c.parallel_speedup:.2f}x",
                 "yes" if not c.jobs_drift else "NO"],
            ],
        ))
        for drift in c.mode_drift:
            print(f"MODE DRIFT [cluster]: {drift}", file=sys.stderr)
        for drift in c.jobs_drift:
            print(f"JOBS DRIFT [cluster]: {drift}", file=sys.stderr)

    if result.hot_paths:
        print("\nhot paths (host wall-clock, naive -> vectorized):")
        print(format_table(
            ["hot path", "naive", "vectorized", "speedup"],
            [
                [
                    p.name,
                    f"{p.naive_s * 1e3:.2f}ms",
                    f"{p.vectorized_s * 1e3:.2f}ms",
                    f"{p.speedup:.1f}x",
                ]
                for p in result.hot_paths
            ],
        ))

    for run in result.runs:
        for drift in run.mode_drift:
            print(f"MODE DRIFT [{run.workload}]: {drift}", file=sys.stderr)
    if result.baseline_compared:
        baseline_run = next(
            run for run in result.runs if run.workload == result.baseline_workload
        )
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        rows = span_before_after(baseline, baseline_run.bench)
        print(
            f"\nper-span simulated self-time vs {args.baseline} "
            f"(tag {result.baseline_tag}, workload {result.baseline_workload}):"
        )
        print(format_table(
            ["span", "baseline self", "current self", "drift"],
            [
                [
                    name,
                    format_time_ns(before),
                    format_time_ns(after),
                    "none" if before == after else f"{after - before:+.3f}ns",
                ]
                for name, before, after in rows
            ],
        ))
        for drift in result.baseline_drift:
            print(f"BASELINE DRIFT: {drift}", file=sys.stderr)
    elif args.baseline:
        print(
            f"\nbaseline {args.baseline} not compared (different params or "
            "workload set; the naive-vs-vectorized equivalence gate still ran)"
        )

    os.makedirs(args.out_dir, exist_ok=True)
    out_path = os.path.join(args.out_dir, f"BENCH_{args.tag}.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(result.snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nbench snapshot written to {out_path}")

    if not result.simulated_identical:
        print("FAIL: simulated metrics differ between modes", file=sys.stderr)
    if result.baseline_drift:
        print("FAIL: simulated metrics drifted from the baseline", file=sys.stderr)
    if not result.speedup_ok:
        print(
            f"FAIL: scan-workload speedup below {result.min_speedup:.1f}x",
            file=sys.stderr,
        )
    if not result.oltp_speedup_ok:
        print(
            f"FAIL: oltp-workload speedup below {result.min_oltp_speedup:.1f}x",
            file=sys.stderr,
        )
    if not result.parallel_speedup_ok:
        print(
            "FAIL: cluster jobs speedup below "
            f"{result.min_parallel_speedup:.1f}x",
            file=sys.stderr,
        )
    return 0 if result.passed else 1


def roofline(argv) -> int:
    """``roofline``: substrate bandwidth ceilings vs achieved operators."""
    import json
    import os

    from repro.bench.micro import DEFAULT_SIZES
    from repro.bench.roofline import (
        DEFAULT_OPERATOR_SIZES,
        render_roofline,
        run_roofline,
    )
    from repro.pim.substrate import available_substrates

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments roofline",
        description=(
            "Sweep PrIM-style single-unit microbenchmarks and the end-to-"
            "end OLAP operators across hardware substrates, classify each "
            "operator as memory/compute/control-bound against the "
            "substrate's bandwidth ceilings, cross-check the accounting "
            "against the exported Chrome trace, and write a "
            "BENCH_<tag>.json roofline snapshot."
        ),
    )
    parser.add_argument(
        "--substrates",
        nargs="+",
        choices=available_substrates(),
        default=None,
        help="substrates to sweep (default: all registered)",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_OPERATOR_SIZES),
        help="table sizes (rows) for the end-to-end operator sweep",
    )
    parser.add_argument(
        "--micro-sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_SIZES),
        help="operand sizes (rows) for the single-unit microbenchmarks",
    )
    parser.add_argument(
        "--block-rows", type=int, default=256, help="storage block size (rows)"
    )
    parser.add_argument("--tag", default="8", help="writes BENCH_<tag>.json")
    parser.add_argument(
        "--out-dir", default=".", help="directory for the BENCH_<tag>.json snapshot"
    )
    args = parser.parse_args(argv)
    snapshot = run_roofline(
        args.substrates,
        sizes=args.sizes,
        micro_sizes=args.micro_sizes,
        block_rows=args.block_rows,
        tag=args.tag,
    )
    print(render_roofline(snapshot))
    os.makedirs(args.out_dir, exist_ok=True)
    out_path = os.path.join(args.out_dir, f"BENCH_{args.tag}.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nroofline snapshot written to {out_path}")
    if not all(check["ok"] for check in snapshot["trace_check"].values()):
        print(
            "FAIL: trace-derived bandwidth disagrees with operator accounting",
            file=sys.stderr,
        )
        return 1
    return 0


def fault_sweep(argv) -> int:
    """``fault-sweep``: run the workload under injected control faults."""
    from repro.faults.plan import FaultRates
    from repro.faults.sweep import run_fault_sweep

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments fault-sweep",
        description=(
            "Drive the mixed HTAP workload under seeded fault injection and "
            "report survival, invariant violations, and throughput degradation."
        ),
    )
    parser.add_argument(
        "--seed", type=int, nargs="+", default=[1], help="fault/workload seed(s)"
    )
    parser.add_argument(
        "--rates",
        default="drop_launch=0.05,duplicate_launch=0.05,forced_abort=0.1",
        help="comma-separated hook=rate pairs (see repro.faults.plan.HOOKS)",
    )
    parser.add_argument(
        "--intervals", type=int, default=6, help="query intervals per run"
    )
    parser.add_argument(
        "--txns-per-query", type=int, default=30, help="transactions per interval"
    )
    parser.add_argument("--scale", type=float, default=2e-5, help="CH-benCH scale")
    parser.add_argument(
        "--defrag-period", type=int, default=200, help="transactions between defrags"
    )
    parser.add_argument(
        "--controller",
        choices=["pushtap", "original"],
        default="pushtap",
        help="memory controller variant under test",
    )
    parser.add_argument(
        "--workload",
        choices=["mixed", "serve"],
        default="mixed",
        help="drive the mixed batch workload or the serving loop",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="enable telemetry and dump collected metrics to PATH as JSON",
    )
    args = parser.parse_args(argv)
    rates = FaultRates.parse(args.rates)
    registry = telemetry.enable() if args.metrics_out else None
    failed = False
    try:
        rows = []
        for seed in args.seed:
            result = run_fault_sweep(
                seed,
                rates,
                intervals=args.intervals,
                txns_per_query=args.txns_per_query,
                scale=args.scale,
                defrag_period=args.defrag_period,
                controller_kind=args.controller,
                workload=args.workload,
            )
            rows.append([
                seed,
                result.plan_hash[:12],
                "yes" if result.survived else "NO",
                sum(result.injected.values()),
                sum(result.detected.values()),
                result.retries,
                result.checks,
                len(result.violations),
                format_percent(result.tpmc_degradation),
                format_percent(result.qphh_degradation),
            ])
            if not result.survived:
                failed = True
                if result.error:
                    print(f"seed {seed}: {result.error}", file=sys.stderr)
                for violation in result.violations:
                    print(f"seed {seed}: INVARIANT: {violation}", file=sys.stderr)
        print(format_table(
            [
                "seed", "plan", "survived", "injected", "detected", "retries",
                "checks", "violations", "tpmC loss", "QphH loss",
            ],
            rows,
        ))
        if registry is not None:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(telemetry_export.to_json(registry))
            print(f"\nmetrics written to {args.metrics_out}")
    finally:
        if registry is not None:
            telemetry.disable()
    return 1 if failed else 0


def crash_sweep(argv) -> int:
    """``crash-sweep``: inject crashes, recover, verify nothing was lost."""
    import json

    from repro.wal.crash import CRASH_SWEEP_HOOKS, run_crash_sweep

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments crash-sweep",
        description=(
            "Drive a WAL-enabled engine into injected crashes "
            "(before/after the WAL append, mid-checkpoint), recover from "
            "disk, and assert the InvariantChecker passes and OLAP results "
            "are bit-identical to a never-crashed reference at the "
            "recovered commit horizon."
        ),
    )
    parser.add_argument(
        "--hooks",
        nargs="+",
        choices=list(CRASH_SWEEP_HOOKS),
        default=list(CRASH_SWEEP_HOOKS),
        help="crash hooks to sweep",
    )
    parser.add_argument(
        "--seed", type=int, nargs="+", default=[1, 2, 3],
        help="fault/workload seed(s) per hook",
    )
    parser.add_argument(
        "--txns", type=int, default=160, help="transactions per crashed run"
    )
    parser.add_argument(
        "--txns-per-query", type=int, default=20,
        help="transactions between interleaved OLAP queries (0 disables)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=24,
        help="commits between checkpoint spills (0 disables checkpoints)",
    )
    parser.add_argument("--scale", type=float, default=2e-5, help="CH-benCH scale")
    parser.add_argument(
        "--defrag-period", type=int, default=100,
        help="transactions between defrags",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="override the per-hook crash probability",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the sweep report to PATH as JSON",
    )
    args = parser.parse_args(argv)
    rows = []
    cells = []
    failed = False
    for hook in args.hooks:
        for seed in args.seed:
            result = run_crash_sweep(
                hook,
                seed,
                txns=args.txns,
                txns_per_query=args.txns_per_query,
                checkpoint_every=args.checkpoint_every,
                scale=args.scale,
                defrag_period=args.defrag_period,
                rate=args.rate,
            )
            cells.append(result.as_dict())
            rows.append([
                hook,
                seed,
                "yes" if result.crash_fired else "no",
                result.crashed_at_txn if result.crash_fired else "-",
                result.horizon,
                result.checkpoint_horizon,
                result.segments_applied,
                result.wal_records_replayed,
                "yes" if result.torn_tail else "no",
                "yes" if result.survived else "NO",
            ])
            if not result.survived:
                failed = True
                if result.error:
                    print(f"{hook} seed {seed}: {result.error}", file=sys.stderr)
                for violation in result.violations:
                    print(
                        f"{hook} seed {seed}: INVARIANT: {violation}",
                        file=sys.stderr,
                    )
                for mismatch in result.query_mismatches:
                    print(
                        f"{hook} seed {seed}: QUERY: {mismatch}", file=sys.stderr
                    )
    print(format_table(
        [
            "hook", "seed", "crashed", "at txn", "horizon", "ckpt",
            "segments", "replayed", "torn", "survived",
        ],
        rows,
    ))
    survived = sum(1 for cell in cells if cell["survived"])
    print(f"\n{survived}/{len(cells)} cells survived recovery")
    if args.out:
        report = {
            "params": {
                "hooks": list(args.hooks),
                "seeds": list(args.seed),
                "txns": args.txns,
                "txns_per_query": args.txns_per_query,
                "checkpoint_every": args.checkpoint_every,
                "scale": args.scale,
                "defrag_period": args.defrag_period,
                "rate": args.rate,
            },
            "cells": cells,
            "survived": survived,
            "total": len(cells),
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.out}")
    return 1 if failed else 0


def serve(argv) -> int:
    """``serve``: the multi-tenant serving loop (or the policy ablation)."""
    import json

    from repro.serve.loop import ServeConfig
    from repro.serve.runner import run_ivm_ablation, run_policy_ablation, run_serve
    from repro.serve.scheduler import POLICIES
    from repro.serve.slo import SLOTargets

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description=(
            "Serve N tenants through the admission controller and adaptive "
            "HTAP scheduler over simulated time; print (and optionally "
            "write) the per-tenant SLO report. --ablation sweeps arrival "
            "rate x scheduler policy instead."
        ),
    )
    parser.add_argument("--tenants", type=int, default=4, help="client sessions")
    parser.add_argument(
        "--requests", type=int, default=64, help="requests per tenant"
    )
    parser.add_argument(
        "--policy",
        choices=list(POLICIES),
        default="batched",
        help="HTAP scheduler policy",
    )
    parser.add_argument("--seed", type=int, default=7, help="run seed")
    parser.add_argument(
        "--arrival",
        choices=["open", "closed"],
        default="open",
        help="open-loop Poisson or closed-loop think-time arrivals",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=50_000.0,
        help="open-loop arrival rate per tenant (req/s, simulated)",
    )
    parser.add_argument(
        "--think-ns",
        type=float,
        default=20_000.0,
        help="closed-loop mean think time (ns)",
    )
    parser.add_argument(
        "--olap-fraction",
        type=float,
        default=0.1,
        help="fraction of requests that are analytical queries",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=16, help="per-tenant admission bound"
    )
    parser.add_argument(
        "--bucket-rate",
        type=float,
        default=0.0,
        help="token-bucket rate per tenant (req/s; 0 disables)",
    )
    parser.add_argument(
        "--batch-threshold", type=int, default=4, help="OLAP batch trigger depth"
    )
    parser.add_argument(
        "--freshness-sla",
        type=int,
        default=64,
        help="freshness policy: max committed txns of snapshot staleness",
    )
    parser.add_argument(
        "--slo-oltp-ns",
        type=float,
        default=200_000.0,
        help="per-transaction end-to-end latency target (ns)",
    )
    parser.add_argument(
        "--slo-olap-ns",
        type=float,
        default=50_000_000.0,
        help="per-query end-to-end latency target (ns)",
    )
    parser.add_argument("--scale", type=float, default=2e-5, help="CH-benCH scale")
    parser.add_argument(
        "--controller",
        choices=["pushtap", "original"],
        default="pushtap",
        help="memory controller variant under test",
    )
    parser.add_argument(
        "--ablation",
        action="store_true",
        help=(
            "run the arrival-rate x policy sweep plus the incremental-vs-"
            "rescan sweep instead of one run"
        ),
    )
    parser.add_argument(
        "--ivm",
        action="store_true",
        help=(
            "maintain incremental views; the scheduler answers flushes by "
            "folding deltas when that beats a full rescan"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the machine-readable JSON report to PATH",
    )
    args = parser.parse_args(argv)

    if args.ablation:
        report = run_policy_ablation(
            seed=args.seed,
            tenants=args.tenants,
            requests_per_tenant=args.requests,
            olap_fraction=max(args.olap_fraction, 0.05),
            scale=args.scale,
        )
        print(format_table(
            [
                "rate/tenant", "policy", "QphH", "tpmC", "batches",
                "handovers", "saved", "max stale",
            ],
            [
                [
                    f"{c['rate_per_tenant']:,.0f}",
                    c["policy"],
                    f"{c['olap_qphh']:,.0f}",
                    f"{c['oltp_tpmc']:,.0f}",
                    c["olap_batches"],
                    c["handovers"],
                    c["handovers_saved"],
                    c["max_staleness_txns"],
                ]
                for c in report["cells"]
            ],
        ))
        ivm_report = run_ivm_ablation(
            seed=args.seed,
            tenants=args.tenants,
            requests_per_tenant=args.requests,
            olap_fraction=max(args.olap_fraction, 0.05),
            scale=args.scale,
        )
        report["ivm"] = ivm_report
        print()
        print(format_table(
            [
                "rate/tenant", "mode", "QphH", "tpmC", "ivm flushes",
                "rescan flushes", "max stale", "max snap lag",
            ],
            [
                [
                    f"{c['rate_per_tenant']:,.0f}",
                    c["mode"],
                    f"{c['olap_qphh']:,.0f}",
                    f"{c['oltp_tpmc']:,.0f}",
                    c["ivm_flushes"],
                    c["rescan_flushes"],
                    c["max_staleness_txns"],
                    format_time_ns(c["max_snapshot_lag_ns"]),
                ]
                for c in ivm_report["cells"]
            ],
        ))
        for delta in ivm_report["deltas"]:
            print(
                f"rate {delta['rate_per_tenant']:,.0f}: incremental QphH "
                f"{delta['olap_qphh_ratio']:.3f}x rescan "
                f"({delta['olap_qphh_delta']:+,.0f}), max-staleness delta "
                f"{delta['max_staleness_delta']:+d} txns, max snapshot-lag "
                f"delta {delta['max_snapshot_lag_delta_ns']:+,.0f} ns"
            )
        failed = any(
            c["slo_errors"] for c in report["cells"] + ivm_report["cells"]
        )
    else:
        config = ServeConfig(
            tenants=args.tenants,
            requests_per_tenant=args.requests,
            policy=args.policy,
            seed=args.seed,
            arrival=args.arrival,
            rate_per_tenant=args.rate,
            think_ns=args.think_ns,
            olap_fraction=args.olap_fraction,
            queue_depth=args.queue_depth,
            bucket_rate=args.bucket_rate,
            batch_threshold=args.batch_threshold,
            freshness_sla_txns=args.freshness_sla,
            ivm=args.ivm,
            slo=SLOTargets(oltp_ns=args.slo_oltp_ns, olap_ns=args.slo_olap_ns),
        )
        result = run_serve(
            config, scale=args.scale, controller_kind=args.controller
        )
        report = result.report
        admission = report["admission"]
        print(format_table(
            [
                "tenant", "completed", "rejected", "p50", "p95", "p99",
                "violations", "disconnects",
            ],
            [
                [
                    tenant,
                    t["completed"],
                    t["rejected"],
                    format_time_ns(t["oltp"]["p50_ns"]),
                    format_time_ns(t["oltp"]["p95_ns"]),
                    format_time_ns(t["oltp"]["p99_ns"]),
                    t["violations"]["oltp"] + t["violations"]["olap"],
                    t["disconnected"],
                ]
                for tenant, t in report["tenants"].items()
            ],
        ))
        sched = report["scheduler"]
        fresh = report["freshness"]
        print(
            f"\npolicy {sched['policy']}: {sched['oltp_dispatched']} txns, "
            f"{sched['olap_dispatched']} queries in {sched['olap_batches']} "
            f"batch(es); handovers {sched['handovers']} "
            f"(saved {sched['handovers_saved']})"
        )
        if sched["ivm"]["enabled"]:
            print(
                f"ivm: {sched['ivm']['ivm_flushes']} delta flush(es) "
                f"({sched['ivm']['ivm_queries']} queries), "
                f"{sched['ivm']['rescan_flushes']} rescan flush(es)"
            )
        print(
            f"admission: {admission['admitted']}/{admission['submitted']} "
            f"admitted, {admission['rejected']} rejected "
            f"{admission['rejected_by_reason'] or ''}"
        )
        print(
            f"freshness: max staleness {fresh['max_staleness_txns']} txns, "
            f"mean query lag {fresh['lag_txns']['mean']:.1f} txns"
        )
        print(
            f"throughput: tpmC {report['throughput']['oltp_tpmc']:,.0f}, "
            f"QphH {report['throughput']['olap_qphh']:,.0f} over "
            f"{format_time_ns(report['simulated_time_ns'])} simulated"
        )
        failed = bool(report["slo_errors"])
        for err in report["slo_errors"]:
            print(f"SLO ACCOUNTING ERROR: {err}", file=sys.stderr)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nreport written to {args.out}")
    return 1 if failed else 0


def cluster_cli(argv) -> int:
    """``cluster``: shard-count scaling, 2PC overhead, and fault sweeps."""
    import json
    import os

    from repro.experiments.cluster import (
        DEFAULT_REMOTE_FRACTIONS,
        DEFAULT_SHARD_COUNTS,
        run_cluster_bench,
    )
    from repro.faults.plan import TWOPC_HOOKS, FaultRates

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments cluster",
        description=(
            "Sweep the sharded cluster over shard count (fixed data, fixed "
            "tenant streams) and remote-warehouse fraction; write the "
            "BENCH_<tag>.json scaling snapshot. --check gates near-linear "
            "tpmC scaling; --faults sweeps the three 2PC fault hooks and "
            "asserts cross-shard atomicity."
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=list(DEFAULT_SHARD_COUNTS),
        help="shard counts to sweep (1 is always included as the baseline)",
    )
    parser.add_argument(
        "--remote-fractions",
        type=float,
        nargs="+",
        default=list(DEFAULT_REMOTE_FRACTIONS),
        help="remote-rate multipliers for the overhead curve (1.0 = spec)",
    )
    parser.add_argument(
        "--intervals", type=int, default=4, help="query intervals per cell"
    )
    parser.add_argument(
        "--txns-per-query", type=int, default=60, help="transactions per interval"
    )
    parser.add_argument("--scale", type=float, default=2e-5, help="CH-benCH scale")
    parser.add_argument("--seed", type=int, default=11, help="workload seed")
    parser.add_argument(
        "--interconnect-ns",
        type=float,
        default=500.0,
        help="per-message cluster interconnect latency (simulated ns)",
    )
    parser.add_argument(
        "--defrag-period", type=int, default=200, help="transactions between defrags"
    )
    parser.add_argument("--tag", default="9", help="writes BENCH_<tag>.json")
    parser.add_argument(
        "--out-dir", default=".", help="directory for the BENCH_<tag>.json snapshot"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless tpmC(N) >= min-scaling * N * tpmC(1) for every N",
    )
    parser.add_argument(
        "--min-scaling",
        type=float,
        default=0.9,
        help="per-shard scaling efficiency the --check gate requires",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help=(
            "run the cluster fault sweep over the three 2PC hooks instead "
            "of the scaling bench"
        ),
    )
    parser.add_argument(
        "--fault-seeds",
        type=int,
        nargs="+",
        default=[1, 2, 3],
        help="seeds per hook for --faults",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.25,
        help="per-cross-shard-transaction hook fire probability for --faults",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for shard sub-streams (merge is "
            "deterministic: any value yields byte-identical snapshots)"
        ),
    )
    args = parser.parse_args(argv)

    if args.faults:
        from repro.cluster import run_cluster_fault_sweep

        rows = []
        failed = False
        for hook in TWOPC_HOOKS:
            for seed in args.fault_seeds:
                result = run_cluster_fault_sweep(
                    seed,
                    FaultRates.parse(f"{hook}={args.fault_rate}"),
                    shards=max(args.shards),
                    intervals=args.intervals,
                    txns_per_query=args.txns_per_query,
                    scale=args.scale,
                    defrag_period=args.defrag_period,
                    jobs=args.jobs,
                )
                rows.append([
                    hook,
                    seed,
                    "yes" if result.survived else "NO",
                    sum(result.injected.values()),
                    result.cross_shard_attempted,
                    result.cross_shard_aborted,
                    len(result.violations),
                    len(result.atomicity_violations),
                    format_percent(result.tpmc_degradation),
                ])
                if not result.survived:
                    failed = True
                    if result.error:
                        print(f"{hook} seed {seed}: {result.error}", file=sys.stderr)
                    for violation in result.violations:
                        print(
                            f"{hook} seed {seed}: INVARIANT: {violation}",
                            file=sys.stderr,
                        )
                    for violation in result.atomicity_violations:
                        print(
                            f"{hook} seed {seed}: ATOMICITY: {violation}",
                            file=sys.stderr,
                        )
        print(format_table(
            [
                "hook", "seed", "survived", "injected", "cross-shard",
                "aborted", "invariant", "atomicity", "tpmC loss",
            ],
            rows,
        ))
        return 1 if failed else 0

    snapshot = run_cluster_bench(
        shard_counts=args.shards,
        remote_fractions=args.remote_fractions,
        intervals=args.intervals,
        txns_per_query=args.txns_per_query,
        scale=args.scale,
        seed=args.seed,
        interconnect_ns=args.interconnect_ns,
        defrag_period=args.defrag_period,
        tag=args.tag,
        jobs=args.jobs,
    )
    print(format_table(
        ["shards", "tpmC", "speedup", "QphH", "speedup", "cross-shard", "coord"],
        [
            [
                cell["shards"],
                f"{cell['oltp_tpmc']:,.0f}",
                f"{cell['tpmc_speedup']:.2f}x",
                f"{cell['olap_qphh']:,.0f}",
                f"{cell['qphh_speedup']:.2f}x",
                cell["cross_shard"]["attempted"],
                format_time_ns(cell["coordination_time_ns"]),
            ]
            for cell in snapshot["scaling"]
        ],
    ))
    print()
    print(format_table(
        [
            "remote frac", "tpmC", "cross-shard", "abort rate",
            "coord share", "remote OL share",
        ],
        [
            [
                f"{cell['remote_fraction']:.1f}",
                f"{cell['oltp_tpmc']:,.0f}",
                cell["cross_shard"]["attempted"],
                format_percent(cell["cross_shard"]["abort_rate"]),
                format_percent(cell["coordination_share"]),
                format_percent(
                    cell["remote"]["remote_order_lines"]
                    / max(cell["remote"]["order_lines"], 1)
                ),
            ]
            for cell in snapshot["overhead"]
        ],
    ))
    os.makedirs(args.out_dir, exist_ok=True)
    out_path = os.path.join(args.out_dir, f"BENCH_{args.tag}.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\ncluster snapshot written to {out_path}")

    if args.check:
        failed = False
        for cell in snapshot["scaling"]:
            required = args.min_scaling * cell["shards"]
            if cell["tpmc_speedup"] < required:
                print(
                    f"FAIL: {cell['shards']}-shard tpmC speedup "
                    f"{cell['tpmc_speedup']:.2f}x below required "
                    f"{required:.2f}x",
                    file=sys.stderr,
                )
                failed = True
        if failed:
            return 1
        print(
            f"scaling check passed (>= {args.min_scaling:.2f} per shard "
            f"on {snapshot['params']['shard_counts']} shards)"
        )
    return 0


def main(argv=None) -> int:
    """Entry point: run the named experiments (or ``all``)."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "report-metrics":
        return report_metrics(argv[1:])
    if argv and argv[0] == "fault-sweep":
        return fault_sweep(argv[1:])
    if argv and argv[0] == "profile":
        return profile(argv[1:])
    if argv and argv[0] == "bench":
        return bench(argv[1:])
    if argv and argv[0] == "serve":
        return serve(argv[1:])
    if argv and argv[0] == "crash-sweep":
        return crash_sweep(argv[1:])
    if argv and argv[0] == "roofline":
        return roofline(argv[1:])
    if argv and argv[0] == "cluster":
        return cluster_cli(argv[1:])

    from repro.pim.substrate import available_substrates, get_substrate

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figures to regenerate (or 'report-metrics FILE' / 'fault-sweep')",
    )
    parser.add_argument(
        "--substrate",
        choices=available_substrates(),
        default=None,
        help=(
            "run the figures on a registered hardware substrate instead of "
            "each figure's default system (HBM comparison rows keep HBM)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="enable telemetry and dump collected metrics to PATH as JSON",
    )
    args = parser.parse_args(argv)
    config = get_substrate(args.substrate).config if args.substrate else None
    names = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    if args.metrics_out:
        # Fail fast on an unwritable path rather than after the runs.
        try:
            with open(args.metrics_out, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            print(
                f"error: cannot write {args.metrics_out}: {exc.strerror}",
                file=sys.stderr,
            )
            return 2
    registry = telemetry.enable() if args.metrics_out else None
    try:
        for name in names:
            print(f"\n=== {name} ===")
            EXPERIMENTS[name](config)
        if registry is not None:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(telemetry_export.to_json(registry))
            print(f"\nmetrics written to {args.metrics_out}")
    finally:
        if registry is not None:
            telemetry.disable()
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(141)
