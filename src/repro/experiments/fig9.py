"""Figure 9 — OLTP and OLAP performance (§7.3).

* **(a)** transaction execution time under row-store (RS, the OLTP
  ideal), column-store (CS, +28.1 % in the paper), PUSHtap's unified
  format (+3.5 %, the re-layout cost), and PUSHtap on HBM (a further
  ~2.5 % change only). Measured *functionally*: the same transaction
  stream runs against freshly built engines whose OLTP cost model uses
  each format.
* **(b)** analytical query time breakdown — ideal / MI / PUSHtap on DIMM
  and HBM — versus the number of transactions that updated the data
  before the query. MI pays replica rebuilding (123.3 % overhead at 1M
  txns, growing to a 13.3× slowdown); PUSHtap pays snapshot +
  defragmentation (1.5 % → 12.6 %). Computed with the analytic
  full-scale models calibrated against the functional simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.ideal import IdealOLAPModel
from repro.baselines.multi_instance import MultiInstanceModel
from repro.baselines.pushtap_model import PushTapQueryModel
from repro.core.config import SystemConfig, dimm_system, hbm_system
from repro.core.engine import PushTapEngine
from repro.experiments.common import query_scan_columns
from repro.oltp.formats import ColumnStoreModel, RowStoreModel
from repro.workloads.chbench import ch_schema

__all__ = [
    "OLTPPoint",
    "oltp_comparison",
    "OLAPPoint",
    "olap_comparison",
    "DEFAULT_TXN_COUNTS",
]

DEFAULT_TXN_COUNTS = (10_000, 100_000, 1_000_000, 8_000_000)

#: Average row writes per transaction used by the analytic models,
#: matching the functional TPC-C driver's Payment/New-Order mix.
_WRITES_PER_TXN = 5.0


@dataclass(frozen=True)
class OLTPPoint:
    """Mean transaction time of one format (Fig. 9a bar)."""

    label: str
    mean_txn_time: float
    relative_to_rs: float
    breakdown: Dict[str, float]


def oltp_comparison(
    scale: float = 5e-5,
    num_txns: int = 200,
    seed: int = 11,
    config: Optional[SystemConfig] = None,
) -> List[OLTPPoint]:
    """Fig. 9a: run the same transaction stream under each format.

    ``config`` swaps the substrate of the RS/CS/PUSHtap rows (default
    DIMM); the explicit HBM comparison row always runs on HBM.
    """
    base = config or dimm_system()
    variants = [
        ("RS", "rowstore", base),
        ("CS", "columnstore", base),
        ("PUSHtap", "unified", base),
        ("PUSHtap (HBM)", "unified", hbm_system()),
    ]
    results: List[OLTPPoint] = []
    rs_time: Optional[float] = None
    for label, fmt, config in variants:
        engine = PushTapEngine.build(
            config=config,
            scale=scale,
            defrag_period=0,
            block_rows=256,
            seed=7,
        )
        if fmt == "rowstore":
            engine.oltp.format_model = RowStoreModel(ch_schema(), config.geometry)
        elif fmt == "columnstore":
            engine.oltp.format_model = ColumnStoreModel(ch_schema(), config.geometry)
        engine.run_transactions(num_txns, engine.make_driver(seed=seed))
        mean = engine.oltp.mean_txn_time
        if rs_time is None:
            rs_time = mean
        results.append(
            OLTPPoint(
                label=label,
                mean_txn_time=mean,
                relative_to_rs=mean / rs_time,
                breakdown={
                    k: v / max(engine.oltp.committed, 1)
                    for k, v in engine.oltp.breakdown.as_dict().items()
                },
            )
        )
    return results


@dataclass(frozen=True)
class OLAPPoint:
    """One (system, txn-count) point of Fig. 9b."""

    system: str
    num_txns: int
    consistency_time: float
    scan_time: float

    @property
    def total_time(self) -> float:
        """End-to-end analytical query time."""
        return self.consistency_time + self.scan_time

    def overhead_vs(self, ideal_scan: float) -> float:
        """Total overhead relative to the ideal scan time."""
        return self.total_time / ideal_scan - 1.0


def _mean_query_columns(scale: float) -> List:
    """Average scan list of the three evaluated queries."""
    columns: List = []
    for query in ("Q1", "Q6", "Q9"):
        columns.extend(query_scan_columns(query, scale))
    return columns


def olap_comparison(
    txn_counts: Sequence[int] = DEFAULT_TXN_COUNTS,
    scale: float = 1.0,
    pim_efficiency: float = 0.944,
    config: Optional[SystemConfig] = None,
) -> List[OLAPPoint]:
    """Fig. 9b: ideal / MI / PUSHtap on DIMM and HBM vs txn count.

    ``config`` swaps the substrate of the non-HBM rows (default DIMM).
    """
    dimm = config or dimm_system()
    hbm = hbm_system()
    columns = _mean_query_columns(scale)

    ideal = IdealOLAPModel(dimm)
    mi = MultiInstanceModel(dimm, writes_per_txn=_WRITES_PER_TXN)
    # MI (HBM) uses the dedicated rebuild accelerator of Polynesia; the
    # paper estimates it relative to CPU-based consistency (§7.3.2).
    mi_hbm = MultiInstanceModel(
        hbm, writes_per_txn=_WRITES_PER_TXN, accelerator_speedup=6.0
    )
    pushtap = PushTapQueryModel(
        dimm, pim_efficiency=pim_efficiency, writes_per_txn=_WRITES_PER_TXN
    )
    pushtap_hbm = PushTapQueryModel(
        hbm, pim_efficiency=pim_efficiency, writes_per_txn=_WRITES_PER_TXN
    )

    out: List[OLAPPoint] = []
    ideal_scan = ideal.query_time(columns)
    for n in txn_counts:
        out.append(OLAPPoint("ideal", n, 0.0, ideal_scan))
        out.append(OLAPPoint("MI", n, mi.rebuild_cost(n).total, mi.scan_time(columns)))
        out.append(
            OLAPPoint(
                "MI (HBM)", n, mi_hbm.rebuild_cost(n).total, mi_hbm.scan_time(columns)
            )
        )
        base_rows = max(sum(rows for rows, _ in columns), 1)
        out.append(
            OLAPPoint(
                "PUSHtap",
                n,
                pushtap.query_consistency(n),
                pushtap.scan_time(
                    columns, pushtap.pending_delta_fraction(n, base_rows)
                ),
            )
        )
        out.append(
            OLAPPoint(
                "PUSHtap (HBM)",
                n,
                pushtap_hbm.query_consistency(n),
                pushtap_hbm.scan_time(
                    columns, pushtap_hbm.pending_delta_fraction(n, base_rows)
                ),
            )
        )
    return out
