"""Shared helpers for the experiment modules (one module per figure).

Database-wide effective bandwidths aggregate the per-table layout models
of :mod:`repro.format.bandwidth`:

* **CPU** — row accesses hit tables proportionally to their row counts,
  so the database CPU effective bandwidth is the row-weighted ratio of
  useful to transferred bytes;
* **PIM** — scans hit key columns proportionally to their query scan
  frequency × table size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.format.bandwidth import (
    cpu_lines_per_row,
    pim_column_efficiency,
    storage_breakdown,
    StorageBreakdown,
)
from repro.format.binpack import compact_aligned_layout
from repro.format.layout import UnifiedLayout
from repro.workloads.chbench import (
    ch_schema,
    column_scan_weights,
    key_columns_for,
    row_counts,
)

__all__ = [
    "build_layouts",
    "database_cpu_bandwidth",
    "database_pim_bandwidth",
    "database_storage",
    "query_scan_columns",
]


def build_layouts(
    th: float,
    queries: Sequence[str],
    config: SystemConfig,
    tables: Sequence[str] = None,
) -> Dict[str, UnifiedLayout]:
    """Compact-aligned layouts of the CH tables for one (th, queries)."""
    schemas = ch_schema()
    names = list(tables) if tables is not None else list(schemas)
    d = config.geometry.devices_per_rank
    return {
        name: compact_aligned_layout(
            schemas[name], key_columns_for(queries, name), d, th
        )
        for name in names
    }


def database_cpu_bandwidth(
    layouts: Mapping[str, UnifiedLayout],
    config: SystemConfig,
    weights: Mapping[str, int] = None,
) -> float:
    """Row-weighted CPU effective bandwidth over all tables."""
    counts = weights if weights is not None else row_counts(1.0)
    useful = 0.0
    transferred = 0.0
    line = config.geometry.cache_line_bytes
    for name, layout in layouts.items():
        rows = counts.get(name, 0)
        useful += rows * layout.useful_bytes_per_row()
        transferred += rows * cpu_lines_per_row(layout, config.geometry) * line
    return useful / transferred if transferred else 0.0


def database_pim_bandwidth(
    layouts: Mapping[str, UnifiedLayout],
    queries: Sequence[str],
    weights: Mapping[str, int] = None,
) -> float:
    """Scan-weighted PIM effective bandwidth over all key columns."""
    counts = weights if weights is not None else row_counts(1.0)
    weighted = 0.0
    total = 0.0
    for name, layout in layouts.items():
        rows = counts.get(name, 0)
        if rows == 0:
            continue
        scan_weights = column_scan_weights(queries, name)
        for column, weight in scan_weights.items():
            if column not in layout.key_columns:
                continue
            w = weight * rows
            weighted += w * pim_column_efficiency(layout, column)
            total += w
    return weighted / total if total else 0.0


def database_storage(
    layouts: Mapping[str, UnifiedLayout],
    delta_fraction: float = 0.1,
    weights: Mapping[str, int] = None,
) -> StorageBreakdown:
    """Whole-database storage breakdown (Fig. 8b)."""
    counts = weights if weights is not None else row_counts(1.0)
    total = StorageBreakdown(0, 0, 0)
    for name, layout in layouts.items():
        total = total.merge(storage_breakdown(layout, counts.get(name, 0), delta_fraction))
    return total


#: (table, column) scan lists of the three executable queries, used by the
#: analytic full-scale models. Q9 scans two tables.
_QUERY_SCANS: Dict[str, List[Tuple[str, str]]] = {
    "Q1": [
        ("orderline", "ol_delivery_d"),
        ("orderline", "ol_number"),
        ("orderline", "ol_quantity"),
        ("orderline", "ol_amount"),
    ],
    "Q6": [
        ("orderline", "ol_delivery_d"),
        ("orderline", "ol_delivery_d"),
        ("orderline", "ol_quantity"),
        ("orderline", "ol_quantity"),
        ("orderline", "ol_amount"),
    ],
    "Q9": [
        ("item", "i_im_id"),
        ("item", "i_id"),
        ("orderline", "ol_i_id"),
        ("orderline", "ol_amount"),
    ],
}


def query_scan_columns(query: str, scale: float = 1.0) -> List[Tuple[int, int]]:
    """``(rows, width)`` scan list of one executable query at ``scale``."""
    schemas = ch_schema()
    counts = row_counts(scale)
    out: List[Tuple[int, int]] = []
    for table, column in _QUERY_SCANS[query]:
        out.append((counts[table], schemas[table].column(column).width))
    return out
