"""Figure 10 — OLTP/OLAP throughput frontier (§7.3.3).

The frontier plots the OLAP throughput sustainable at each OLTP
throughput. Three shared resources bound an operating point ``(r, q)``
(transactions/ns, queries/ns):

* **CPU cores** — ``r · txn_time ≤ cores``;
* **CPU-side memory bandwidth** — ``r · txn_bytes + q · query_cpu_bytes ≤
  B_cpu`` (the paper's "memory system reaches the maximum overall
  bandwidth" knee);
* **PIM array** — ``q · query_pim_time ≤ 1``.

PUSHtap's OLAP rate is therefore flat (PIM-bound) until OLTP traffic
eats into the bus, then declines linearly. MI differs in two ways: every
transaction additionally ships its updates (log + new-versioned rows,
byte-level re-layout) into the PIM memory space — multiplying its per-
transaction bus traffic — and each query first drains the staged log
(rebuild), inflating its query time with the OLTP rate. Both effects
shift MI's frontier down and left; the paper reports 3.4× peak OLTP and
4.4× OLAP throughput at MI's peak.

``txn_bytes`` (cache-hierarchy traffic per transaction) and the MI
shipping multiplier are the calibrated parameters; everything else comes
from the scan cost model and Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.multi_instance import MultiInstanceModel
from repro.baselines.pushtap_model import PushTapQueryModel
from repro.core.config import SystemConfig, dimm_system
from repro.experiments.common import query_scan_columns
from repro.units import S, US

__all__ = ["FrontierPoint", "FrontierModel", "frontier", "peak_ratios"]


@dataclass(frozen=True)
class FrontierPoint:
    """One feasible operating point."""

    system: str
    oltp_tpmc: float
    olap_qphh: float


@dataclass
class FrontierModel:
    """Shared-resource model behind the frontier (see module docstring)."""

    config: SystemConfig
    #: Per-transaction CPU time (paper-scale DBx1000-class engine).
    txn_time: float = 3.7 * US
    #: Per-transaction memory traffic including cache-hierarchy
    #: amplification (reads, writes, flushes, index walks).
    txn_bytes: float = 24_000.0
    #: MI's bus multiplier: log append + new-versioned rows + byte-level
    #: re-layout shipped through the PIM memory interface.
    mi_traffic_multiplier: float = 3.4
    #: CPU-side bytes per analytical query (snapshot, group merges, and
    #: the Q9-style hash-bucket exchange at full scale). Derived in
    #: ``__post_init__`` so the PUSHtap plateau knee lands at
    #: ``knee_tpmc`` (the paper measures ~51.2 MtpmC); pass a value to
    #: override.
    query_cpu_bytes: float = 0.0
    #: OLTP throughput at which OLAP first degrades (calibration target).
    knee_tpmc: float = 51.2e6
    writes_per_txn: float = 5.0
    query_pim_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.query_pim_time:
            columns = (
                query_scan_columns("Q1")
                + query_scan_columns("Q6")
                + query_scan_columns("Q9")
            )
            self.query_pim_time = PushTapQueryModel(self.config).scan_time(columns)
        if not self.query_cpu_bytes:
            knee_rate = self.knee_tpmc / 60.0 / 1e9  # tpmC -> txn/ns
            bus_left = self.config.total_cpu_bandwidth - knee_rate * self.txn_bytes
            self.query_cpu_bytes = max(bus_left, 1e-9) * self.query_pim_time

    # ------------------------------------------------------------------
    # PUSHtap
    # ------------------------------------------------------------------
    def pushtap_max_oltp(self) -> float:
        """Peak OLTP rate (txn/ns): cores or bus, whichever binds."""
        compute = self.config.cpu.cores / self.txn_time
        bus = self.config.total_cpu_bandwidth / self.txn_bytes
        return min(compute, bus)

    def pushtap_olap_rate(self, oltp_rate: float) -> float:
        """OLAP rate (queries/ns) sustainable at ``oltp_rate``."""
        if oltp_rate > self.pushtap_max_oltp():
            return 0.0
        pim_bound = 1.0 / self.query_pim_time
        bus_left = self.config.total_cpu_bandwidth - oltp_rate * self.txn_bytes
        bus_bound = max(bus_left, 0.0) / self.query_cpu_bytes
        return max(0.0, min(pim_bound, bus_bound))

    # ------------------------------------------------------------------
    # MI
    # ------------------------------------------------------------------
    def mi_txn_bytes(self) -> float:
        """MI per-transaction bus traffic including replica shipping."""
        return self.txn_bytes * self.mi_traffic_multiplier

    def mi_max_oltp(self) -> float:
        """MI peak OLTP rate (txn/ns) — bus-bound earlier than PUSHtap."""
        compute = self.config.cpu.cores / self.txn_time
        bus = self.config.total_cpu_bandwidth / self.mi_txn_bytes()
        return min(compute, bus)

    def mi_olap_rate(self, oltp_rate: float) -> float:
        """MI OLAP rate: bus share plus rebuild-inflated query time."""
        if oltp_rate > self.mi_max_oltp():
            return 0.0
        mi = MultiInstanceModel(self.config, writes_per_txn=self.writes_per_txn)
        rebuild_per_txn = (
            mi.log_bytes_per_txn() / self.config.total_cpu_bandwidth
            + self.writes_per_txn
            * (2 * mi.avg_row_bytes + 16)
            / self.config.total_pim_bandwidth
        )
        drain = oltp_rate * rebuild_per_txn
        if drain >= 1.0:
            return 0.0
        query_time = self.query_pim_time / (1.0 - drain)
        pim_bound = 1.0 / query_time
        bus_left = self.config.total_cpu_bandwidth - oltp_rate * self.mi_txn_bytes()
        bus_bound = max(bus_left, 0.0) / self.query_cpu_bytes
        return max(0.0, min(pim_bound, bus_bound))


def frontier(
    system: str,
    num_points: int = 25,
    config: Optional[SystemConfig] = None,
    model: Optional[FrontierModel] = None,
) -> List[FrontierPoint]:
    """Sweep OLTP rate 0 → peak; returns (tpmC, QphH) frontier points."""
    model = model or FrontierModel(config or dimm_system())
    if system == "pushtap":
        max_rate, olap = model.pushtap_max_oltp(), model.pushtap_olap_rate
    elif system == "mi":
        max_rate, olap = model.mi_max_oltp(), model.mi_olap_rate
    else:
        raise ValueError(f"unknown system {system!r}")
    points: List[FrontierPoint] = []
    for i in range(num_points + 1):
        rate = max_rate * i / num_points
        points.append(
            FrontierPoint(
                system=system,
                oltp_tpmc=rate * S * 60.0,
                olap_qphh=olap(rate) * S * 3600.0,
            )
        )
    return points


def peak_ratios(model: Optional[FrontierModel] = None) -> dict:
    """The paper's headline frontier numbers (§7.3.3).

    * peak-OLTP ratio — PUSHtap vs MI (paper: 3.4×);
    * OLAP-throughput ratio at (just under) MI's peak OLTP (paper: 4.4×);
    * PUSHtap's flat OLAP plateau and the knee where it starts declining
      (paper: 38.0 k QphH flat until 51.2 MtpmC).
    """
    model = model or FrontierModel(dimm_system())
    mi_peak = model.mi_max_oltp()
    pushtap_peak = model.pushtap_max_oltp()
    # MI's measured peak operating point still runs some OLAP; probe just
    # below the asymptote (the paper's frontier endpoints are measured
    # points, not limits).
    probe = mi_peak * 0.85
    olap_pushtap = model.pushtap_olap_rate(probe)
    olap_mi = model.mi_olap_rate(probe)
    pim_bound = 1.0 / model.query_pim_time
    knee = pushtap_peak
    for i in range(1, 1001):
        rate = pushtap_peak * i / 1000
        if model.pushtap_olap_rate(rate) < pim_bound * 0.999:
            knee = rate
            break
    return {
        "pushtap_peak_tpmc": pushtap_peak * S * 60,
        "mi_peak_tpmc": mi_peak * S * 60,
        "peak_oltp_ratio": pushtap_peak / mi_peak,
        "olap_ratio_at_mi_peak": (
            olap_pushtap / olap_mi if olap_mi > 0 else float("inf")
        ),
        "pushtap_flat_olap_qphh": pim_bound * S * 3600,
        "pushtap_knee_tpmc": knee * S * 60,
    }
