"""PrIM-style single-unit microbenchmarks (roofline observability).

Each primitive drives ONE standalone PIM unit — no executor, no
controller — through the same functional load/compute methods the OLAP
operators use, sweeping the operand size. Time and traffic come from the
unit's own work counters (:class:`~repro.pim.pim_unit.PIMUnitStats`), so
a point's effective bandwidth is *achieved* bandwidth under the
substrate's timing model, directly comparable to the substrate's stream
ceiling. This mirrors the PrIM methodology: measure the primitive in
isolation first, then explain end-to-end operators as compositions of
the primitives' rooflines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.pim.device import Device
from repro.pim.pim_unit import Condition, PIMUnit, uints_to_bytes
from repro.pim.substrate import Substrate, available_substrates, get_substrate
from repro.units import ceil_div

__all__ = [
    "MicroPoint",
    "PRIMITIVES",
    "DEFAULT_SIZES",
    "standalone_unit",
    "run_primitive",
    "run_micro",
    "fit_saturation",
]

#: Element width of the synthetic operand column (bytes).
_WIDTH = 4
#: Rows loaded into WRAM per chunk (16 kB of operand data).
_CHUNK_ROWS = 4096
#: Rows per side of one join bucket chunk.
_JOIN_ROWS = 1024
#: Bank address of the store/build-side region (past any operand sweep).
_FAR_REGION = 1 << 19

# WRAM layout shared by the chunked primitives (fits a 64 kB scratchpad).
_DATA_OFF = 0  # operand chunk, _CHUNK_ROWS * _WIDTH bytes
_BITMAP_OFF = 16_384  # visibility bitmap, _CHUNK_ROWS / 8 bytes
_RESULT_OFF = 20_480  # filter result bitmap
_INDEX_OFF = 24_576  # aggregation group indices (2 B per row)
_ACC_OFF = 33_792  # aggregation accumulators (8 B per group)
_HASH2_OFF = 8_192  # join build side (probe side sits at _DATA_OFF)
_JOIN_OUT_OFF = 16_384  # join match count + pairs

#: Default operand sizes (rows) swept per primitive. Sizes below one
#: WRAM chunk become a single small transfer, exposing the fixed
#: activation overhead (the saturation knee); large sizes amortize it.
DEFAULT_SIZES = (8, 64, 1024, 16384, 65536)


@dataclass(frozen=True)
class MicroPoint:
    """One (substrate, primitive, size) measurement."""

    substrate: str
    primitive: str
    rows: int
    dram_bytes: int
    elements: int
    load_time: float
    compute_time: float
    ceiling_bandwidth: float
    bound: str

    @property
    def total_time(self) -> float:
        """Unit-busy time of the sweep point (ns)."""
        return self.load_time + self.compute_time

    @property
    def effective_bandwidth(self) -> float:
        """Achieved DRAM bandwidth during load phases, bytes/ns."""
        return self.dram_bytes / self.load_time if self.load_time else 0.0

    @property
    def operational_intensity(self) -> float:
        """Elements processed per DRAM byte moved."""
        return self.elements / self.dram_bytes if self.dram_bytes else 0.0

    @property
    def ceiling_ratio(self) -> float:
        """Achieved bandwidth as a fraction of the substrate ceiling."""
        if not self.ceiling_bandwidth:
            return 0.0
        return self.effective_bandwidth / self.ceiling_bandwidth

    def as_dict(self) -> Dict[str, object]:
        """Plain dict (for JSON snapshots), derived values included."""
        return {
            "substrate": self.substrate,
            "primitive": self.primitive,
            "rows": self.rows,
            "dram_bytes": self.dram_bytes,
            "elements": self.elements,
            "load_time": self.load_time,
            "compute_time": self.compute_time,
            "total_time": self.total_time,
            "effective_bandwidth": self.effective_bandwidth,
            "operational_intensity": self.operational_intensity,
            "ceiling_bandwidth": self.ceiling_bandwidth,
            "ceiling_ratio": self.ceiling_ratio,
            "bound": self.bound,
        }


def standalone_unit(substrate: Substrate) -> PIMUnit:
    """A fresh PIM unit over one bank, configured for ``substrate``."""
    geometry = substrate.config.geometry
    num_banks = geometry.banks_per_device
    # 1 MB per bank — enough for the largest operand sweep plus a
    # disjoint store region.
    device = Device(0, num_banks << 20, num_banks=num_banks)
    return PIMUnit(
        0,
        device.banks[0],
        substrate.config.pim,
        substrate.config.timings,
        geometry,
    )


def _operand_values(rows: int) -> np.ndarray:
    """Deterministic pseudo-random operand values in [0, 2^16)."""
    idx = np.arange(rows, dtype=np.uint64)
    return (idx * np.uint64(2654435761)) & np.uint64(0xFFFF)


def _prepare_operand(unit: PIMUnit, rows: int) -> None:
    unit.bank.write(0, uints_to_bytes(_operand_values(rows), _WIDTH))


def _ones_bitmap(unit: PIMUnit) -> None:
    unit.wram_write(_BITMAP_OFF, np.full(_CHUNK_ROWS // 8, 0xFF, dtype=np.uint8))


def _chunks(rows: int, chunk_rows: int):
    for base in range(0, rows, chunk_rows):
        yield base, min(chunk_rows, rows - base)


def _run_copy(unit: PIMUnit, rows: int) -> None:
    """Stream rows bank→WRAM→bank (the LS phase round trip)."""
    _prepare_operand(unit, rows)
    for base, n in _chunks(rows, _CHUNK_ROWS):
        nbytes = n * _WIDTH
        unit.load_strided(base * _WIDTH, nbytes, nbytes, nbytes, _DATA_OFF)
        unit.store_dense(_FAR_REGION + base * _WIDTH, _DATA_OFF, nbytes)


def _run_scan(unit: PIMUnit, rows: int) -> None:
    """Pure streaming read of the operand column."""
    _prepare_operand(unit, rows)
    for base, n in _chunks(rows, _CHUNK_ROWS):
        nbytes = n * _WIDTH
        unit.load_strided(base * _WIDTH, nbytes, nbytes, nbytes, _DATA_OFF)


def _run_filter(unit: PIMUnit, rows: int) -> None:
    """Predicate scan: load, compare, write the match bitmap back."""
    _prepare_operand(unit, rows)
    _ones_bitmap(unit)
    condition = Condition("lt", 0x8000)  # ~50% selectivity
    for base, n in _chunks(rows, _CHUNK_ROWS):
        nbytes = n * _WIDTH
        unit.load_strided(base * _WIDTH, nbytes, nbytes, nbytes, _DATA_OFF)
        unit.op_filter(_BITMAP_OFF, _DATA_OFF, _RESULT_OFF, _WIDTH, condition, n)
        unit.store_dense(_FAR_REGION + base // 8, _RESULT_OFF, ceil_div(n, 8))


def _run_aggregate(unit: PIMUnit, rows: int) -> None:
    """Single-group sum: load, accumulate in WRAM across chunks."""
    _prepare_operand(unit, rows)
    _ones_bitmap(unit)
    unit.wram_write(_INDEX_OFF, np.zeros(_CHUNK_ROWS * 2, dtype=np.uint8))
    unit.wram_write(_ACC_OFF, np.zeros(8, dtype=np.uint8))
    for base, n in _chunks(rows, _CHUNK_ROWS):
        nbytes = n * _WIDTH
        unit.load_strided(base * _WIDTH, nbytes, nbytes, nbytes, _DATA_OFF)
        unit.op_aggregation(_BITMAP_OFF, _DATA_OFF, _INDEX_OFF, _ACC_OFF, _WIDTH, n, 1)


def _run_join(unit: PIMUnit, rows: int) -> None:
    """Bucket join: load both hash sides, match pairs in WRAM.

    The build side plants a match every 16th row (high bit set
    elsewhere), so the pair count stays bounded and deterministic.
    """
    idx = np.arange(rows, dtype=np.uint32)
    probe = idx + np.uint32(1)
    build = np.where(idx % 16 == 0, probe, idx | np.uint32(1 << 31))
    unit.bank.write(0, probe.view(np.uint8))
    unit.bank.write(_FAR_REGION, build.view(np.uint8))
    for base, n in _chunks(rows, _JOIN_ROWS):
        nbytes = n * 4
        unit.load_strided(base * 4, nbytes, nbytes, nbytes, _DATA_OFF)
        unit.load_strided(_FAR_REGION + base * 4, nbytes, nbytes, nbytes, _HASH2_OFF)
        unit.op_join(_DATA_OFF, _HASH2_OFF, _JOIN_OUT_OFF, n, n)


#: Primitive name → single-unit driver.
PRIMITIVES: Dict[str, Callable[[PIMUnit, int], None]] = {
    "copy": _run_copy,
    "scan": _run_scan,
    "filter": _run_filter,
    "aggregate": _run_aggregate,
    "join": _run_join,
}


def run_primitive(substrate: Substrate, primitive: str, rows: int) -> MicroPoint:
    """Run one primitive at one size on a fresh unit; returns its point."""
    try:
        driver = PRIMITIVES[primitive]
    except KeyError:
        raise ConfigError(
            f"unknown primitive {primitive!r} (known: {', '.join(sorted(PRIMITIVES))})"
        ) from None
    if rows <= 0:
        raise ConfigError(f"primitive sweep size must be positive, got {rows}")
    unit = standalone_unit(substrate)
    driver(unit, rows)
    stats = unit.stats
    return MicroPoint(
        substrate=substrate.name,
        primitive=primitive,
        rows=rows,
        dram_bytes=stats.dram_bytes_read + stats.dram_bytes_written,
        elements=stats.elements_processed,
        load_time=stats.load_time,
        compute_time=stats.compute_time,
        ceiling_bandwidth=substrate.stream_bandwidth_per_unit,
        bound=Substrate.classify(stats.load_time, stats.compute_time, 0.0),
    )


def run_micro(
    substrates: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    primitives: Optional[Sequence[str]] = None,
) -> List[MicroPoint]:
    """Sweep every (substrate, primitive, size) cell; returns all points."""
    names = list(substrates) if substrates else available_substrates()
    prims = list(primitives) if primitives else sorted(PRIMITIVES)
    points: List[MicroPoint] = []
    for name in names:
        substrate = get_substrate(name)
        for primitive in prims:
            for rows in sizes:
                points.append(run_primitive(substrate, primitive, rows))
    return points


def fit_saturation(sizes_bytes: Sequence[float], bandwidths: Sequence[float]) -> Dict[str, float]:
    """Fit the saturation curve ``bw(s) = B∞ · s / (s + s½)``.

    Linearized as ``1/bw = 1/B∞ + (s½/B∞) · (1/s)`` and solved by least
    squares: ``B∞`` is the asymptotic bandwidth, ``s½`` the operand size
    at which half of it is achieved (the fixed-overhead knee).
    """
    pairs = [
        (s, b)
        for s, b in zip(sizes_bytes, bandwidths)
        if s > 0 and b > 0
    ]
    if len(pairs) < 2:
        return {"asymptote_bandwidth": 0.0, "half_size_bytes": 0.0}
    x = 1.0 / np.array([s for s, _ in pairs], dtype=float)
    y = 1.0 / np.array([b for _, b in pairs], dtype=float)
    design = np.stack([np.ones_like(x), x], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
    intercept, slope = float(coeffs[0]), float(coeffs[1])
    if intercept <= 0:
        # Bandwidth did not saturate over the swept range; report the
        # largest observed point instead of a nonsensical asymptote.
        return {"asymptote_bandwidth": max(b for _, b in pairs), "half_size_bytes": 0.0}
    return {
        "asymptote_bandwidth": 1.0 / intercept,
        "half_size_bytes": max(slope / intercept, 0.0),
    }
