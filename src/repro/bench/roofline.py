"""Substrate roofline sweep: microbenchmarks + end-to-end operators.

``run_roofline`` sweeps every requested substrate twice:

1. the PrIM-style single-unit primitives (:mod:`repro.bench.micro`), and
2. the real OLAP operators over a synthetic table built on that
   substrate's configuration, with the telemetry registry's ``roofline``
   flag on so every operator logs bytes moved, achieved bandwidth,
   ceiling ratio, and its memory/compute/control-bound classification.

The result is one deterministic, JSON-ready snapshot (``BENCH_8.json``)
with per-substrate ceilings, achieved-vs-ceiling points, saturation
fits, a bottleneck ranking, row-buffer hit/miss/conflict lanes, and a
Chrome-trace consistency check: each operator's effective bandwidth must
match ``dram_bytes / Σ(pim.phase.load)`` re-derived from the exported
trace of the same run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro import telemetry
from repro.bench.micro import DEFAULT_SIZES, PRIMITIVES, fit_saturation, run_micro
from repro.core.engine import PushTapEngine
from repro.format.schema import Column, TableSchema
from repro.olap.engine import QueryTiming
from repro.olap.operators import RegionRows
from repro.pim.pim_unit import Condition
from repro.pim.substrate import Substrate, available_substrates, get_substrate
from repro.telemetry.registry import MetricsRegistry
from repro.trace.chrome import to_chrome_trace
from repro.trace.tracer import Tracer

__all__ = ["run_roofline", "render_roofline", "DEFAULT_OPERATOR_SIZES"]

#: Table sizes (rows) swept through the end-to-end operators.
DEFAULT_OPERATOR_SIZES = (4096, 16384, 65536)

#: Relative tolerance of the trace-derived bandwidth cross-check.
TRACE_TOLERANCE = 0.01


def _synthetic_schema() -> TableSchema:
    """The sweep table: a join key, a value column, and a group key."""
    return TableSchema.of(
        "points", (Column("k", 4), Column("v", 4), Column("g", 2))
    )


def _synthetic_rows(rows: int) -> List[Dict[str, int]]:
    """Deterministic rows: ~50% filter selectivity, 64 group keys."""
    return [
        {
            "k": (i * 2654435761) & 0xFFFFFFFF,
            "v": (i * 48271) % 65536,
            "g": i % 64,
        }
        for i in range(rows)
    ]


def _build_engine(substrate: Substrate, rows: int, block_rows: int) -> PushTapEngine:
    schema = _synthetic_schema()
    return PushTapEngine.build_custom(
        {schema.name: schema},
        {schema.name: ("k", "v", "g")},
        {schema.name: _synthetic_rows(rows)},
        config=substrate.config,
        block_rows=block_rows,
    )


def _sweep_operators(
    substrate: Substrate, sizes: Sequence[int], block_rows: int
) -> Dict[str, object]:
    """Run the operator suite at each size under roofline telemetry."""
    registry = MetricsRegistry()
    registry.roofline = True
    telemetry.enable(registry)
    try:
        engine = _build_engine(substrate, max(sizes), block_rows)
        table = engine.table("points")
        ts = engine.db.oracle.read_timestamp()
        table.snapshots.update_to(ts)
        operators: List[Dict[str, object]] = []
        for rows in sizes:
            selection = RegionRows(data_rows=rows)
            timing = QueryTiming()
            mark = len(engine.olap.roofline_log)
            engine.olap.filter(
                table, "v", Condition("lt", 32768), timing, selection
            )
            _, merged = engine.olap.group(table, "g", timing, selection)
            engine.olap.aggregate(
                table, "v", merged.indices, merged.num_groups, timing, selection
            )
            build = engine.olap.hash_scan(table, "k", timing, selection)
            probe = engine.olap.hash_scan(table, "k", timing, selection)
            engine.olap.join(build, probe, timing)
            for metrics in engine.olap.roofline_log[mark:]:
                operators.append({"rows": rows, **metrics.as_dict()})
        engine.publish_rowbuffer_telemetry()
        rowbuffer = {
            name: counter.value
            for name, counter in sorted(registry.counters.items())
            if ".rowbuffer." in name
        }
        trace_check = _trace_consistency(registry)
    finally:
        telemetry.disable()
    return {
        "operators": operators,
        "rowbuffer": rowbuffer,
        "trace_check": trace_check,
    }


def _trace_consistency(
    registry: MetricsRegistry, tolerance: float = TRACE_TOLERANCE
) -> Dict[str, object]:
    """Re-derive operator bandwidth from the exported Chrome trace.

    For each operator event carrying a ``dram_bytes`` attribute, DRAM
    busy time is the sum of ``pim.phase.load`` event durations contained
    in the operator's interval; ``dram_bytes / busy`` must agree with
    the operator's reported ``eff_gbps`` within ``tolerance``.
    """
    events = to_chrome_trace(Tracer(registry.spans))["traceEvents"]
    ops = []
    loads = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        start = args.get("start_ns")
        duration = args.get("duration_ns")
        if start is None or duration is None:
            continue
        name = event.get("name", "")
        if name.startswith("olap.operator.") and args.get("dram_bytes"):
            ops.append((start, start + duration, args))
        elif name == "pim.phase.load":
            loads.append((start, start + duration, duration))
    eps = 1e-6
    checked = 0
    max_rel_err = 0.0
    for begin, end, args in ops:
        busy = sum(
            dur
            for l_begin, l_end, dur in loads
            if l_begin >= begin - eps and l_end <= end + eps
        )
        reported = args.get("eff_gbps", 0.0)
        if busy <= 0 or not reported:
            continue
        derived = args["dram_bytes"] / busy
        checked += 1
        max_rel_err = max(max_rel_err, abs(derived - reported) / reported)
    return {
        "checked": checked,
        "max_rel_err": max_rel_err,
        "tolerance": tolerance,
        "ok": checked > 0 and max_rel_err <= tolerance,
    }


def _bottlenecks(
    operators: List[Dict[str, object]], max_rows: int
) -> List[Dict[str, object]]:
    """Rank operators at the largest size by share of sweep time."""
    merged: Dict[str, Dict[str, object]] = {}
    for op in operators:
        if op["rows"] != max_rows:
            continue
        entry = merged.setdefault(
            op["operator"],
            {
                "operator": op["operator"],
                "total_time": 0.0,
                "dram_bytes": 0,
                "bound": op["bound"],
                "ceiling_ratio": op["ceiling_ratio"],
            },
        )
        entry["total_time"] += op["total_time"]
        entry["dram_bytes"] += op["dram_bytes"]
        entry["ceiling_ratio"] = max(entry["ceiling_ratio"], op["ceiling_ratio"])
    total = sum(e["total_time"] for e in merged.values())
    ranked = sorted(merged.values(), key=lambda e: (-e["total_time"], e["operator"]))
    for entry in ranked:
        entry["time_share"] = entry["total_time"] / total if total else 0.0
    return ranked


def run_roofline(
    substrates: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = DEFAULT_OPERATOR_SIZES,
    micro_sizes: Sequence[int] = DEFAULT_SIZES,
    block_rows: int = 256,
    tag: str = "8",
) -> Dict[str, object]:
    """Full roofline sweep; returns the BENCH snapshot dict."""
    names = list(substrates) if substrates else available_substrates()
    sizes = sorted(set(sizes))
    micro_sizes = sorted(set(micro_sizes))
    snapshot: Dict[str, object] = {
        "bench_roofline_version": 1,
        "tag": tag,
        "params": {
            "substrates": names,
            "sizes": list(sizes),
            "micro_sizes": list(micro_sizes),
            "block_rows": block_rows,
        },
        "substrates": {},
        "micro": {},
        "fits": {},
        "operators": {},
        "bottlenecks": {},
        "rowbuffer": {},
        "trace_check": {},
    }
    for name in names:
        substrate = get_substrate(name)
        snapshot["substrates"][name] = substrate.summary()
        points = run_micro([name], micro_sizes)
        snapshot["micro"][name] = [p.as_dict() for p in points]
        fits: Dict[str, Dict[str, float]] = {}
        for primitive in sorted(PRIMITIVES):
            series = [p for p in points if p.primitive == primitive]
            fits[primitive] = fit_saturation(
                [p.dram_bytes for p in series],
                [p.effective_bandwidth for p in series],
            )
        snapshot["fits"][name] = fits
        sweep = _sweep_operators(substrate, sizes, block_rows)
        snapshot["operators"][name] = sweep["operators"]
        snapshot["bottlenecks"][name] = _bottlenecks(
            sweep["operators"], max(sizes)
        )
        snapshot["rowbuffer"][name] = sweep["rowbuffer"]
        snapshot["trace_check"][name] = sweep["trace_check"]
    return snapshot


def _bar(ratio: float, width: int = 32) -> str:
    filled = max(0, min(width, round(ratio * width)))
    return "#" * filled + "." * (width - filled)


def render_roofline(snapshot: Dict[str, object]) -> str:
    """ASCII roofline: per-substrate achieved-vs-ceiling bars."""
    lines: List[str] = []
    max_rows = max(snapshot["params"]["sizes"])
    for name in snapshot["params"]["substrates"]:
        summary = snapshot["substrates"][name]
        lines.append(f"== {name} — {summary['description']} ==")
        lines.append(
            "ceilings: stream {:.3f} B/ns/unit ({:.1f} GB/s system), "
            "random {:.3f} B/ns, control {:.0f} ns/offload".format(
                summary["stream_bandwidth_per_unit"],
                summary["stream_bandwidth_system"],
                summary["random_line_bandwidth"],
                summary["control_overhead_ns"],
            )
        )
        lines.append(f"operators @ {max_rows:,} rows (achieved / stream ceiling):")
        for entry in snapshot["bottlenecks"][name]:
            lines.append(
                "  {:<10s} |{}| {:>5.1%}  {:<7s} {:>5.1%} of sweep time".format(
                    entry["operator"],
                    _bar(entry["ceiling_ratio"]),
                    entry["ceiling_ratio"],
                    entry["bound"],
                    entry["time_share"],
                )
            )
        lines.append("microbenchmarks (largest size, single unit):")
        largest = max(snapshot["params"]["micro_sizes"])
        for point in snapshot["micro"][name]:
            if point["rows"] != largest:
                continue
            fit = snapshot["fits"][name][point["primitive"]]
            lines.append(
                "  {:<10s} |{}| {:>5.1%}  {:<7s} B∞ {:.3f} B/ns, s½ {:,.0f} B".format(
                    point["primitive"],
                    _bar(point["ceiling_ratio"]),
                    point["ceiling_ratio"],
                    point["bound"],
                    fit["asymptote_bandwidth"],
                    fit["half_size_bytes"],
                )
            )
        check = snapshot["trace_check"][name]
        lines.append(
            "trace consistency: {} operators checked, max err {:.4%} "
            "(tolerance {:.0%}) — {}".format(
                check["checked"],
                check["max_rel_err"],
                check["tolerance"],
                "OK" if check["ok"] else "FAIL",
            )
        )
        lines.append("")
    return "\n".join(lines).rstrip()
