"""Bench-regression harness: same simulation, faster host.

``repro.bench`` reruns the standard profile workloads twice — once on the
naive reference paths, once vectorized — asserts that every *simulated*
metric (counters, span totals, QphH/tpmC, critical path) is bit-identical
between the two modes and against a committed ``BENCH_<tag>.json``
baseline, and measures the host-side wall-clock speedup the vectorized
paths deliver. See ``python -m repro.experiments bench``.
"""

from repro.bench.harness import (
    SIM_SECTIONS,
    BenchResult,
    ClusterRun,
    HotPath,
    WorkloadRun,
    deterministic_snapshot,
    diff_sections,
    micro_benchmarks,
    run_bench,
    simulated_sections,
)
from repro.bench.micro import MicroPoint, fit_saturation, run_micro
from repro.bench.roofline import render_roofline, run_roofline

__all__ = [
    "SIM_SECTIONS",
    "BenchResult",
    "ClusterRun",
    "HotPath",
    "MicroPoint",
    "WorkloadRun",
    "deterministic_snapshot",
    "diff_sections",
    "fit_saturation",
    "micro_benchmarks",
    "render_roofline",
    "run_bench",
    "run_micro",
    "run_roofline",
    "simulated_sections",
]
