"""The bench harness behind ``python -m repro.experiments bench``.

Three jobs, in order of importance:

1. **Equivalence gate** — run each workload under the naive reference
   paths and under the vectorized paths (:mod:`repro.perf`) and require
   the simulated sections of the two bench snapshots to be *bit-identical*
   (exact float equality, no tolerances). A perf PR that changes any
   simulated number is a correctness regression, not an optimisation.
2. **Baseline gate** — when the run's parameters match the committed
   baseline snapshot (e.g. ``BENCH_3.json``), the simulated sections must
   also equal the baseline's exactly, which pins the whole history of
   snapshots to one simulated truth.
3. **Speedup evidence** — wall-clock of naive vs. vectorized on the same
   host for each workload (the scan-heavy ``ch`` workload is the gated
   one) plus per-hot-path micro-benchmarks, giving the before/after table
   that quantifies where the time went.

Wall-clock numbers recorded in old baselines are *not* gated against —
they were measured on another host; the speedup gate always compares two
runs of this process.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import perf
from repro.errors import ConfigError
from repro.trace.profile import run_profile

__all__ = [
    "SIM_SECTIONS",
    "HotPath",
    "WorkloadRun",
    "ClusterRun",
    "BenchResult",
    "simulated_sections",
    "diff_sections",
    "deterministic_snapshot",
    "micro_benchmarks",
    "run_bench",
]

#: Bench-snapshot sections that must be bit-identical across host-side
#: execution modes (and across PRs at fixed parameters).
SIM_SECTIONS = ("simulated", "counters", "spans", "tracks", "critical_path_ns")

#: Workloads whose wall-clock speedup is gated (scan-heavy).
SCAN_WORKLOADS = ("ch",)

#: Workloads whose wall-clock speedup is gated by ``min_oltp_speedup``
#: (transaction-only; exercises the batched TxnContext/commit paths).
OLTP_WORKLOADS = ("oltp",)

#: Profile workload each bench workload name maps to. ``oltp`` is the
#: bench-level name for the transaction-only profile (``tpcc``), gated
#: separately from the scan workloads.
PROFILE_WORKLOADS = {"oltp": "tpcc", "tpcc": "tpcc", "ch": "ch", "mixed": "mixed"}

#: Schema version of the BENCH comparison snapshot.
BENCH_COMPARE_VERSION = 1


def simulated_sections(bench: Dict[str, object]) -> Dict[str, object]:
    """The simulated-truth subset of a bench snapshot."""
    return {key: bench.get(key) for key in SIM_SECTIONS}


def diff_sections(
    expected: Dict[str, object],
    actual: Dict[str, object],
    prefix: str = "",
) -> List[str]:
    """Exact recursive diff of two simulated sections.

    Returns human-readable ``path: expected != actual`` lines; empty
    means bit-identical. Floats are compared exactly — the harness's
    whole point is that simulated results don't drift at all.
    """
    drifts: List[str] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in expected:
                drifts.append(f"{path}: unexpected key (not in baseline)")
            elif key not in actual:
                drifts.append(f"{path}: missing key")
            else:
                drifts.extend(diff_sections(expected[key], actual[key], path))
        return drifts
    if expected != actual:
        drifts.append(f"{prefix}: {expected!r} != {actual!r}")
    return drifts


# ----------------------------------------------------------------------
# Hot-path micro-benchmarks (host wall-clock, naive vs. vectorized)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HotPath:
    """Before/after wall-clock of one hot path on this host."""

    name: str
    naive_s: float
    vectorized_s: float

    @property
    def speedup(self) -> float:
        """Naive time over vectorized time (>1 means faster)."""
        return self.naive_s / self.vectorized_s if self.vectorized_s else float("inf")

    def as_dict(self) -> Dict[str, float]:
        return {
            "naive_s": round(self.naive_s, 6),
            "vectorized_s": round(self.vectorized_s, 6),
            "speedup": round(self.speedup, 2),
        }


def _best_of(fn: Callable[[], None], repeats: int = 3) -> float:
    """Best-of-N wall seconds of one callable."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _make_unit(wram: int = 1 << 16):
    from repro.core.config import DDR5_3200_TIMINGS, DeviceGeometry, PIMUnitConfig
    from repro.pim.device import Device
    from repro.pim.pim_unit import PIMUnit

    device = Device(0, 1 << 20, num_banks=8)
    return PIMUnit(
        0, device.banks[0], PIMUnitConfig(wram_bytes=wram), DDR5_3200_TIMINGS,
        DeviceGeometry(),
    )


def micro_benchmarks(seed: int = 11, repeats: int = 3) -> List[HotPath]:
    """Measure each vectorized hot path against its naive reference.

    Every benchmark runs the *same* functional operation in both modes
    (the modes are equivalence-tested elsewhere); only host wall-clock
    differs. Results are per-host and indicative — the workload-level
    speedup is what the regression gate uses.
    """
    from repro.mvcc.manager import MVCCManager
    from repro.mvcc.metadata import Region
    from repro.pim.pim_unit import bytes_to_uints

    rng = np.random.default_rng(seed)
    paths: List[HotPath] = []

    def run_both(name: str, fn: Callable[[], None]) -> None:
        with perf.naive_mode():
            naive = _best_of(fn, repeats)
        perf.set_vectorized(True)
        vec = _best_of(fn, repeats)
        paths.append(HotPath(name, naive, vec))

    # pim.bytes_to_uints — WRAM-slice decode into typed arrays.
    raw = rng.integers(0, 256, size=1 << 18, dtype=np.uint8)

    def bench_decode() -> None:
        for _ in range(16):
            bytes_to_uints(raw, 4)

    run_both("pim.bytes_to_uints", bench_decode)

    # pim.load_strided — the OLAP scan's strided DRAM→WRAM stage.
    unit = _make_unit()

    def bench_load() -> None:
        for _ in range(4):
            unit.load_strided(0, 1 << 15, stride=16, chunk=4, wram_offset=0)

    run_both("pim.load_strided", bench_load)

    # pim.op_join — bucket matching via hash positions.
    join_unit = _make_unit()
    count = 4096
    h1 = rng.integers(1, 1 << 16, size=count, dtype=np.uint32)
    h2 = rng.integers(1, 1 << 16, size=count, dtype=np.uint32)
    join_unit.wram_write(0, h1.view(np.uint8))
    join_unit.wram_write(count * 4, h2.view(np.uint8))

    def bench_join() -> None:
        join_unit.op_join(0, count * 4, count * 8, count, count)

    run_both("pim.op_join", bench_join)

    # mvcc.read — visibility resolution over a partly updated table.
    block_rows = 1024
    rows = 16 * block_rows
    mvcc = MVCCManager(
        initial_rows=rows,
        capacity_rows=rows,
        block_rows=block_rows,
        num_devices=8,
        delta_capacity_blocks=24,
    )
    updated = rng.choice(rows, size=2048, replace=False)
    versions_per_row = 6
    ts = 0
    for _ in range(versions_per_row):
        for row in np.sort(updated):
            ts += 1
            mvcc.update(int(row), ts)
    read_ts = ts + 1
    probe = rng.integers(0, rows, size=1 << 14)

    def bench_read() -> None:
        for row in probe:
            mvcc.read(int(row), read_ts)
            mvcc.chain_length(int(row))

    run_both("mvcc.read", bench_read)
    assert mvcc.read(int(updated[0]), read_ts).region == Region.DELTA

    # mvcc.visible_refs_at — snapshot-bitmap construction over the index.
    delta_rows = mvcc.delta.capacity_rows

    def bench_visible() -> None:
        mvcc.visible_refs_at(read_ts, delta_rows)

    run_both("mvcc.visible_refs_at", bench_visible)

    # storage.read_column_values — the CPU fallback scan's gather.
    from repro.core.engine import PushTapEngine

    engine = PushTapEngine.build(scale=2e-5, seed=seed)
    runtime = engine.table("orderline")
    column = runtime.schema.columns[0].name
    num_rows = runtime.num_rows

    def bench_column() -> None:
        runtime.storage.read_column_values(Region.DATA, column, num_rows)

    run_both("storage.read_column_values", bench_column)

    return paths


# ----------------------------------------------------------------------
# Workload runs
# ----------------------------------------------------------------------
@dataclass
class WorkloadRun:
    """One workload executed in both modes on this host."""

    workload: str
    bench: Dict[str, object]
    naive_wall: Dict[str, object]
    mode_drift: List[str] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Naive over vectorized run wall-clock."""
        naive = float(self.naive_wall["run_s"])
        vec = float(self.bench["wall_clock"]["run_s"])  # type: ignore[index]
        return naive / vec if vec else float("inf")


@dataclass
class ClusterRun:
    """The sharded cluster executed sequentially and in parallel.

    Three runs of the identical workload: naive ``jobs=1``, vectorized
    ``jobs=1``, and vectorized ``jobs=N``. ``mode_drift`` is the exact
    recursive diff of the first two reports (host-execution-mode
    equivalence), ``jobs_drift`` of the last two (parallel-merge
    determinism); both must be empty.
    """

    shards: int
    jobs: int
    report: Dict[str, object]
    mode_drift: List[str]
    jobs_drift: List[str]
    naive_s: float
    sequential_s: float
    parallel_s: float

    @property
    def parallel_speedup(self) -> float:
        """Sequential over parallel wall-clock (vectorized both sides)."""
        return (
            self.sequential_s / self.parallel_s
            if self.parallel_s
            else float("inf")
        )


@dataclass
class BenchResult:
    """Everything one bench run produced, plus pass/fail state."""

    runs: List[WorkloadRun]
    hot_paths: List[HotPath]
    baseline_tag: Optional[str]
    baseline_workload: Optional[str]
    baseline_compared: bool
    baseline_drift: List[str]
    min_speedup: float
    min_oltp_speedup: float = 0.0
    min_parallel_speedup: float = 0.0
    cluster: Optional[ClusterRun] = None
    snapshot: Dict[str, object] = field(default_factory=dict)

    @property
    def simulated_identical(self) -> bool:
        """Every execution mode agrees on every simulated metric:
        naive vs. vectorized per workload, and ``jobs=1`` vs. ``jobs=N``
        on the cluster workload."""
        if any(run.mode_drift for run in self.runs):
            return False
        if self.cluster is not None and (
            self.cluster.mode_drift or self.cluster.jobs_drift
        ):
            return False
        return True

    @property
    def speedup_ok(self) -> bool:
        """Every gated scan workload meets the wall-clock speedup bar."""
        return all(
            run.speedup >= self.min_speedup
            for run in self.runs
            if run.workload in SCAN_WORKLOADS
        )

    @property
    def oltp_speedup_ok(self) -> bool:
        """The OLTP workload meets its naive/vectorized wall-clock bar."""
        return all(
            run.speedup >= self.min_oltp_speedup
            for run in self.runs
            if run.workload in OLTP_WORKLOADS
        )

    @property
    def parallel_speedup_ok(self) -> bool:
        """The cluster workload meets its jobs=1/jobs=N wall-clock bar."""
        if self.cluster is None:
            return True
        return self.cluster.parallel_speedup >= self.min_parallel_speedup

    @property
    def passed(self) -> bool:
        return (
            self.simulated_identical
            and not self.baseline_drift
            and self.speedup_ok
            and self.oltp_speedup_ok
            and self.parallel_speedup_ok
        )


def _run_cluster_compare(
    shards: int,
    jobs: int,
    intervals: int,
    txns_per_query: int,
    scale: float,
    seed: int,
    defrag_period: int,
) -> ClusterRun:
    """Run the sharded cluster workload three ways and diff the reports.

    Same build and workload idiom as the ``cluster`` experiment (fixed
    row counts, homogeneous tenant streams); wall-clock covers the
    workload run only, not the cluster build.
    """
    from repro.cluster import ClusterWorkload, PushTapCluster, cluster_row_counts

    counts = cluster_row_counts(scale, shards)

    def run_once(vectorized: bool, run_jobs: int) -> Tuple[Dict[str, object], float]:
        perf.set_vectorized(vectorized)
        cluster = PushTapCluster.build(
            shards=shards,
            counts=counts,
            seed=seed,
            defrag_period=defrag_period,
            block_rows=256,
            extra_rows=12 * intervals * txns_per_query,
        )
        workload = ClusterWorkload(
            cluster,
            txns_per_query=txns_per_query,
            seed=seed,
            remote_fraction=1.0,
            tenants=shards,
            homogeneous_tenants=True,
            warehouse_groups=shards,
        )
        t0 = time.perf_counter()
        report = workload.run(intervals, jobs=run_jobs)
        wall = time.perf_counter() - t0
        return report.as_dict(), wall

    try:
        naive_report, naive_s = run_once(False, 1)
        seq_report, sequential_s = run_once(True, 1)
        par_report, parallel_s = run_once(True, jobs)
    finally:
        perf.set_vectorized(True)
    return ClusterRun(
        shards=shards,
        jobs=jobs,
        report=seq_report,
        mode_drift=diff_sections(naive_report, seq_report),
        jobs_drift=diff_sections(seq_report, par_report),
        naive_s=naive_s,
        sequential_s=sequential_s,
        parallel_s=parallel_s,
    )


def run_bench(
    workloads: Sequence[str] = ("mixed", "ch"),
    baseline_path: Optional[str] = "BENCH_3.json",
    tag: str = "5",
    intervals: int = 6,
    txns_per_query: int = 30,
    scale: float = 2e-5,
    seed: int = 11,
    defrag_period: int = 200,
    queries: Sequence[str] = ("Q1", "Q6", "Q9"),
    min_speedup: float = 2.0,
    min_oltp_speedup: float = 0.0,
    min_parallel_speedup: float = 0.0,
    jobs: int = 4,
    cluster_shards: int = 4,
    micro: bool = True,
) -> BenchResult:
    """Run the bench harness; returns results + the snapshot to write.

    The default parameters replicate the committed ``BENCH_3.json``
    baseline exactly, so its simulated sections gate this run. Running at
    other parameters (e.g. a tiny CI smoke) skips the baseline diff and
    records why, but the naive-vs-vectorized equivalence gate always
    applies.

    Beyond the profile workloads, ``workloads`` may name ``oltp`` (the
    transaction-only profile, gated by ``min_oltp_speedup``) and
    ``cluster`` (the sharded workload run at ``jobs=1`` and ``jobs=N``,
    whose reports must be identical and whose parallel wall-clock ratio
    is gated by ``min_parallel_speedup``). Both speedup gates default to
    0 — wall-clock on shared CI hosts (often single-core) is evidence,
    not simulated truth; the identity gates always apply.
    """
    if not workloads:
        raise ConfigError("bench needs at least one workload")
    unknown = [w for w in workloads if w not in PROFILE_WORKLOADS and w != "cluster"]
    if unknown:
        raise ConfigError(f"unknown bench workloads {unknown}")
    params = {
        "intervals": intervals,
        "txns_per_query": txns_per_query,
        "scale": scale,
        "seed": seed,
        "defrag_period": defrag_period,
        "queries": list(queries),
    }

    runs: List[WorkloadRun] = []
    cluster_run: Optional[ClusterRun] = None
    for workload in workloads:
        if workload == "cluster":
            cluster_run = _run_cluster_compare(
                shards=cluster_shards,
                jobs=jobs,
                intervals=intervals,
                txns_per_query=txns_per_query,
                scale=scale,
                seed=seed,
                defrag_period=defrag_period,
            )
            continue
        profile_workload = PROFILE_WORKLOADS[workload]
        with perf.naive_mode():
            naive = run_profile(workload=profile_workload, tag=tag, **params)
        perf.set_vectorized(True)
        vectorized = run_profile(workload=profile_workload, tag=tag, **params)
        drift = diff_sections(
            simulated_sections(naive.bench), simulated_sections(vectorized.bench)
        )
        runs.append(
            WorkloadRun(
                workload=workload,
                bench=vectorized.bench,
                naive_wall=dict(naive.bench["wall_clock"]),  # type: ignore[arg-type]
                mode_drift=drift,
            )
        )

    baseline_tag: Optional[str] = None
    baseline_workload: Optional[str] = None
    baseline_compared = False
    baseline_drift: List[str] = []
    if baseline_path:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        baseline_tag = str(baseline.get("tag"))
        baseline_workload = str(baseline.get("workload"))
        match = next(
            (run for run in runs if run.workload == baseline_workload), None
        )
        if match is not None and baseline.get("params") == params:
            baseline_compared = True
            baseline_drift = diff_sections(
                simulated_sections(baseline), simulated_sections(match.bench)
            )

    hot_paths = micro_benchmarks(seed=seed) if micro else []

    result = BenchResult(
        runs=runs,
        hot_paths=hot_paths,
        baseline_tag=baseline_tag,
        baseline_workload=baseline_workload,
        baseline_compared=baseline_compared,
        baseline_drift=baseline_drift,
        min_speedup=min_speedup,
        min_oltp_speedup=min_oltp_speedup,
        min_parallel_speedup=min_parallel_speedup,
        cluster=cluster_run,
    )
    result.snapshot = _snapshot(result, params, baseline_path, tag)
    return result


def _snapshot(
    result: BenchResult,
    params: Dict[str, object],
    baseline_path: Optional[str],
    tag: str,
) -> Dict[str, object]:
    """The machine-readable ``BENCH_<tag>.json`` comparison snapshot."""
    return {
        "bench_compare_version": BENCH_COMPARE_VERSION,
        "tag": tag,
        "params": params,
        "baseline": {
            "path": baseline_path,
            "tag": result.baseline_tag,
            "workload": result.baseline_workload,
            "compared": result.baseline_compared,
            "simulated_drift": result.baseline_drift,
        },
        "workloads": {
            run.workload: {
                "simulated": run.bench["simulated"],
                "counters": run.bench["counters"],
                "spans": run.bench["spans"],
                "tracks": run.bench["tracks"],
                "critical_path_ns": run.bench["critical_path_ns"],
                "wall_clock": {
                    "vectorized": run.bench["wall_clock"],
                    "naive": run.naive_wall,
                },
                "wall_clock_s": run.bench.get("wall_clock_s"),
                "peak_rss_bytes": run.bench.get("peak_rss_bytes"),
                "speedup": round(run.speedup, 2),
                "mode_drift": run.mode_drift,
            }
            for run in result.runs
        },
        "cluster": (
            None
            if result.cluster is None
            else {
                "shards": result.cluster.shards,
                "jobs": result.cluster.jobs,
                "report": result.cluster.report,
                "mode_drift": result.cluster.mode_drift,
                "jobs_drift": result.cluster.jobs_drift,
                "wall_clock": {
                    "naive_jobs1_s": round(result.cluster.naive_s, 6),
                    "jobs1_s": round(result.cluster.sequential_s, 6),
                    f"jobs{result.cluster.jobs}_s": round(
                        result.cluster.parallel_s, 6
                    ),
                },
                "parallel_speedup": round(result.cluster.parallel_speedup, 2),
            }
        ),
        "hot_paths": {p.name: p.as_dict() for p in result.hot_paths},
        "gates": {
            "min_speedup": result.min_speedup,
            "min_oltp_speedup": result.min_oltp_speedup,
            "min_parallel_speedup": result.min_parallel_speedup,
            "scan_workloads": list(SCAN_WORKLOADS),
            "oltp_workloads": list(OLTP_WORKLOADS),
            "simulated_identical": result.simulated_identical,
            "baseline_drift_free": not result.baseline_drift,
            "speedup_ok": result.speedup_ok,
            "oltp_speedup_ok": result.oltp_speedup_ok,
            "parallel_speedup_ok": result.parallel_speedup_ok,
            "passed": result.passed,
        },
    }


#: Snapshot keys that record host wall-clock (or derive from it) and so
#: cannot be byte-stable across hosts. Everything else in a bench
#: snapshot is simulated truth and must regenerate identically.
_HOST_KEYS = (
    "wall_clock",
    "wall_clock_s",
    "peak_rss_bytes",
    "speedup",
    "parallel_speedup",
    "hot_paths",
)


def deterministic_snapshot(snapshot: Dict[str, object]) -> Dict[str, object]:
    """The host-independent subset of a bench comparison snapshot.

    Strips wall-clock timings, RSS, speedups, and the per-host hot-path
    table, plus the speedup gate outcomes that depend on them — what
    remains (simulated sections, drift lists, identity gates) must be
    byte-identical when the snapshot is regenerated with the same
    parameters on any host. CI regenerates ``BENCH_10.json`` and
    byte-compares this subset.
    """

    def strip(value):
        if isinstance(value, dict):
            return {k: strip(v) for k, v in value.items() if k not in _HOST_KEYS}
        if isinstance(value, list):
            return [strip(v) for v in value]
        return value

    out = strip(snapshot)
    gates = out.get("gates")
    if isinstance(gates, dict):
        for key in ("speedup_ok", "oltp_speedup_ok", "parallel_speedup_ok", "passed"):
            gates.pop(key, None)
    return out


def span_before_after(
    baseline: Dict[str, object], bench: Dict[str, object]
) -> List[Tuple[str, float, float]]:
    """Per-span (name, baseline self-time, current self-time) rows.

    Both numbers are *simulated* nanoseconds from the tracer — under a
    passing run they are equal; any difference is drift the gates report.
    """
    base_spans: Dict[str, Dict] = baseline.get("spans", {})  # type: ignore[assignment]
    cur_spans: Dict[str, Dict] = bench.get("spans", {})  # type: ignore[assignment]
    rows = []
    for name in sorted(set(base_spans) | set(cur_spans)):
        before = float(base_spans.get(name, {}).get("self_ns", 0.0))
        after = float(cur_spans.get(name, {}).get("self_ns", 0.0))
        rows.append((name, before, after))
    return rows
