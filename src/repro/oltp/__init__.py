"""PUSHtap reproduction subpackage."""
