"""The OLTP engine: transaction execution with a per-phase cost model.

Transactions run *functionally* against the MVCC tables (real reads,
updates, inserts) while a cost model accumulates the Fig. 11c breakdown:
indexing, memory allocation, computation, version-chain traversal, memory
access (format-dependent — this is where RS/CS/PUSHtap differ, Fig. 9a),
data re-layout (unified format only), and the commit-time ``clflush`` +
barrier that keeps DRAM fresh for the OLAP engine (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro import perf
from repro.core.config import SystemConfig
from repro.core.database import Database
from repro.errors import TransactionAborted, TransactionError
from repro.faults import injector as faults
from repro.faults import plan as fault_plan
from repro.format.schema import Value
from repro.mvcc.metadata import Region, RowRef
from repro.oltp.formats import AccessFormatModel
from repro.pim.timing import BankTimingModel, random_line_time
from repro.telemetry import registry as telemetry

__all__ = [
    "CostParams",
    "TxnBreakdown",
    "TxnResult",
    "OLTPEngine",
    "TxnContext",
    "PendingTxn",
    "PreparedTxn",
]


@dataclass(frozen=True)
class CostParams:
    """Tunable cost constants of the transaction model (all ns).

    Defaults are calibrated so the Fig. 11c proportions hold: indexing,
    allocation, and computation dominate; version-chain traversal is
    < 0.1 % (§7.4).
    """

    index_compute_ns: float = 150.0
    alloc_ns: float = 400.0
    compute_per_op_ns: float = 350.0
    chain_entry_ns: float = 2.0
    relayout_per_byte_ns: float = 0.25
    flush_per_line_ns: float = 25.0
    commit_barrier_ns: float = 30.0


@dataclass
class TxnBreakdown:
    """Per-phase time of one transaction (Fig. 11c)."""

    index: float = 0.0
    alloc: float = 0.0
    compute: float = 0.0
    chain: float = 0.0
    memory: float = 0.0
    relayout: float = 0.0
    flush: float = 0.0

    @property
    def total(self) -> float:
        """Total transaction time."""
        return (
            self.index
            + self.alloc
            + self.compute
            + self.chain
            + self.memory
            + self.relayout
            + self.flush
        )

    def merge(self, other: "TxnBreakdown") -> "TxnBreakdown":
        """Sum two breakdowns."""
        return TxnBreakdown(
            self.index + other.index,
            self.alloc + other.alloc,
            self.compute + other.compute,
            self.chain + other.chain,
            self.memory + other.memory,
            self.relayout + other.relayout,
            self.flush + other.flush,
        )

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as a name → time mapping."""
        return {
            "index": self.index,
            "alloc": self.alloc,
            "compute": self.compute,
            "chain": self.chain,
            "memory": self.memory,
            "relayout": self.relayout,
            "flush": self.flush,
        }


@dataclass
class TxnResult:
    """Outcome of one committed (or aborted) transaction."""

    ts: int
    breakdown: TxnBreakdown
    rows_read: int = 0
    rows_written: int = 0
    aborted: bool = False
    #: Optional value a read-only transaction computed (``ctx.result``).
    value: object = None

    @property
    def total_time(self) -> float:
        """Total transaction latency in ns."""
        return self.breakdown.total


class TxnContext:
    """Operations available to a running transaction."""

    def __init__(self, engine: "OLTPEngine", ts: int) -> None:
        self.engine = engine
        self.ts = ts
        self.breakdown = TxnBreakdown()
        self.rows_read = 0
        self.rows_written = 0
        self._written_lines = 0
        # Per-transaction hoists of the per-access lookups: the cost
        # table, format model, line latency, and the roofline telemetry
        # decision are all fixed for the transaction's lifetime, so
        # resolving them once here keeps them out of the per-row loop.
        # Wall-clock only — every charged value is unchanged.
        self._cost = engine.cost
        self._model = engine.format_model
        self._line_ns = engine.line_ns
        tel = telemetry.active()
        self._roofline = bool(tel.enabled and tel.roofline)
        self._undo: list = []
        #: Logical redo records for the WAL, recorded only when the
        #: engine has durability enabled (committed transactions only —
        #: an aborted context's journal is simply discarded).
        self.ops: list = []
        #: Read-only transactions may publish a computed value here.
        self.result: object = None

    # ------------------------------------------------------------------
    # Index operations
    # ------------------------------------------------------------------
    def index_lookup(self, index: str, key: Hashable) -> int:
        """Probe an index; raises if the key is absent."""
        result = self.engine.db.index(index).probe(key)
        self.breakdown.index += (
            self.engine.cost.index_compute_ns + result.lines * self.engine.line_ns
        )
        if not result.found:
            raise TransactionError(f"index {index!r}: key {key!r} not found")
        return result.row_id

    def index_insert(self, index: str, key: Hashable, row_id: int) -> None:
        """Insert into an index."""
        lines = self.engine.db.index(index).insert(key, row_id)
        self.breakdown.index += self.engine.cost.index_compute_ns + lines * self.engine.line_ns

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------
    def read(
        self, table: str, row_id: int, columns: Optional[Sequence[str]] = None
    ) -> Dict[str, Value]:
        """Read the visible version of a row (optionally partial)."""
        runtime = self.engine.db.table(table)
        self.breakdown.chain += (
            runtime.mvcc.chain_length(row_id) * self.engine.cost.chain_entry_ns
        )
        # Partial reads fetch only the requested columns' byte runs —
        # the simulated cost model already charges by touched lines via
        # _account_access; this keeps the *host* cost proportional too.
        row = runtime.read_row(row_id, self.ts, columns)
        self._account_access(table, columns, write=False, row_id=row_id)
        self.breakdown.compute += self.engine.cost.compute_per_op_ns
        self.rows_read += 1
        return row

    def update(self, table: str, row_id: int, changes: Dict[str, Value]) -> None:
        """Install a new version of a row with ``changes``."""
        inj = faults.active()
        if inj.enabled and inj.fire(fault_plan.DELTA_EXHAUSTION):
            # The delta region reports exhaustion mid-transaction: the
            # allocation fails and the transaction aborts gracefully (its
            # earlier writes roll back), instead of crashing the engine.
            inj.detect(fault_plan.DELTA_EXHAUSTION)
            raise TransactionAborted(
                "injected fault: delta region exhausted mid-transaction"
            )
        runtime = self.engine.db.table(table)
        chain_before = runtime.mvcc.chain_length(row_id)
        self.breakdown.chain += chain_before * self.engine.cost.chain_entry_ns
        self.breakdown.alloc += self.engine.cost.alloc_ns
        runtime.update_row(row_id, self.ts, changes)
        # A same-transaction re-update overwrites this transaction's
        # version in place (no new chain entry) — it must not stack a
        # second undo step for the single installed version.
        if runtime.mvcc.chain_length(row_id) > chain_before:
            self._undo.append(lambda: runtime.mvcc.undo_update(row_id))
        if self.engine.durability is not None:
            self.ops.append(("update", table, row_id, dict(changes)))
        # Writing a version writes the whole row (new delta row).
        self._account_access(table, None, write=True, row_id=row_id)
        self.breakdown.compute += self.engine.cost.compute_per_op_ns
        self.rows_written += 1

    def read_many(
        self,
        table: str,
        row_ids: Sequence[int],
        columns: Optional[Sequence[str]] = None,
    ) -> List[Dict[str, Value]]:
        """Read the visible versions of many rows of one table (batched).

        Identical charges, side effects, and failure behaviour to
        calling :meth:`read` once per row in order. Vectorized, the
        batch's MVCC visibility is array-resolved up front — one packed
        index pass classifies the never-versioned live rows — and the
        per-row cost constants are resolved once; rows that need a chain
        walk (or raise) fall back to the per-row path at their exact
        stream position, so even mid-batch errors leave the same partial
        accounting behind.
        """
        if not perf.vectorized():
            return [self.read(table, row_id, columns) for row_id in row_ids]
        runtime = self.engine.db.table(table)
        fast = runtime.mvcc.fast_row_mask(row_ids)
        storage = runtime.storage
        cost = self._cost
        model = self._model
        lines = model.lines_for_row(table, columns)
        chain_ns = cost.chain_entry_ns
        memory_ns = lines * self._line_ns
        relayout_ns = model.relayout_bytes(table, columns) * cost.relayout_per_byte_ns
        compute_ns = cost.compute_per_op_ns
        breakdown = self.breakdown
        roofline = self._roofline
        rows: List[Dict[str, Value]] = []
        for i, row_id in enumerate(row_ids):
            if not fast[i]:
                # Chained / tombstoned / out-of-range rows resolve (or
                # raise) exactly as the per-row path would.
                rows.append(self.read(table, row_id, columns))
                continue
            # Never-versioned live row: chain length 1, head in the data
            # region, no walk and no read observation — the same outcome
            # read() reaches, with every lookup pre-resolved.
            breakdown.chain += chain_ns
            rows.append(storage.read_row(RowRef(Region.DATA, row_id), columns))
            breakdown.memory += memory_ns
            breakdown.relayout += relayout_ns
            if roofline:
                self.engine.track_rowbuffer(table, row_id, lines, False)
            breakdown.compute += compute_ns
            self.rows_read += 1
        return rows

    def update_many(
        self, table: str, updates: Sequence[Tuple[int, Dict[str, Value]]]
    ) -> None:
        """Install new versions for many rows of one table (batched).

        Equivalent to calling :meth:`update` once per ``(row_id,
        changes)`` pair in order — same charges, same undo stack, same
        fault-hook draws — with the per-pair table/injector/cost lookups
        hoisted out of the loop. The §6.3 commit flush is unchanged:
        written lines accumulate across the batch and are charged as one
        line set at commit, not per Python-level call.
        """
        if not perf.vectorized():
            for row_id, changes in updates:
                self.update(table, row_id, changes)
            return
        inj = faults.active()
        inj_enabled = inj.enabled
        runtime = self.engine.db.table(table)
        mvcc = runtime.mvcc
        cost = self._cost
        chain_ns = cost.chain_entry_ns
        alloc_ns = cost.alloc_ns
        compute_ns = cost.compute_per_op_ns
        lines = self._model.lines_for_row(table, None)
        memory_ns = lines * self._line_ns
        relayout_ns = (
            self._model.relayout_bytes(table, None) * cost.relayout_per_byte_ns
        )
        breakdown = self.breakdown
        durable = self.engine.durability is not None
        roofline = self._roofline
        for row_id, changes in updates:
            if inj_enabled and inj.fire(fault_plan.DELTA_EXHAUSTION):
                inj.detect(fault_plan.DELTA_EXHAUSTION)
                raise TransactionAborted(
                    "injected fault: delta region exhausted mid-transaction"
                )
            chain_before = mvcc.chain_length(row_id)
            breakdown.chain += chain_before * chain_ns
            breakdown.alloc += alloc_ns
            runtime.update_row(row_id, self.ts, changes)
            if mvcc.chain_length(row_id) > chain_before:
                self._undo.append(lambda row_id=row_id: mvcc.undo_update(row_id))
            if durable:
                self.ops.append(("update", table, row_id, dict(changes)))
            breakdown.memory += memory_ns
            breakdown.relayout += relayout_ns
            self._written_lines += lines
            if roofline:
                self.engine.track_rowbuffer(table, row_id, lines, True)
            breakdown.compute += compute_ns
            self.rows_written += 1

    def insert(
        self,
        table: str,
        values: Dict[str, Value],
        index_key: Optional[Tuple[str, Hashable]] = None,
    ) -> int:
        """Append a row, optionally registering it in an index."""
        runtime = self.engine.db.table(table)
        self.breakdown.alloc += self.engine.cost.alloc_ns
        row_id = runtime.insert_row(self.ts, values)
        self._undo.append(lambda: runtime.mvcc.undo_insert(row_id))
        if self.engine.durability is not None:
            self.ops.append(("insert", table, row_id, dict(values), index_key))
        self._account_access(table, None, write=True, row_id=row_id)
        self.breakdown.compute += self.engine.cost.compute_per_op_ns
        self.rows_written += 1
        if index_key is not None:
            self.index_insert(index_key[0], index_key[1], row_id)
            index = self.engine.db.index(index_key[0])
            self._undo.append(lambda: index.remove(index_key[1]))
        return row_id

    def delete(self, table: str, row_id: int, index_key: Optional[Tuple[str, Hashable]] = None) -> None:
        """Tombstone a row, optionally removing its index entry."""
        runtime = self.engine.db.table(table)
        self.breakdown.chain += (
            runtime.mvcc.chain_length(row_id) * self.engine.cost.chain_entry_ns
        )
        runtime.mvcc.delete(row_id, self.ts)
        self._undo.append(lambda: runtime.mvcc.undo_delete(row_id))
        if self.engine.durability is not None:
            self.ops.append(("delete", table, row_id, index_key))
        self._account_access(table, None, write=True, row_id=row_id)
        self.breakdown.compute += self.engine.cost.compute_per_op_ns
        self.rows_written += 1
        if index_key is not None:
            index = self.engine.db.index(index_key[0])
            # Capture the entry being removed so rollback can restore it
            # (an aborted delete must leave the index untouched, exactly
            # as insert's undo removes the entry it added).
            removed_row = index.probe(index_key[1]).row_id
            lines = index.remove(index_key[1])
            self._undo.append(lambda: index.insert(index_key[1], removed_row))
            self.breakdown.index += (
                self.engine.cost.index_compute_ns + lines * self.engine.line_ns
            )

    def abort(self, reason: str = "") -> None:
        """Abort the transaction; the engine rolls back its writes."""
        raise TransactionAborted(reason or "transaction aborted")

    def rollback(self) -> None:
        """Undo every write of this transaction, newest first."""
        while self._undo:
            self._undo.pop()()
        self._written_lines = 0

    def _account_access(
        self,
        table: str,
        columns: Optional[Sequence[str]],
        write: bool,
        row_id: int = -1,
    ) -> None:
        model = self._model
        lines = model.lines_for_row(table, columns)
        self.breakdown.memory += lines * self._line_ns
        self.breakdown.relayout += (
            model.relayout_bytes(table, columns) * self._cost.relayout_per_byte_ns
        )
        if write:
            self._written_lines += lines
        if self._roofline and row_id >= 0:
            self.engine.track_rowbuffer(table, row_id, lines, write)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(self) -> TxnResult:
        """Flush written lines + memory barrier (§6.3) and finish."""
        self.breakdown.flush += (
            self._written_lines * self.engine.cost.flush_per_line_ns
            + self.engine.cost.commit_barrier_ns
        )
        return TxnResult(
            ts=self.ts,
            breakdown=self.breakdown,
            rows_read=self.rows_read,
            rows_written=self.rows_written,
            value=self.result,
        )

    # ------------------------------------------------------------------
    # Two-phase commit (the single-phase commit() above is untouched)
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """First 2PC phase: harden the writes plus a prepare record.

        The participant flushes every written line and appends its
        prepare record, both charged through the §6.3 flush model —
        identical cost to a single-phase commit, because the same dirty
        lines must reach DRAM before the participant may vote yes. Its
        write locks stay held until :meth:`finalize_commit` or
        :meth:`rollback` resolves the decision.
        """
        self.breakdown.flush += (
            self._written_lines * self.engine.cost.flush_per_line_ns
            + self.engine.cost.commit_barrier_ns
        )

    def finalize_commit(self) -> TxnResult:
        """Second 2PC phase: the decision record flush + barrier.

        One extra flushed line (the commit record referencing the
        prepare record) plus the barrier — the per-participant overhead
        a cross-shard transaction pays over a single-phase commit.
        """
        self.breakdown.flush += (
            self.engine.cost.flush_per_line_ns + self.engine.cost.commit_barrier_ns
        )
        return TxnResult(
            ts=self.ts,
            breakdown=self.breakdown,
            rows_read=self.rows_read,
            rows_written=self.rows_written,
            value=self.result,
        )


class PendingTxn:
    """A transaction accepted but not yet executed (serve-loop handle).

    The serve event loop queues these behind admission control and steps
    each one when the simulated server frees up; :meth:`step` executes
    to completion exactly once and is idempotent afterwards, so a loop
    can poll a pending handle without double-running the transaction.
    """

    __slots__ = ("engine", "txn", "result")

    def __init__(self, engine: "OLTPEngine", txn: Callable[[TxnContext], None]) -> None:
        self.engine = engine
        self.txn = txn
        self.result: Optional[TxnResult] = None

    @property
    def done(self) -> bool:
        """Whether the transaction has executed."""
        return self.result is not None

    def step(self) -> TxnResult:
        """Execute the transaction (first call) or return its result."""
        if self.result is None:
            self.result = self.engine.execute(self.txn)
        return self.result


class PreparedTxn:
    """A transaction that ran its body and voted in a 2PC prepare phase.

    ``vote_yes`` carries the participant's vote: True means the body
    executed and its writes are hardened behind a prepare record (locks
    held, awaiting the coordinator's decision); False means the body
    aborted during prepare — the writes are already rolled back and the
    participant needs no further resolution. The coordinator resolves a
    yes-voting handle with exactly one of
    :meth:`OLTPEngine.commit_prepared` / :meth:`OLTPEngine.abort_prepared`.
    """

    __slots__ = ("ctx", "txn_name", "vote_yes", "result", "resolved")

    def __init__(
        self,
        ctx: TxnContext,
        txn_name: str,
        vote_yes: bool,
        result: Optional[TxnResult] = None,
    ) -> None:
        self.ctx = ctx
        self.txn_name = txn_name
        self.vote_yes = vote_yes
        self.result = result
        self.resolved = not vote_yes

    @property
    def prepare_time(self) -> float:
        """Simulated time the prepare phase consumed so far (ns)."""
        if self.result is not None and not self.vote_yes:
            return self.result.total_time
        return self.ctx.breakdown.total


class OLTPEngine:
    """Executes transactions against a database under a format model."""

    def __init__(
        self,
        db: Database,
        format_model: AccessFormatModel,
        config: SystemConfig,
        cost: CostParams = CostParams(),
    ) -> None:
        self.db = db
        self.format_model = format_model
        self.config = config
        self.cost = cost
        #: Modelled latency of one random cache-line access.
        self.line_ns = random_line_time(1, config.timings)
        #: Per-table row-buffer shadow models (roofline observability).
        #: Populated lazily while the telemetry ``roofline`` flag is on.
        self.rowbuffers: Dict[str, BankTimingModel] = {}
        self.committed = 0
        self.aborted = 0
        self.total_time = 0.0
        self.breakdown = TxnBreakdown()
        #: Optional :class:`repro.wal.DurabilityManager`; when set, every
        #: commit appends a redo record to the write-ahead log and the
        #: append/fsync cost lands in the transaction's flush phase.
        self.durability = None

    def track_rowbuffer(self, table: str, row_id: int, lines: int, write: bool) -> None:
        """Feed one row access into the table's row-buffer shadow model.

        Active only while the telemetry registry's ``roofline`` flag is
        on (zero overhead otherwise). The DRAM row is derived from the
        row's byte position in the table's base layout — a proxy for the
        physical placement that preserves locality structure: adjacent
        row ids share DRAM rows, scattered ones conflict.
        """
        tel = telemetry.active()
        if row_id < 0 or not (tel.enabled and tel.roofline):
            return
        model = self.rowbuffers.get(table)
        if model is None:
            model = self.rowbuffers[table] = BankTimingModel(self.config.timings)
        geom = self.config.geometry
        row_bytes = self.format_model.lines_for_row(table, None) * geom.cache_line_bytes
        dram_row = (row_id * row_bytes) // geom.row_buffer_bytes
        model.access(dram_row, lines * geom.cache_line_bytes, write)

    def execute(self, txn: Callable[[TxnContext], None]) -> TxnResult:
        """Run ``txn`` to commit; returns its timing.

        A :class:`TransactionAborted` raised inside the transaction (via
        ``ctx.abort()`` or a business rule) rolls back every write and
        returns an aborted result; any other exception also rolls back
        but propagates (failure injection keeps the database consistent).
        """
        ts = self.db.oracle.next_timestamp()
        ctx = TxnContext(self, ts)
        tel = telemetry.active()
        inj = faults.active()
        txn_name = getattr(txn, "txn_name", None) or getattr(txn, "__name__", "txn")
        injected_abort = inj.enabled and inj.fire(fault_plan.FORCED_ABORT)
        try:
            if injected_abort:
                # Abort storm: concurrency control force-aborts before the
                # transaction body runs; the engine surfaces it like any
                # other abort (rolled back, counted, no crash).
                raise TransactionAborted("injected fault: forced abort storm")
            txn(ctx)
        except TransactionAborted:
            ctx.rollback()
            self.aborted += 1
            if injected_abort:
                inj.detect(fault_plan.FORCED_ABORT)
            if tel.enabled:
                tel.counter("oltp.txn.aborted").inc()
                tel.counter(f"oltp.txn.{txn_name}.aborted").inc()
            return TxnResult(
                ts=ts,
                breakdown=ctx.breakdown,
                rows_read=ctx.rows_read,
                rows_written=0,
                aborted=True,
            )
        except Exception:
            ctx.rollback()
            if tel.enabled:
                tel.counter("oltp.txn.failed").inc()
            raise
        result = ctx.commit()
        if self.durability is not None:
            # Harden the commit: the WAL append (and any checkpoint it
            # triggers) is charged through the same §6.3 flush model as
            # the clflush+barrier above. A SimulatedCrash raised by the
            # crash hooks propagates — a dead process does not roll back.
            result.breakdown.flush += self.durability.log_commit(ts, ctx.ops)
        self.committed += 1
        self.total_time += result.total_time
        self.breakdown = self.breakdown.merge(result.breakdown)
        if tel.enabled:
            tel.counter("oltp.txn.committed").inc()
            tel.counter("oltp.rows_read").inc(result.rows_read)
            tel.counter("oltp.rows_written").inc(result.rows_written)
            tel.histogram(f"oltp.txn.{txn_name}.latency_ns").observe(result.total_time)
            tel.record_span("oltp.txn", result.total_time, {"type": txn_name})
        return result

    # ------------------------------------------------------------------
    # Two-phase commit participant interface
    # ------------------------------------------------------------------
    def prepare(self, txn: Callable[[TxnContext], None]) -> PreparedTxn:
        """Run ``txn``'s body and vote (2PC phase one).

        On success the writes are installed and hardened behind a
        prepare record (§6.3-charged), the context's locks stay held,
        and the returned handle votes yes. A :class:`TransactionAborted`
        inside the body (including the injected abort storm) rolls back
        immediately and votes no — the abort accounting matches
        :meth:`execute` so a no-vote looks exactly like a single-phase
        abort to the stats.
        """
        ts = self.db.oracle.next_timestamp()
        ctx = TxnContext(self, ts)
        tel = telemetry.active()
        inj = faults.active()
        txn_name = getattr(txn, "txn_name", None) or getattr(txn, "__name__", "txn")
        injected_abort = inj.enabled and inj.fire(fault_plan.FORCED_ABORT)
        try:
            if injected_abort:
                raise TransactionAborted("injected fault: forced abort storm")
            txn(ctx)
        except TransactionAborted:
            ctx.rollback()
            self.aborted += 1
            if injected_abort:
                inj.detect(fault_plan.FORCED_ABORT)
            if tel.enabled:
                tel.counter("oltp.txn.aborted").inc()
                tel.counter(f"oltp.txn.{txn_name}.aborted").inc()
            result = TxnResult(
                ts=ts,
                breakdown=ctx.breakdown,
                rows_read=ctx.rows_read,
                rows_written=0,
                aborted=True,
            )
            return PreparedTxn(ctx, txn_name, vote_yes=False, result=result)
        except Exception:
            ctx.rollback()
            if tel.enabled:
                tel.counter("oltp.txn.failed").inc()
            raise
        ctx.prepare()
        return PreparedTxn(ctx, txn_name, vote_yes=True)

    def commit_prepared(self, prepared: PreparedTxn) -> TxnResult:
        """Resolve a yes-voting prepare with a commit (2PC phase two)."""
        if prepared.resolved:
            raise TransactionError("prepared transaction already resolved")
        prepared.resolved = True
        ctx = prepared.ctx
        result = ctx.finalize_commit()
        if self.durability is not None:
            result.breakdown.flush += self.durability.log_commit(ctx.ts, ctx.ops)
        self.committed += 1
        self.total_time += result.total_time
        self.breakdown = self.breakdown.merge(result.breakdown)
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("oltp.txn.committed").inc()
            tel.counter("oltp.rows_read").inc(result.rows_read)
            tel.counter("oltp.rows_written").inc(result.rows_written)
            tel.histogram(
                f"oltp.txn.{prepared.txn_name}.latency_ns"
            ).observe(result.total_time)
            tel.record_span(
                "oltp.txn", result.total_time, {"type": prepared.txn_name}
            )
        prepared.result = result
        return result

    def abort_prepared(self, prepared: PreparedTxn) -> TxnResult:
        """Resolve a yes-voting prepare with a global abort.

        Presumed-abort: no abort record is flushed — the participant
        simply rolls back its installed writes (the prepare-phase work,
        including the prepare record, was still paid for).
        """
        if prepared.resolved:
            raise TransactionError("prepared transaction already resolved")
        prepared.resolved = True
        ctx = prepared.ctx
        ctx.rollback()
        self.aborted += 1
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("oltp.txn.aborted").inc()
            tel.counter(f"oltp.txn.{prepared.txn_name}.aborted").inc()
        result = TxnResult(
            ts=ctx.ts,
            breakdown=ctx.breakdown,
            rows_read=ctx.rows_read,
            rows_written=0,
            aborted=True,
        )
        prepared.result = result
        return result

    def submit(self, txn: Callable[[TxnContext], None]) -> PendingTxn:
        """Accept a transaction for deferred execution (non-blocking).

        Nothing runs until the returned handle's :meth:`PendingTxn.step`
        is called — the serve loop uses this to interleave queued
        transactions with scheduled OLAP batches on one simulated clock.
        """
        return PendingTxn(self, txn)

    @property
    def mean_txn_time(self) -> float:
        """Average committed-transaction latency in ns."""
        return self.total_time / self.committed if self.committed else 0.0
