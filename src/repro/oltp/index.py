"""Hash index (§7.1: "We use the hash index in DBX1000 to speed up the
transaction and snapshotting during analytical queries").

A :class:`HashIndex` maps a key tuple to a row id and models the memory
cost of a probe: one bucket-header access plus one entry access (two
cache lines), growing with chain length under collisions.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional

from repro.errors import TransactionError

__all__ = ["HashIndex", "ProbeResult"]


class ProbeResult:
    """Outcome of one index probe: the row id and the lines touched."""

    __slots__ = ("row_id", "lines")

    def __init__(self, row_id: Optional[int], lines: int) -> None:
        self.row_id = row_id
        self.lines = lines

    @property
    def found(self) -> bool:
        """Whether the key was present."""
        return self.row_id is not None


class HashIndex:
    """A unique hash index over one table."""

    #: Cache lines of a minimal probe: bucket header + entry.
    BASE_PROBE_LINES = 2

    def __init__(self, name: str, num_buckets: int = 4096) -> None:
        if num_buckets <= 0:
            raise TransactionError("num_buckets must be positive")
        self.name = name
        self.num_buckets = num_buckets
        self._map: Dict[Hashable, int] = {}
        self._bucket_sizes: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._map)

    def _bucket(self, key: Hashable) -> int:
        return hash(key) % self.num_buckets

    def insert(self, key: Hashable, row_id: int) -> int:
        """Insert a unique key; returns the lines touched."""
        if key in self._map:
            raise TransactionError(f"index {self.name!r}: duplicate key {key!r}")
        bucket = self._bucket(key)
        self._map[key] = row_id
        self._bucket_sizes[bucket] = self._bucket_sizes.get(bucket, 0) + 1
        return self.BASE_PROBE_LINES

    def probe(self, key: Hashable) -> ProbeResult:
        """Look up a key; cost grows with the bucket's chain length."""
        bucket = self._bucket(key)
        chain = self._bucket_sizes.get(bucket, 0)
        lines = self.BASE_PROBE_LINES + max(0, chain - 1)
        return ProbeResult(self._map.get(key), lines)

    def remove(self, key: Hashable) -> int:
        """Remove a key; returns the lines touched."""
        if key not in self._map:
            raise TransactionError(f"index {self.name!r}: missing key {key!r}")
        bucket = self._bucket(key)
        del self._map[key]
        self._bucket_sizes[bucket] -= 1
        return self.BASE_PROBE_LINES

    def keys(self) -> Iterator[Hashable]:
        """All indexed keys."""
        return iter(self._map)
