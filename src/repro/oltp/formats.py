"""Access-format models for the OLTP cost model (§7.3.1, Fig. 9a).

A transaction's memory cost depends on how many cache lines a row access
touches, which is where row-store (RS), column-store (CS), and PUSHtap's
unified format differ. Each model answers two questions per access:

* how many interleaved cache lines does reading/writing these columns of
  one row cost, and
* how many bytes must the data re-layout function (§6.3) transform —
  non-zero only for the unified format, and only on load / commit.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Protocol, Sequence, Tuple

from repro.core.config import DeviceGeometry
from repro.errors import SchemaError
from repro.format.baseline_formats import ColumnStoreFormat, RowStoreFormat
from repro.format.layout import UnifiedLayout
from repro.format.schema import TableSchema
from repro.units import ceil_div

__all__ = [
    "AccessFormatModel",
    "RowStoreModel",
    "ColumnStoreModel",
    "UnifiedFormatModel",
]

#: Memo key for a column selection: None (full row) or the exact tuple.
_ColsKey = Optional[Tuple[str, ...]]


def _cols_key(columns: Optional[Sequence[str]]) -> _ColsKey:
    return None if columns is None else tuple(columns)


class AccessFormatModel(Protocol):
    """Per-format row access cost interface."""

    name: str

    def lines_for_row(self, table: str, columns: Optional[Sequence[str]] = None) -> int:
        """Cache lines touched by one row access."""
        ...

    def relayout_bytes(self, table: str, columns: Optional[Sequence[str]] = None) -> int:
        """Bytes the data re-layout function must transform (0 if none)."""
        ...


class RowStoreModel:
    """Row-store access costs — the OLTP-ideal baseline."""

    name = "rowstore"

    def __init__(self, schemas: Mapping[str, TableSchema], geometry: DeviceGeometry) -> None:
        self._formats = {n: RowStoreFormat(s) for n, s in schemas.items()}
        self._geometry = geometry
        self._lines: Dict[Tuple[str, _ColsKey], int] = {}

    def lines_for_row(self, table: str, columns: Optional[Sequence[str]] = None) -> int:
        # Line counts are pure in (table, columns); the OLTP hot path asks
        # for the same handful of selections millions of times.
        key = (table, _cols_key(columns))
        lines = self._lines.get(key)
        if lines is None:
            lines = self._lines[key] = self._format(table).lines_per_row_access(
                self._geometry, columns
            )
        return lines

    def relayout_bytes(self, table: str, columns: Optional[Sequence[str]] = None) -> int:
        return 0

    def _format(self, table: str) -> RowStoreFormat:
        try:
            return self._formats[table]
        except KeyError:
            raise SchemaError(f"unknown table {table!r}") from None


class ColumnStoreModel:
    """Column-store access costs — one line per touched column."""

    name = "columnstore"

    def __init__(self, schemas: Mapping[str, TableSchema], geometry: DeviceGeometry) -> None:
        self._formats = {n: ColumnStoreFormat(s) for n, s in schemas.items()}
        self._geometry = geometry
        self._lines: Dict[Tuple[str, _ColsKey], int] = {}

    def lines_for_row(self, table: str, columns: Optional[Sequence[str]] = None) -> int:
        key = (table, _cols_key(columns))
        lines = self._lines.get(key)
        if lines is None:
            lines = self._lines[key] = self._format(table).lines_per_row_access(
                self._geometry, columns
            )
        return lines

    def relayout_bytes(self, table: str, columns: Optional[Sequence[str]] = None) -> int:
        return 0

    def _format(self, table: str) -> ColumnStoreFormat:
        try:
            return self._formats[table]
        except KeyError:
            raise SchemaError(f"unknown table {table!r}") from None


class UnifiedFormatModel:
    """PUSHtap unified-format access costs.

    A row access touches every part containing any accessed column; each
    part costs ``ceil(W / g)`` interleaved lines. Loading or committing a
    row additionally pays the byte-level re-layout of the touched bytes
    (§6.3) — the source of PUSHtap's small OLTP overhead in Fig. 9a.
    """

    name = "unified"

    def __init__(self, layouts: Mapping[str, UnifiedLayout], geometry: DeviceGeometry) -> None:
        self._layouts = dict(layouts)
        self._geometry = geometry
        # Both answers are pure in (table, columns) over an immutable
        # layout, and OLTP asks for the same few selections per table on
        # every access — memoized, they drop from a parts/runs walk to a
        # dict hit (identical values in both perf modes by construction).
        self._lines: Dict[Tuple[str, _ColsKey], int] = {}
        self._relayout: Dict[Tuple[str, _ColsKey], int] = {}

    def layout(self, table: str) -> UnifiedLayout:
        """The table's unified layout."""
        try:
            return self._layouts[table]
        except KeyError:
            raise SchemaError(f"unknown table {table!r}") from None

    def _touched_parts(self, table: str, columns: Optional[Sequence[str]]) -> Sequence[int]:
        layout = self.layout(table)
        if columns is None:
            return [p.index for p in layout.parts]
        parts = set()
        for column in columns:
            for run in layout.column_runs(column):
                parts.add(run.part_index)
        return sorted(parts)

    def lines_for_row(self, table: str, columns: Optional[Sequence[str]] = None) -> int:
        key = (table, _cols_key(columns))
        lines = self._lines.get(key)
        if lines is None:
            layout = self.layout(table)
            g = self._geometry.interleave_granularity
            lines = self._lines[key] = sum(
                ceil_div(layout.parts[p].row_width, g)
                for p in self._touched_parts(table, columns)
            )
        return lines

    def relayout_bytes(self, table: str, columns: Optional[Sequence[str]] = None) -> int:
        key = (table, _cols_key(columns))
        total = self._relayout.get(key)
        if total is None:
            layout = self.layout(table)
            if columns is None:
                total = layout.schema.row_bytes
            else:
                total = 0
                for column in set(columns):
                    total += layout.schema.column(column).width
            self._relayout[key] = total
        return total
