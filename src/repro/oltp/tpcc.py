"""TPC-C transactions: Payment, New-Order, and Delivery (§7.1).

The paper simulates the two transaction types that make up ~90 % of the
TPC-C mix (Payment and New-Order) on a DBx1000-style MVCC engine; this
reproduction adds Delivery as an extension since it exercises the MVCC
delete path and NEWORDER index removal. The :class:`TPCCDriver`
generates parameter sets consistent with the deterministic data
generator's key assignment and produces transaction closures for
:meth:`repro.oltp.engine.OLTPEngine.execute`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import TransactionError
from repro.oltp.engine import TxnContext
from repro.workloads.tpcc_gen import DATE_EPOCH, DATE_HORIZON

__all__ = [
    "PaymentParams",
    "NewOrderParams",
    "DeliveryOrder",
    "DeliveryParams",
    "OrderStatusParams",
    "StockLevelParams",
    "TPCCDriver",
    "FACTORIES",
    "rebuild_transaction",
    "payment",
    "new_order",
    "delivery",
    "order_status",
    "stock_level",
    "INDEX_NAMES",
    "NEW_ORDER_REMOTE_RATE",
    "PAYMENT_REMOTE_RATE",
]

#: TPC-C's nominal remote rates (§2.4.1.5 / §2.5.1.2): ~1 % of New-Order
#: lines are supplied by a remote warehouse; ~15 % of Payments are made
#: at a warehouse other than the customer's home. ``remote_fraction``
#: scales both (0 disables cross-warehouse traffic, 1 is the spec rate).
NEW_ORDER_REMOTE_RATE = 0.01
PAYMENT_REMOTE_RATE = 0.15

#: Index names the transactions expect the database to provide.
INDEX_NAMES = (
    "warehouse_pk",
    "district_pk",
    "customer_pk",
    "item_pk",
    "stock_pk",
    "order_pk",
    "neworder_pk",
    "orderline_pk",
)


@dataclass(frozen=True)
class PaymentParams:
    """Inputs of one Payment transaction.

    ``w_id``/``d_id`` name the warehouse the payment is *made at* (its
    YTD counters absorb the amount); ``c_w_id``/``c_d_id`` name the
    customer's home. They default to the paying warehouse (the ~85 %
    local case); a remote payment sets them to a different warehouse.
    """

    w_id: int
    d_id: int
    c_id: int
    amount: int
    h_date: int
    c_w_id: Optional[int] = None
    c_d_id: Optional[int] = None

    @property
    def customer_w_id(self) -> int:
        """The customer's home warehouse (defaults to the paying one)."""
        return self.w_id if self.c_w_id is None else self.c_w_id

    @property
    def customer_d_id(self) -> int:
        """The customer's home district (defaults to the paying one)."""
        return self.d_id if self.c_d_id is None else self.c_d_id

    @property
    def is_remote(self) -> bool:
        """Whether the payment crosses warehouses."""
        return self.customer_w_id != self.w_id


@dataclass(frozen=True)
class NewOrderParams:
    """Inputs of one New-Order transaction."""

    w_id: int
    d_id: int
    c_id: int
    o_id: int
    entry_d: int
    item_ids: List[int]
    supply_w_ids: List[int]
    quantities: List[int]


def payment(params: PaymentParams) -> Callable[[TxnContext], None]:
    """Build the Payment transaction closure (TPC-C §2.5)."""

    def txn(ctx: TxnContext) -> None:
        w_row = ctx.index_lookup("warehouse_pk", params.w_id)
        warehouse = ctx.read("warehouse", w_row, ["w_ytd", "w_tax"])
        ctx.update("warehouse", w_row, {"w_ytd": warehouse["w_ytd"] + params.amount})

        d_row = ctx.index_lookup("district_pk", (params.w_id, params.d_id))
        district = ctx.read("district", d_row, ["d_ytd", "d_tax"])
        ctx.update("district", d_row, {"d_ytd": district["d_ytd"] + params.amount})

        c_row = ctx.index_lookup(
            "customer_pk",
            (params.customer_w_id, params.customer_d_id, params.c_id),
        )
        customer = ctx.read(
            "customer", c_row, ["c_balance", "c_ytd_payment", "c_payment_cnt"]
        )
        new_balance = max(0, customer["c_balance"] - params.amount)
        ctx.update(
            "customer",
            c_row,
            {
                "c_balance": new_balance,
                "c_ytd_payment": customer["c_ytd_payment"] + params.amount,
                "c_payment_cnt": customer["c_payment_cnt"] + 1,
            },
        )
        ctx.insert(
            "history",
            {
                "h_c_id": params.c_id,
                "h_c_d_id": params.customer_d_id,
                "h_c_w_id": params.customer_w_id,
                "h_d_id": params.d_id,
                "h_w_id": params.w_id,
                "h_date": params.h_date,
                "h_amount": params.amount,
                "h_data": b"payment",
            },
        )

    txn.txn_name = "payment"
    txn.params = params
    return txn


def new_order(params: NewOrderParams) -> Callable[[TxnContext], None]:
    """Build the New-Order transaction closure (TPC-C §2.4)."""
    if not (len(params.item_ids) == len(params.supply_w_ids) == len(params.quantities)):
        raise TransactionError("new_order: item/supply/quantity lengths differ")

    def txn(ctx: TxnContext) -> None:
        w_row = ctx.index_lookup("warehouse_pk", params.w_id)
        ctx.read("warehouse", w_row, ["w_tax"])
        d_row = ctx.index_lookup("district_pk", (params.w_id, params.d_id))
        district = ctx.read("district", d_row, ["d_tax", "d_next_o_id"])
        ctx.update("district", d_row, {"d_next_o_id": district["d_next_o_id"] + 1})
        c_row = ctx.index_lookup(
            "customer_pk", (params.w_id, params.d_id, params.c_id)
        )
        ctx.read("customer", c_row, ["c_discount", "c_credit"])

        order_row = ctx.insert(
            "order",
            {
                "o_id": params.o_id,
                "o_d_id": params.d_id,
                "o_w_id": params.w_id,
                "o_c_id": params.c_id,
                "o_entry_d": params.entry_d,
                "o_carrier_id": 0,
                "o_ol_cnt": len(params.item_ids),
                "o_all_local": int(all(s == params.w_id for s in params.supply_w_ids)),
            },
            index_key=("order_pk", params.o_id),
        )
        del order_row
        ctx.insert(
            "neworder",
            {"no_o_id": params.o_id, "no_d_id": params.d_id, "no_w_id": params.w_id},
            index_key=("neworder_pk", params.o_id),
        )
        for number, (i_id, s_w, qty) in enumerate(
            zip(params.item_ids, params.supply_w_ids, params.quantities), start=1
        ):
            i_row = ctx.index_lookup("item_pk", i_id)
            item = ctx.read("item", i_row, ["i_price"])
            s_row = ctx.index_lookup("stock_pk", (s_w, i_id))
            stock = ctx.read("stock", s_row, ["s_quantity", "s_ytd", "s_order_cnt"])
            new_qty = stock["s_quantity"] - qty
            if new_qty < 10:
                new_qty += 91
            ctx.update(
                "stock",
                s_row,
                {
                    "s_quantity": new_qty,
                    "s_ytd": stock["s_ytd"] + qty,
                    "s_order_cnt": stock["s_order_cnt"] + 1,
                },
            )
            ctx.insert(
                "orderline",
                {
                    "ol_o_id": params.o_id,
                    "ol_d_id": params.d_id,
                    "ol_w_id": params.w_id,
                    "ol_number": number,
                    "ol_i_id": i_id,
                    "ol_supply_w_id": s_w,
                    "ol_delivery_d": params.entry_d,
                    "ol_quantity": qty,
                    "ol_amount": qty * item["i_price"],
                    "ol_dist_info": b"neworder",
                },
                index_key=("orderline_pk", (params.o_id, number)),
            )

    txn.txn_name = "new_order"
    txn.o_id = params.o_id
    txn.params = params
    return txn


@dataclass(frozen=True)
class DeliveryOrder:
    """One undelivered order a Delivery transaction processes."""

    o_id: int
    w_id: int
    d_id: int
    c_id: int
    ol_cnt: int


@dataclass(frozen=True)
class DeliveryParams:
    """Inputs of one Delivery transaction (simplified: a batch of pending
    new orders rather than per-district oldest-order selection)."""

    carrier_id: int
    delivery_d: int
    orders: List[DeliveryOrder]


def delivery(params: DeliveryParams) -> Callable[[TxnContext], None]:
    """Build the Delivery transaction closure (TPC-C §2.7, simplified).

    For each pending order: delete its NEWORDER row (tombstone + index
    removal), stamp the ORDER with the carrier, set every ORDERLINE's
    delivery date, and credit the customer's balance.
    """

    def txn(ctx: TxnContext) -> None:
        for order in params.orders:
            no_row = ctx.index_lookup("neworder_pk", order.o_id)
            ctx.delete("neworder", no_row, index_key=("neworder_pk", order.o_id))
            o_row = ctx.index_lookup("order_pk", order.o_id)
            ctx.read("order", o_row, ["o_c_id", "o_ol_cnt"])
            ctx.update("order", o_row, {"o_carrier_id": params.carrier_id})
            amount = 0
            for number in range(1, order.ol_cnt + 1):
                ol_row = ctx.index_lookup("orderline_pk", (order.o_id, number))
                line = ctx.read("orderline", ol_row, ["ol_amount"])
                amount += line["ol_amount"]
                ctx.update("orderline", ol_row, {"ol_delivery_d": params.delivery_d})
            c_row = ctx.index_lookup(
                "customer_pk", (order.w_id, order.d_id, order.c_id)
            )
            customer = ctx.read("customer", c_row, ["c_balance", "c_delivery_cnt"])
            ctx.update(
                "customer",
                c_row,
                {
                    "c_balance": customer["c_balance"] + amount,
                    "c_delivery_cnt": customer["c_delivery_cnt"] + 1,
                },
            )

    txn.txn_name = "delivery"
    txn.params = params
    return txn


@dataclass(frozen=True)
class OrderStatusParams:
    """Inputs of one Order-Status transaction (read-only)."""

    w_id: int
    d_id: int
    c_id: int
    o_id: int
    ol_cnt: int


def order_status(params: OrderStatusParams) -> Callable[[TxnContext], None]:
    """Build the Order-Status transaction closure (TPC-C §2.6, read-only).

    Reads the customer, their most recent order, and that order's lines.
    """

    def txn(ctx: TxnContext) -> None:
        c_row = ctx.index_lookup(
            "customer_pk", (params.w_id, params.d_id, params.c_id)
        )
        ctx.read("customer", c_row, ["c_balance", "c_first", "c_last"])
        o_row = ctx.index_lookup("order_pk", params.o_id)
        ctx.read("order", o_row, ["o_entry_d", "o_carrier_id"])
        # All the order's lines in one batched read: the index probes
        # keep their sequential order (only they touch the index phase),
        # and read_many charges per line in the same order a per-line
        # loop would — identical breakdown, batched MVCC resolution.
        ol_rows = [
            ctx.index_lookup("orderline_pk", (params.o_id, number))
            for number in range(1, params.ol_cnt + 1)
        ]
        ctx.read_many(
            "orderline",
            ol_rows,
            ["ol_i_id", "ol_supply_w_id", "ol_quantity", "ol_amount", "ol_delivery_d"],
        )

    txn.txn_name = "order_status"
    txn.params = params
    return txn


@dataclass(frozen=True)
class StockLevelParams:
    """Inputs of one Stock-Level transaction (read-only, simplified)."""

    w_id: int
    d_id: int
    threshold: int
    recent_orders: List[DeliveryOrder]


def stock_level(params: StockLevelParams) -> Callable[[TxnContext], None]:
    """Build the Stock-Level transaction closure (TPC-C §2.8, simplified).

    Counts distinct items of the district's recent orders whose stock
    quantity is below the threshold. The recent-order window comes from
    the driver (we have no ordered secondary index over orders).
    """

    def txn(ctx: TxnContext) -> None:
        d_row = ctx.index_lookup("district_pk", (params.w_id, params.d_id))
        ctx.read("district", d_row, ["d_next_o_id"])
        low = set()
        for order in params.recent_orders:
            for number in range(1, order.ol_cnt + 1):
                ol_row = ctx.index_lookup("orderline_pk", (order.o_id, number))
                line = ctx.read("orderline", ol_row, ["ol_i_id", "ol_supply_w_id"])
                s_row = ctx.index_lookup(
                    "stock_pk", (line["ol_supply_w_id"], line["ol_i_id"])
                )
                stock = ctx.read("stock", s_row, ["s_quantity"])
                if stock["s_quantity"] < params.threshold:
                    low.add(line["ol_i_id"])
        ctx.result = len(low)

    txn.txn_name = "stock_level"
    txn.params = params
    return txn


#: Transaction factories by name — the parallel execution layer ships
#: ``(txn_name, params)`` pairs to shard workers (closures don't pickle)
#: and rebuilds the closure there.
FACTORIES: Dict[str, Callable] = {
    "payment": payment,
    "new_order": new_order,
    "delivery": delivery,
    "order_status": order_status,
    "stock_level": stock_level,
}


def rebuild_transaction(txn_name: str, params) -> Callable[[TxnContext], None]:
    """Rebuild a transaction closure from its name and frozen params."""
    factory = FACTORIES.get(txn_name)
    if factory is None:
        raise TransactionError(f"unknown transaction {txn_name!r}")
    return factory(params)


class TPCCDriver:
    """Generates parameter sets consistent with the data generator.

    ``payment_fraction`` controls the Payment/New-Order mix (TPC-C's
    nominal mix is roughly even between them once the other three
    transaction types are excluded — the paper simulates exactly these
    two, §7.1). ``delivery_fraction`` optionally adds Delivery
    transactions draining the orders this driver previously generated.

    ``remote_fraction`` scales TPC-C's nominal remote-warehouse rates
    (:data:`NEW_ORDER_REMOTE_RATE` per order line,
    :data:`PAYMENT_REMOTE_RATE` per payment): 1.0 is the spec mix, 0
    disables cross-warehouse traffic entirely. Remote decisions draw
    from a *separate* seed-derived stream, so changing the fraction
    never perturbs the main parameter stream — and with a single
    warehouse the stream is never consulted at all, which keeps
    single-warehouse runs bit-identical across every fraction.

    ``home_warehouses`` optionally pins the driver's customers to a
    subset of warehouses (a cluster shard's residents); remote lines
    and payments may still reach any warehouse. ``None`` (or the full
    set) means no affinity and preserves the legacy customer draw.
    """

    def __init__(
        self,
        counts: Dict[str, int],
        seed: int = 11,
        payment_fraction: float = 0.5,
        delivery_fraction: float = 0.0,
        max_order_lines: int = 15,
        delivery_batch: int = 5,
        o_id_offset: int = 0,
        o_id_stride: int = 1,
        remote_fraction: float = 1.0,
        home_warehouses: Optional[List[int]] = None,
    ) -> None:
        if not 0.0 <= payment_fraction <= 1.0:
            raise TransactionError("payment_fraction must be in [0, 1]")
        if not 0.0 <= delivery_fraction <= 1.0 - payment_fraction:
            raise TransactionError(
                "delivery_fraction must fit in the remaining mix share"
            )
        if o_id_stride < 1 or not 0 <= o_id_offset < o_id_stride:
            raise TransactionError(
                "o_id_offset must be in [0, o_id_stride) with stride >= 1"
            )
        max_rate = max(NEW_ORDER_REMOTE_RATE, PAYMENT_REMOTE_RATE)
        if remote_fraction < 0.0 or remote_fraction * max_rate > 1.0:
            raise TransactionError(
                "remote_fraction must be >= 0 and keep the scaled remote "
                f"rates within [0, 1] (max {1.0 / max_rate:.3f})"
            )
        self.counts = dict(counts)
        self.rng = np.random.RandomState(seed)
        self.payment_fraction = payment_fraction
        self.delivery_fraction = delivery_fraction
        self.remote_fraction = float(remote_fraction)
        self.max_order_lines = max_order_lines
        self.delivery_batch = delivery_batch
        # Remote decisions get their own stream (CRC-32 derivation, the
        # tpcc_gen idiom) so the main parameter stream stays put.
        self._remote_rng = np.random.RandomState(
            (int(seed) ^ zlib.crc32(b"remote")) & 0x7FFF_FFFF
        )
        warehouses = self.counts["warehouse"]
        self._home_warehouses: Optional[List[int]] = None
        self._home_cumulative: List[int] = []
        if home_warehouses is not None:
            homes = sorted(set(int(w) for w in home_warehouses))
            if not homes:
                raise TransactionError("home_warehouses must not be empty")
            if homes[0] < 1 or homes[-1] > warehouses:
                raise TransactionError(
                    f"home_warehouses must be within [1, {warehouses}]"
                )
            if len(homes) < warehouses:
                # A proper subset changes the customer draw; the full set
                # keeps the legacy single-draw path (bit-compatible).
                self._home_warehouses = homes
                total = 0
                for w in homes:
                    total += self._customers_at(w)
                    self._home_cumulative.append(total)
        #: Remote-traffic observability (surfaced in WorkloadReport).
        self.payments = 0
        self.remote_payments = 0
        self.new_orders = 0
        self.remote_new_orders = 0
        self.order_lines = 0
        self.remote_order_lines = 0
        self._undelivered: List[DeliveryOrder] = []
        #: Orders created by this driver (known exact line counts), kept
        #: for the read-only Order-Status / Stock-Level transactions.
        self._recent_orders: List[DeliveryOrder] = []
        # New order ids must not collide with any preloaded order or
        # new-order key (the generator assigns 1..N in both tables).
        # Offset/stride give concurrent drivers (one per serving tenant)
        # disjoint id spaces over the same database.
        self._o_id_stride = o_id_stride
        self._next_o_id = max(counts["order"], counts["neworder"]) + 1 + o_id_offset

    # -- key derivation matching repro.workloads.tpcc_gen ----------------
    def _customers_at(self, w: int) -> int:
        """Customers whose home is warehouse ``w`` (generator assignment)."""
        total = self.counts["customer"]
        warehouses = self.counts["warehouse"]
        if w > total:
            return 0
        return (total - w) // warehouses + 1

    def _random_customer(self) -> tuple:
        warehouses = self.counts["warehouse"]
        if self._home_warehouses is None:
            i = int(self.rng.randint(0, self.counts["customer"]))
        else:
            # Customer i lives at warehouse i % W + 1, so a warehouse's
            # residents are an arithmetic progression; one draw over the
            # affinity set's total population picks uniformly among them.
            r = int(self.rng.randint(0, self._home_cumulative[-1]))
            prev = 0
            for w, acc in zip(self._home_warehouses, self._home_cumulative):
                if r < acc:
                    i = (w - 1) + (r - prev) * warehouses
                    break
                prev = acc
        w = i % warehouses + 1
        d = i % 10 + 1
        return w, d, i + 1

    def _random_item(self) -> int:
        return int(self.rng.randint(1, self.counts["item"] + 1))

    def _local_item(self, w: int) -> int:
        """A random item *supplied by* warehouse ``w`` (the generator
        stocks item j only at warehouse (j-1) % W + 1)."""
        total = self.counts["item"]
        warehouses = self.counts["warehouse"]
        if w > total:
            return self._random_item()
        n = (total - w) // warehouses + 1
        k = int(self.rng.randint(0, n))
        return w + k * warehouses

    def _remote_warehouse(self, home: int) -> int:
        """A random warehouse other than ``home`` (remote stream)."""
        warehouses = self.counts["warehouse"]
        k = int(self._remote_rng.randint(1, warehouses))
        return (home - 1 + k) % warehouses + 1

    def _supply_warehouse(self, i_id: int) -> int:
        return (i_id - 1) % self.counts["warehouse"] + 1

    # -- parameter generation --------------------------------------------
    def next_payment(self) -> PaymentParams:
        """Generate one Payment parameter set."""
        w, d, c = self._random_customer()
        pay_w, pay_d = w, d
        c_w: Optional[int] = None
        c_d: Optional[int] = None
        p_remote = PAYMENT_REMOTE_RATE * self.remote_fraction
        if (
            self.counts["warehouse"] > 1
            and p_remote > 0.0
            and self._remote_rng.random_sample() < p_remote
        ):
            pay_w = self._remote_warehouse(w)
            pay_d = int(self._remote_rng.randint(1, 11))
            c_w, c_d = w, d
            self.remote_payments += 1
        self.payments += 1
        return PaymentParams(
            w_id=pay_w,
            d_id=pay_d,
            c_id=c,
            amount=int(self.rng.randint(1, 5000)),
            h_date=int(self.rng.randint(DATE_EPOCH, DATE_HORIZON)),
            c_w_id=c_w,
            c_d_id=c_d,
        )

    def next_new_order(self) -> NewOrderParams:
        """Generate one New-Order parameter set."""
        w, d, c = self._random_customer()
        ol_cnt = int(self.rng.randint(5, self.max_order_lines + 1))
        if self.counts["warehouse"] <= 1:
            # Single warehouse: every item is home-supplied; keep the
            # legacy draw sequence exactly (seeded baselines depend on it).
            items = sorted({self._random_item() for _ in range(ol_cnt)})
        else:
            p_remote = NEW_ORDER_REMOTE_RATE * self.remote_fraction
            chosen = set()
            for _ in range(ol_cnt):
                supply = w
                if p_remote > 0.0 and self._remote_rng.random_sample() < p_remote:
                    supply = self._remote_warehouse(w)
                chosen.add(self._local_item(supply))
            items = sorted(chosen)
        o_id = self._next_o_id
        self._next_o_id += self._o_id_stride
        supply_w_ids = [self._supply_warehouse(i) for i in items]
        params = NewOrderParams(
            w_id=w,
            d_id=d,
            c_id=c,
            o_id=o_id,
            entry_d=int(self.rng.randint(DATE_EPOCH, DATE_HORIZON)),
            item_ids=items,
            supply_w_ids=supply_w_ids,
            quantities=[int(self.rng.randint(1, 11)) for _ in items],
        )
        remote_lines = sum(1 for s in supply_w_ids if s != w)
        self.new_orders += 1
        self.order_lines += len(items)
        self.remote_order_lines += remote_lines
        if remote_lines:
            self.remote_new_orders += 1
        record = DeliveryOrder(o_id=o_id, w_id=w, d_id=d, c_id=c, ol_cnt=len(items))
        self._undelivered.append(record)
        self._recent_orders.append(record)
        if len(self._recent_orders) > 100:
            self._recent_orders.pop(0)
        return params

    def next_order_status(self) -> Optional[OrderStatusParams]:
        """Generate an Order-Status over an order this driver created."""
        if not self._recent_orders:
            return None
        order = self._recent_orders[int(self.rng.randint(0, len(self._recent_orders)))]
        return OrderStatusParams(
            w_id=order.w_id,
            d_id=order.d_id,
            c_id=order.c_id,
            o_id=order.o_id,
            ol_cnt=order.ol_cnt,
        )

    def next_stock_level(self, window: int = 5) -> Optional[StockLevelParams]:
        """Generate a Stock-Level over this driver's most recent orders."""
        if not self._recent_orders:
            return None
        recent = self._recent_orders[-window:]
        return StockLevelParams(
            w_id=recent[-1].w_id,
            d_id=recent[-1].d_id,
            threshold=int(self.rng.randint(10, 60)),
            recent_orders=recent,
        )

    def next_delivery(self) -> Optional[DeliveryParams]:
        """Generate a Delivery over pending new orders (None if none)."""
        if not self._undelivered:
            return None
        batch = self._undelivered[: self.delivery_batch]
        del self._undelivered[: len(batch)]
        return DeliveryParams(
            carrier_id=int(self.rng.randint(1, 11)),
            delivery_d=int(self.rng.randint(DATE_EPOCH, DATE_HORIZON)),
            orders=batch,
        )

    @property
    def pending_deliveries(self) -> int:
        """New orders generated by this driver but not yet delivered."""
        return len(self._undelivered)

    def note_abort(self, txn: Callable[[TxnContext], None]) -> None:
        """Forget bookkeeping for a transaction that aborted.

        A New-Order that rolled back never created its ORDER/NEWORDER
        rows, so the driver must not route a later Delivery (or
        Order-Status / Stock-Level) at its order id — those lookups
        would fail on keys that were never inserted.
        """
        o_id = getattr(txn, "o_id", None)
        if o_id is None:
            return
        self._undelivered = [o for o in self._undelivered if o.o_id != o_id]
        self._recent_orders = [o for o in self._recent_orders if o.o_id != o_id]

    def next_transaction(self) -> Callable[[TxnContext], None]:
        """Generate the next transaction of the mix."""
        draw = self.rng.random_sample()
        if draw < self.payment_fraction:
            return payment(self.next_payment())
        if draw < self.payment_fraction + self.delivery_fraction:
            params = self.next_delivery()
            if params is not None:
                return delivery(params)
        return new_order(self.next_new_order())
