"""Analytic DRAM timing model.

The paper evaluates on a cycle-level simulator (ramulator-pim + Ramulator2).
This module substitutes an analytic model built from the same Table 1 timing
parameters. It captures the first-order effects the paper's figures depend
on: burst time, row-buffer hits vs. misses vs. conflicts, refresh
utilization loss, and streaming vs. random access cost.

Two access patterns are modelled:

* :func:`stream_time` — a sequential scan of contiguous bytes inside one
  device/bank (the PIM unit's IDE access pattern).
* :class:`BankTimingModel` — per-access latency with explicit row-buffer
  state (used for CPU-side OLTP accesses, which are mostly random).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DRAMTimings, DeviceGeometry
from repro.units import ceil_div

__all__ = [
    "AccessKind",
    "AccessStats",
    "BankTimingModel",
    "stream_time",
    "random_line_time",
    "effective_stream_bandwidth",
]


class AccessKind:
    """Row-buffer outcome classification for one access."""

    HIT = "hit"
    MISS = "miss"
    CONFLICT = "conflict"


@dataclass
class AccessStats:
    """Counters accumulated by :class:`BankTimingModel`."""

    hits: int = 0
    misses: int = 0
    conflicts: int = 0
    total_time: float = 0.0
    bytes_transferred: int = 0

    @property
    def accesses(self) -> int:
        """Total number of accesses recorded."""
        return self.hits + self.misses + self.conflicts

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit the open row buffer."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "AccessStats") -> None:
        """Accumulate another stats object into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.conflicts += other.conflicts
        self.total_time += other.total_time
        self.bytes_transferred += other.bytes_transferred


@dataclass
class BankTimingModel:
    """Row-buffer-aware latency model for a single bank.

    Tracks which DRAM row is currently open and classifies each access as a
    hit, miss (bank idle), or conflict (different row open). The caller
    supplies the DRAM row index, typically ``byte_address //
    row_buffer_bytes``.
    """

    timings: DRAMTimings
    open_row: int = -1
    stats: AccessStats = field(default_factory=AccessStats)

    def access(self, row: int, bytes_transferred: int = 64, write: bool = False) -> float:
        """Record one access to ``row`` and return its latency in ns."""
        if row == self.open_row:
            latency = self.timings.row_hit_read_latency()
            self.stats.hits += 1
        elif self.open_row < 0:
            latency = self.timings.row_miss_read_latency()
            self.stats.misses += 1
        else:
            latency = self.timings.row_conflict_read_latency()
            self.stats.conflicts += 1
        if write:
            latency += self.timings.tWR - self.timings.tBURST
            latency = max(latency, self.timings.tBURST)
        self.open_row = row
        self.stats.total_time += latency
        self.stats.bytes_transferred += bytes_transferred
        return latency

    def reset(self) -> None:
        """Close the row buffer (e.g. after a refresh or mode switch)."""
        self.open_row = -1


def stream_time(
    num_bytes: int,
    timings: DRAMTimings,
    geometry: DeviceGeometry,
    access_granularity: int = 8,
) -> float:
    """Time for one PIM unit to stream ``num_bytes`` from its local bank.

    Sequential accesses at ``access_granularity`` pipeline at ``tBURST``
    each; one activate+precharge (tRCD + tRP) is paid per row-buffer's
    worth of data; the refresh penalty inflates the total.
    """
    if num_bytes <= 0:
        return 0.0
    bursts = ceil_div(num_bytes, access_granularity)
    row_activations = ceil_div(num_bytes, geometry.row_buffer_bytes)
    raw = bursts * timings.tBURST + row_activations * (timings.tRCD + timings.tRP)
    return raw * (1.0 + timings.refresh_utilization_penalty())


def random_line_time(num_lines: int, timings: DRAMTimings, hit_rate: float = 0.0) -> float:
    """Time for ``num_lines`` random cache-line accesses to one channel.

    ``hit_rate`` is the expected row-buffer hit rate; random OLTP traffic
    is conflict-dominated so the default assumes no hits.
    """
    if num_lines <= 0:
        return 0.0
    hit = timings.row_hit_read_latency()
    conflict = timings.row_conflict_read_latency()
    per_line = hit_rate * hit + (1.0 - hit_rate) * conflict
    return num_lines * per_line * (1.0 + timings.refresh_utilization_penalty())


def effective_stream_bandwidth(
    timings: DRAMTimings,
    geometry: DeviceGeometry,
    access_granularity: int = 8,
) -> float:
    """Peak streaming bandwidth of one device in bytes/ns."""
    probe = geometry.row_buffer_bytes * 16
    return probe / stream_time(probe, timings, geometry, access_granularity)
