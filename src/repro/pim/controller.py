"""Memory controller models (§6.1, Fig. 7a).

Two controller variants are modelled:

* :class:`OriginalController` — the commercial general-purpose PIM
  architecture: to offload a task the CPU messages every PIM unit
  individually and then polls each until done (tens of microseconds across
  a server, §2.1), and DRAM banks stay locked for the whole offload.
* :class:`PushTapController` — the paper's extension: a *scheduler*
  recognizes launch/poll requests disguised as accesses to a special
  physical address and broadcasts to the units itself; a *polling module*
  polls the units and answers the CPU's poll read. Bank control is handed
  over only for ``LS``/``Defragment`` operations, so compute phases run
  concurrently with normal CPU access.

Both variants expose the same interface, so the two-phase executor
(:mod:`repro.pim.executor`) can run on either and Fig. 12b falls out of
swapping the controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.errors import ProtocolError
from repro.faults import injector as faults
from repro.faults import plan as fault_plan
from repro.pim.pim_unit import PIMUnit
from repro.pim.requests import LaunchRequest, decode_launch
from repro.telemetry import registry as telemetry

__all__ = [
    "ControlCost",
    "ControllerStats",
    "OriginalController",
    "PushTapController",
    "SPECIAL_ADDRESS",
]

#: Default special physical address chosen from the unused DRAM range
#: (preconfigured at boot, §6.1).
SPECIAL_ADDRESS = 0xFFFF_F000


@dataclass(frozen=True)
class ControlCost:
    """Cost of one control interaction with the PIM units.

    ``cpu_time`` is time the CPU itself spends issuing/receiving control
    traffic; ``handover_time`` is the bank-control mode switch paid before
    PIM units may touch DRAM (zero for WRAM-only compute phases under
    PUSHtap).
    """

    cpu_time: float
    handover_time: float

    @property
    def total(self) -> float:
        """Total control latency on the critical path."""
        return self.cpu_time + self.handover_time


@dataclass
class ControllerStats:
    """Counters accumulated by a controller."""

    launches: int = 0
    polls: int = 0
    handovers: int = 0
    control_time: float = 0.0
    #: Mode batches opened via :meth:`_ControllerBase.begin_mode_batch`.
    mode_batches: int = 0
    #: Per-launch bank handovers skipped because a mode batch held the
    #: banks in PIM mode already (the amortisation the serve scheduler
    #: exploits when it batches OLAP queries).
    handovers_saved: int = 0


class _ControllerBase:
    """Shared bookkeeping of both controller variants."""

    #: Whether DRAM banks stay locked while PIM units compute.
    locks_banks_during_compute: bool = True

    def __init__(self, config: SystemConfig, units: Sequence[PIMUnit]) -> None:
        self.config = config
        self.units: List[PIMUnit] = list(units)
        self.stats = ControllerStats()
        #: Whether the most recent launch() actually reached the units.
        #: Fault injection can make a launch vanish (dropped write) or
        #: arrive garbled; the caller must then retry the launch.
        self.last_launch_accepted = True
        #: Hook name of the fault that rejected the last launch, if any.
        self.last_launch_fault: Optional[str] = None
        #: Whether the most recent poll() reported all units done. Fault
        #: injection can deliver "not done" a few extra times.
        self.last_poll_done = True
        self._not_done_polls = 0

    @property
    def num_units(self) -> int:
        """Number of PIM units under this controller."""
        return len(self.units)

    @property
    def num_ranks(self) -> int:
        """Number of PIM ranks under this controller."""
        units_per_rank = self.config.pim.units_per_rank
        return max(1, -(-self.num_units // units_per_rank))

    def _lock_banks(self, locked: bool) -> None:
        for unit in self.units:
            unit.bank.locked = locked

    def begin_offload(self) -> ControlCost:
        """Start one offload (a whole multi-phase operation).

        The original architecture pays its bank handover here, once;
        PUSHtap hands over per DRAM-touching launch instead, so the base
        implementation is free.
        """
        return ControlCost(0.0, 0.0)

    # ------------------------------------------------------------------
    # Mode-switch batching (serve-layer scheduler hook)
    # ------------------------------------------------------------------
    #: Whether a mode batch currently holds the banks in PIM mode.
    mode_batch_active: bool = False

    def begin_mode_batch(self) -> ControlCost:
        """Hold PIM-mode bank control open across several offloads.

        The serve scheduler opens a mode batch before running a queued
        batch of OLAP queries: the banks switch into PIM mode once, the
        queries' DRAM-touching launches inside the batch skip the
        per-launch handover, and :meth:`end_mode_batch` switches back.
        The base implementation is a no-op (subclasses model the cost).
        """
        return ControlCost(0.0, 0.0)

    def end_mode_batch(self) -> ControlCost:
        """Close the mode batch and return bank control to the CPU."""
        return ControlCost(0.0, 0.0)

    def end_offload(self) -> ControlCost:
        """Finish one offload; releases banks held across its phases."""
        return ControlCost(0.0, 0.0)

    def launch(self, request: LaunchRequest) -> ControlCost:
        """Issue a launch; returns its control cost."""
        raise NotImplementedError

    def poll(self) -> ControlCost:
        """Poll until all units are finished; returns its control cost."""
        raise NotImplementedError

    def finish(self, request: LaunchRequest) -> None:
        """Mark the operation finished; release banks when appropriate."""
        self._lock_banks(False)

    def _record(self, kind: str, cost: ControlCost) -> None:
        """Mirror one control interaction into the telemetry registry."""
        tel = telemetry.active()
        if tel.enabled:
            tel.counter(f"pim.controller.{kind}").inc()
            if cost.total:
                tel.record_span(
                    "pim.control", cost.total, {"kind": kind, "cpu_time": cost.cpu_time}
                )

    # ------------------------------------------------------------------
    # Fault injection (control-path anomalies)
    # ------------------------------------------------------------------
    def _injected_launch_fault(self, request: LaunchRequest) -> Optional[str]:
        """Whether this launch is lost in flight; returns the hook name.

        A *dropped* launch never reaches the scheduler at all; a
        *garbled* one arrives with a corrupted Fig. 7b encoding, which
        the scheduler rejects (detected at the controller). Either way
        the operation is not armed and the CPU must re-issue it.
        """
        inj = faults.active()
        if not inj.enabled:
            return None
        if inj.fire(fault_plan.DROP_LAUNCH):
            return fault_plan.DROP_LAUNCH
        if inj.fire(fault_plan.GARBLE_LAUNCH):
            # Corrupt the op-type byte and confirm the scheduler's decode
            # path rejects the payload — the detection is real, not assumed.
            payload = bytearray(request.encode())
            payload[0] ^= 0xFF
            try:
                decode_launch(bytes(payload))
            except ProtocolError:
                inj.detect(fault_plan.GARBLE_LAUNCH)
            return fault_plan.GARBLE_LAUNCH
        return None

    def _poll_reports_done(self) -> bool:
        """Consult fault injection: does this poll report all-done?

        A :data:`~repro.faults.plan.POLL_NOT_DONE` fault makes the
        polling module answer "not done" for 1–3 extra polls, forcing
        the CPU into its retry-with-backoff loop.
        """
        if self._not_done_polls > 0:
            self._not_done_polls -= 1
            return False
        inj = faults.active()
        if inj.enabled and inj.fire(fault_plan.POLL_NOT_DONE):
            self._not_done_polls = inj.draw_int(fault_plan.POLL_NOT_DONE, 1, 3) - 1
            return False
        return True


class OriginalController(_ControllerBase):
    """The unmodified general-purpose PIM controller (§2.1).

    Offloading hands over every rank's banks *once*, messages every unit
    per launch, and keeps the banks locked until the whole offload ends,
    regardless of whether the units are loading from DRAM or computing
    from WRAM (§2.1). Per-phase launches therefore pay messaging only —
    the mode switch is not re-charged phase by phase.
    """

    locks_banks_during_compute = True

    def __init__(self, config: SystemConfig, units: Sequence[PIMUnit]) -> None:
        super().__init__(config, units)
        self._offload_active = False

    def begin_mode_batch(self) -> ControlCost:
        """Open one offload window spanning several operations.

        The original architecture already locks banks per offload;
        batching maps onto holding that offload open, so consecutive
        operations inside the batch skip their per-offload handover.
        """
        self.mode_batch_active = True
        self.stats.mode_batches += 1
        cost = self.begin_offload()
        self._record("mode_batches", cost)
        return cost

    def end_mode_batch(self) -> ControlCost:
        """Release the batch's offload window (and the banks)."""
        self.mode_batch_active = False
        return self.end_offload()

    def begin_offload(self) -> ControlCost:
        """Hand over bank control for the whole offload (idempotent)."""
        if self._offload_active:
            if self.mode_batch_active:
                # This operation's handover is absorbed by the batch.
                self.stats.handovers_saved += 1
                tel = telemetry.active()
                if tel.enabled:
                    tel.counter("pim.controller.handovers_saved").inc()
            return ControlCost(0.0, 0.0)
        self._offload_active = True
        # Handover is paid per rank, serially (0.2 us per rank, §7.1).
        handover = self.config.mode_switch_latency * self.num_ranks
        self._lock_banks(True)
        self.stats.handovers += 1
        self.stats.control_time += handover
        cost = ControlCost(0.0, handover)
        self._record("handovers", cost)
        return cost

    def end_offload(self) -> ControlCost:
        """Return bank control to the CPU after the offload's last poll.

        While a mode batch is open the banks stay handed over — the
        batch (not the individual operation) owns the offload window.
        """
        if not self._offload_active or self.mode_batch_active:
            return ControlCost(0.0, 0.0)
        self._offload_active = False
        self._lock_banks(False)
        return ControlCost(0.0, 0.0)

    def launch(self, request: LaunchRequest) -> ControlCost:
        # A bare launch outside an explicit offload opens one, so the
        # handover is still charged (exactly once) and banks lock.
        begin = self.begin_offload()
        cpu_time = self.num_units * self.config.unit_message_latency
        self.last_launch_fault = self._injected_launch_fault(request)
        self.last_launch_accepted = self.last_launch_fault is None
        if self.last_launch_accepted:
            inj = faults.active()
            if inj.enabled and inj.fire(fault_plan.DUPLICATE_LAUNCH):
                # One unit receives its message twice; re-delivery to an
                # idle unit is detected and ignored, costing one message.
                inj.detect(fault_plan.DUPLICATE_LAUNCH)
                cpu_time += self.config.unit_message_latency
        self.stats.launches += 1
        self.stats.control_time += cpu_time
        cost = ControlCost(cpu_time, begin.handover_time)
        self._record("launches", cost)
        return cost

    def poll(self) -> ControlCost:
        cpu_time = self.num_units * self.config.unit_message_latency
        self.last_poll_done = self._poll_reports_done()
        self.stats.polls += 1
        self.stats.control_time += cpu_time
        cost = ControlCost(cpu_time, 0.0)
        self._record("polls", cost)
        return cost

    def finish(self, request: LaunchRequest) -> None:
        """Phase end: banks stay locked until :meth:`end_offload`."""
        if not self._offload_active:
            self._lock_banks(False)


class PushTapController(_ControllerBase):
    """PUSHtap's extended controller: scheduler + polling module (§6.1)."""

    locks_banks_during_compute = False

    def __init__(
        self,
        config: SystemConfig,
        units: Sequence[PIMUnit],
        special_address: int = SPECIAL_ADDRESS,
    ) -> None:
        super().__init__(config, units)
        self.special_address = special_address
        self._pending: Optional[LaunchRequest] = None

    # ------------------------------------------------------------------
    # The disguised-memory-access interface
    # ------------------------------------------------------------------
    def is_special(self, addr: int) -> bool:
        """Whether an access address targets the control interface."""
        return addr == self.special_address

    def memory_write(self, addr: int, payload: bytes) -> Optional[ControlCost]:
        """A CPU memory write; launches if it hits the special address."""
        if not self.is_special(addr):
            return None
        return self.launch(decode_launch(payload))

    def memory_read(self, addr: int) -> Optional[ControlCost]:
        """A CPU memory read; polls if it hits the special address."""
        if not self.is_special(addr):
            return None
        return self.poll()

    # ------------------------------------------------------------------
    # Mode-switch batching (serve-layer scheduler hook)
    # ------------------------------------------------------------------
    def begin_mode_batch(self) -> ControlCost:
        """Switch the banks into PIM mode once for a batch of offloads.

        Inside the batch, ``LS``/``Defragment`` launches find the banks
        already handed over and skip the per-launch mode switch — the
        amortisation the serve scheduler's ``batched`` policy buys.
        Idempotent while a batch is already open.
        """
        if self.mode_batch_active:
            return ControlCost(0.0, 0.0)
        self.mode_batch_active = True
        handover = self.config.mode_switch_latency * self.num_ranks
        self._lock_banks(True)
        self.stats.handovers += 1
        self.stats.mode_batches += 1
        self.stats.control_time += handover
        cost = ControlCost(0.0, handover)
        self._record("mode_batches", cost)
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("pim.controller.handovers").inc()
        return cost

    def end_mode_batch(self) -> ControlCost:
        """Return bank control to the CPU (free, like a normal finish)."""
        if not self.mode_batch_active:
            return ControlCost(0.0, 0.0)
        self.mode_batch_active = False
        self._lock_banks(False)
        return ControlCost(0.0, 0.0)

    # ------------------------------------------------------------------
    # Scheduler / polling module behaviour
    # ------------------------------------------------------------------
    def launch(self, request: LaunchRequest) -> ControlCost:
        """Scheduler path: one request, controller-side broadcast.

        Bank control is handed over only when the operation accesses DRAM
        (``LS``/``Defragment``); compute operations leave banks available
        to the CPU.
        """
        if self._pending is not None:
            raise ProtocolError("launch while a previous operation is still pending")
        cpu_time = self.config.controller_request_latency
        self.last_launch_fault = self._injected_launch_fault(request)
        self.last_launch_accepted = self.last_launch_fault is None
        if not self.last_launch_accepted:
            # The disguised write was lost or rejected: nothing is armed,
            # no banks are handed over; the CPU still paid the access.
            self.stats.launches += 1
            self.stats.control_time += cpu_time
            cost = ControlCost(cpu_time, 0.0)
            self._record("launches", cost)
            return cost
        handover = 0.0
        if request.op.needs_bank_handover:
            if self.mode_batch_active:
                # The open mode batch already holds the banks in PIM
                # mode; this launch's mode switch is amortised away.
                self.stats.handovers_saved += 1
                tel = telemetry.active()
                if tel.enabled:
                    tel.counter("pim.controller.handovers_saved").inc()
            else:
                handover = self.config.mode_switch_latency * self.num_ranks
                self._lock_banks(True)
                self.stats.handovers += 1
        self._pending = request
        inj = faults.active()
        if inj.enabled and inj.fire(fault_plan.DUPLICATE_LAUNCH):
            # The scheduler sees the same disguised write twice; the
            # duplicate matches the pending request and is dropped —
            # exactly the lost/duplicated-pending check the invariant
            # checker asserts — at the cost of one more request.
            inj.detect(fault_plan.DUPLICATE_LAUNCH)
            cpu_time += self.config.controller_request_latency
        self.stats.launches += 1
        self.stats.control_time += cpu_time + handover
        cost = ControlCost(cpu_time, handover)
        self._record("launches", cost)
        if handover:
            telemetry.active().counter("pim.controller.handovers").inc()
        return cost

    def poll(self) -> ControlCost:
        """Polling-module path: one disguised read answers the CPU."""
        cpu_time = self.config.controller_request_latency
        self.last_poll_done = self._poll_reports_done()
        self.stats.polls += 1
        self.stats.control_time += cpu_time
        cost = ControlCost(cpu_time, 0.0)
        self._record("polls", cost)
        return cost

    def finish(self, request: LaunchRequest) -> None:
        """Complete the pending operation and release any locked banks.

        ``request`` must be the *actual* pending request, not merely one
        with the same op type — finishing a different request of the same
        type is a protocol violation and raises :class:`ProtocolError`.
        """
        # Compare canonical encodings: omitted fields default to 0, so a
        # decoded request equals the literal it was encoded from.
        if self._pending is None or self._pending.encode() != request.encode():
            raise ProtocolError("finish does not match the pending request")
        self._pending = None
        if request.op.needs_bank_handover and not self.mode_batch_active:
            self._lock_banks(False)

    @property
    def pending(self) -> Optional[LaunchRequest]:
        """The operation currently executing, if any."""
        return self._pending
