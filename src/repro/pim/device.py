"""Functional model of DRAM devices and banks.

A :class:`Device` is one DRAM chip holding a flat byte array, partitioned
into :class:`Bank` views. PIM units attach to banks (one unit per bank in
the UPMEM-like configuration) and access them locally — the IDE dimension
of the paper's two-dimensional access.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import MemoryError_

__all__ = ["Bank", "Device"]


class Bank:
    """A contiguous byte range of one device, accessible by one PIM unit.

    Banks can be *locked* by the memory controller during a PIM load phase
    (bank access control handed over to the PIM unit, §6.2); CPU accesses
    to a locked bank must wait, which the timing layer accounts for.
    """

    def __init__(self, device: "Device", index: int, start: int, size: int) -> None:
        self.device = device
        self.index = index
        self.start = start
        self.size = size
        self.locked = False

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """Read ``nbytes`` starting at ``offset`` within this bank."""
        self._check(offset, nbytes)
        return self.device.read(self.start + offset, nbytes)

    def write(self, offset: int, data: np.ndarray) -> None:
        """Write ``data`` starting at ``offset`` within this bank."""
        self._check(offset, len(data))
        self.device.write(self.start + offset, data)

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise MemoryError_(
                f"bank {self.index} access [{offset}, {offset + nbytes}) "
                f"out of range (size {self.size})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self.locked else "unlocked"
        return f"Bank(index={self.index}, size={self.size}, {state})"


class Device:
    """One DRAM chip: a flat byte array split into equal banks."""

    def __init__(self, index: int, size: int, num_banks: int = 8) -> None:
        if size <= 0:
            raise MemoryError_(f"device size must be positive, got {size}")
        if num_banks <= 0 or size % num_banks != 0:
            raise MemoryError_(
                f"device size {size} must be a positive multiple of "
                f"num_banks {num_banks}"
            )
        self.index = index
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        bank_size = size // num_banks
        self.banks: List[Bank] = [
            Bank(self, b, b * bank_size, bank_size) for b in range(num_banks)
        ]

    @property
    def bank_size(self) -> int:
        """Capacity of each bank in bytes."""
        return self.banks[0].size

    def bank_of(self, offset: int) -> Bank:
        """Return the bank containing byte ``offset``."""
        self._check(offset, 1)
        return self.banks[offset // self.bank_size]

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """Read ``nbytes`` from the device starting at ``offset``."""
        self._check(offset, nbytes)
        return self.data[offset : offset + nbytes].copy()

    def write(self, offset: int, data: np.ndarray) -> None:
        """Write a byte array into the device starting at ``offset``."""
        data = np.asarray(data, dtype=np.uint8)
        self._check(offset, len(data))
        self.data[offset : offset + len(data)] = data

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise MemoryError_(
                f"device {self.index} access [{offset}, {offset + nbytes}) "
                f"out of range (size {self.size})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device(index={self.index}, size={self.size}, banks={len(self.banks)})"
