"""Substrate registry — named PIM hardware models with derived ceilings.

A :class:`Substrate` bundles a full :class:`~repro.core.config.SystemConfig`
(DRAM timings + device geometry + PIM/CPU blocks) with the roofline
ceilings derived from it: peak stream bandwidth per bank/unit, per rank,
and system-wide, the random cache-line latency floor, and the
control-path overhead of one offload. The roofline bench and the
per-operator bandwidth accounting both classify observed operator
behaviour against the *active* substrate's ceilings.

Three presets ship in the registry:

* ``ddr5`` — the paper's default DIMM-based PIM server (Table 1);
  bit-identical to :func:`~repro.core.config.dimm_system`.
* ``hbm3`` — the HBM-based comparison system (Table 1, HBM block).
* ``lpddr5x-pim`` — a mobile-class LPDDR5X-PIM stack per the LP5X-PIM
  Sim tech note (PAPERS.md), beyond the paper's two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.core.config import (
    SystemConfig,
    dimm_system,
    hbm_system,
    lpddr5x_system,
)
from repro.errors import ConfigError
from repro.pim.timing import effective_stream_bandwidth, random_line_time

__all__ = [
    "Substrate",
    "get_substrate",
    "register_substrate",
    "available_substrates",
    "DEFAULT_SUBSTRATE",
]

DEFAULT_SUBSTRATE = "ddr5"


@dataclass(frozen=True)
class Substrate:
    """A named hardware model plus its derived roofline ceilings.

    All bandwidths are in bytes/ns (numerically equal to GB/s); all
    latencies in ns, matching the rest of the simulator.
    """

    name: str
    config: SystemConfig
    description: str = ""

    # ------------------------------------------------------------------
    # Derived ceilings
    # ------------------------------------------------------------------
    @property
    def stream_bandwidth_per_unit(self) -> float:
        """Peak sustainable stream bandwidth of one PIM unit (bank).

        The lower of what the bank's DRAM timings allow and the unit's
        internal DRAM port bandwidth — the same cap
        :meth:`repro.pim.pim_unit.PIMUnit._dram_time` enforces.
        """
        dram = effective_stream_bandwidth(
            self.config.timings,
            self.config.geometry,
            self.config.pim.access_granularity,
        )
        return min(dram, self.config.pim.dram_bandwidth)

    @property
    def stream_bandwidth_per_rank(self) -> float:
        """Aggregate stream ceiling of one rank's PIM units."""
        return self.stream_bandwidth_per_unit * self.config.pim.units_per_rank

    @property
    def stream_bandwidth_system(self) -> float:
        """Aggregate stream ceiling of every PIM unit in the system."""
        return self.stream_bandwidth_per_unit * self.config.total_pim_units

    @property
    def random_line_ns(self) -> float:
        """Latency floor of one random cache-line access (no row hits)."""
        return random_line_time(1, self.config.timings)

    @property
    def random_line_bandwidth(self) -> float:
        """Bandwidth ceiling of conflict-dominated random line traffic."""
        return self.config.geometry.cache_line_bytes / self.random_line_ns

    @property
    def control_overhead_ns(self) -> float:
        """Control-path cost of one offload (mode switches + launch/poll).

        Two mode switches (CPU→PIM and back) plus one disguised launch
        and one poll request through the memory controller (§6.1/§7.1).
        """
        cfg = self.config
        return 2.0 * cfg.mode_switch_latency + 2.0 * cfg.controller_request_latency

    @property
    def cpu_bandwidth(self) -> float:
        """Aggregate CPU-side memory bandwidth, bytes/ns."""
        return self.config.total_cpu_bandwidth

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    def ceiling_for_units(self, num_units: int) -> float:
        """Stream ceiling for an operator spread over ``num_units``."""
        return self.stream_bandwidth_per_unit * max(num_units, 0)

    @staticmethod
    def classify(load_time: float, compute_time: float, control_time: float) -> str:
        """Name the dominant simulated-time component of an operator.

        ``memory`` when DRAM streaming dominates, ``compute`` when the
        PIM pipelines do, ``control`` when offload orchestration does.
        """
        if load_time >= compute_time and load_time >= control_time:
            return "memory"
        if compute_time >= control_time:
            return "compute"
        return "control"

    def summary(self) -> Dict[str, object]:
        """The ceilings as a plain dict (for JSON snapshots)."""
        return {
            "name": self.name,
            "description": self.description,
            "stream_bandwidth_per_unit": self.stream_bandwidth_per_unit,
            "stream_bandwidth_per_rank": self.stream_bandwidth_per_rank,
            "stream_bandwidth_system": self.stream_bandwidth_system,
            "random_line_ns": self.random_line_ns,
            "random_line_bandwidth": self.random_line_bandwidth,
            "control_overhead_ns": self.control_overhead_ns,
            "cpu_bandwidth": self.cpu_bandwidth,
            "total_pim_units": float(self.config.total_pim_units),
        }


@dataclass
class _Registry:
    factories: Dict[str, Callable[[], SystemConfig]] = field(default_factory=dict)
    descriptions: Dict[str, str] = field(default_factory=dict)

    def register(
        self, name: str, factory: Callable[[], SystemConfig], description: str = ""
    ) -> None:
        if name in self.factories:
            raise ConfigError(f"substrate {name!r} already registered")
        self.factories[name] = factory
        self.descriptions[name] = description

    def get(self, name: str) -> Substrate:
        try:
            factory = self.factories[name]
        except KeyError:
            known = ", ".join(sorted(self.factories))
            raise ConfigError(f"unknown substrate {name!r} (known: {known})") from None
        return Substrate(name=name, config=factory(), description=self.descriptions[name])


_REGISTRY = _Registry()


def register_substrate(
    name: str, factory: Callable[[], SystemConfig], description: str = ""
) -> None:
    """Register a new named substrate (``factory`` builds its config)."""
    _REGISTRY.register(name, factory, description)


def get_substrate(name: str = DEFAULT_SUBSTRATE) -> Substrate:
    """Look up a substrate by name; raises ``ConfigError`` if unknown."""
    return _REGISTRY.get(name)


def available_substrates() -> List[str]:
    """Sorted names of every registered substrate."""
    return sorted(_REGISTRY.factories)


register_substrate(
    "ddr5",
    dimm_system,
    "DDR5-3200 DIMM-based PIM server (paper Table 1 default)",
)
register_substrate(
    "hbm3",
    hbm_system,
    "HBM3-2Gbps comparison system (paper Table 1, HBM block)",
)
register_substrate(
    "lpddr5x-pim",
    lpddr5x_system,
    "LPDDR5X-8533 mobile PIM stack (LP5X-PIM Sim tech note)",
)
