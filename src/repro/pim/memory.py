"""Rank-level memory with two-dimensional access.

A :class:`Rank` groups ``d`` devices and exposes the two access views the
paper builds on (Fig. 1b):

* **ADE (across devices)** — the CPU's interleaved view: the linear
  address space is striped across devices at the interleave granularity
  (8 B for DIMM). :meth:`Rank.read_interleaved` /
  :meth:`Rank.write_interleaved` implement it.
* **IDE (inside device)** — each PIM unit reads its own device/bank
  locally via :meth:`Rank.device_read` / :meth:`Rank.device_write`.

The address mapping is the standard low-order interleave: interleaved
address ``a`` lives on device ``(a // g) % d`` at local offset
``(a // (g * d)) * g + (a % g)``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.config import DeviceGeometry
from repro.errors import MemoryError_
from repro.pim.device import Device

__all__ = ["Rank", "interleaved_to_local", "local_to_interleaved"]


def interleaved_to_local(addr: int, granularity: int, num_devices: int) -> Tuple[int, int]:
    """Map an interleaved (CPU-view) address to ``(device, local_offset)``."""
    if addr < 0:
        raise MemoryError_(f"negative address {addr}")
    stripe = addr // granularity
    device = stripe % num_devices
    local = (stripe // num_devices) * granularity + (addr % granularity)
    return device, local


def local_to_interleaved(device: int, local: int, granularity: int, num_devices: int) -> int:
    """Inverse of :func:`interleaved_to_local`."""
    if device < 0 or device >= num_devices:
        raise MemoryError_(f"device {device} out of range [0, {num_devices})")
    if local < 0:
        raise MemoryError_(f"negative local offset {local}")
    stripe = (local // granularity) * num_devices + device
    return stripe * granularity + (local % granularity)


class Rank:
    """A rank of interleaved devices with PIM-style local access."""

    def __init__(self, geometry: DeviceGeometry, device_bytes: int) -> None:
        if device_bytes % geometry.interleave_granularity != 0:
            raise MemoryError_(
                "device_bytes must be a multiple of the interleave granularity"
            )
        if device_bytes % geometry.banks_per_device != 0:
            raise MemoryError_("device_bytes must be a multiple of banks_per_device")
        self.geometry = geometry
        self.devices: List[Device] = [
            Device(i, device_bytes, geometry.banks_per_device)
            for i in range(geometry.devices_per_rank)
        ]

    @property
    def num_devices(self) -> int:
        """Number of devices (the ADE width)."""
        return len(self.devices)

    @property
    def granularity(self) -> int:
        """Interleave granularity in bytes."""
        return self.geometry.interleave_granularity

    @property
    def size(self) -> int:
        """Total interleaved address space of the rank."""
        return sum(d.size for d in self.devices)

    # ------------------------------------------------------------------
    # ADE view (CPU interleaved access)
    # ------------------------------------------------------------------
    def read_interleaved(self, addr: int, nbytes: int) -> np.ndarray:
        """Read ``nbytes`` from the CPU's interleaved address space."""
        self._check(addr, nbytes)
        out = np.empty(nbytes, dtype=np.uint8)
        for pos, dev, local, run in self._spans(addr, nbytes):
            out[pos : pos + run] = self.devices[dev].data[local : local + run]
        return out

    def write_interleaved(self, addr: int, data: np.ndarray) -> None:
        """Write ``data`` into the CPU's interleaved address space."""
        data = np.asarray(data, dtype=np.uint8)
        self._check(addr, len(data))
        for pos, dev, local, run in self._spans(addr, len(data)):
            self.devices[dev].data[local : local + run] = data[pos : pos + run]

    def _spans(self, addr: int, nbytes: int):
        """Yield ``(pos, device, local, run)`` byte-runs of an access.

        Runs never cross a granule boundary, so each run maps to one
        contiguous region of one device.
        """
        pos = 0
        while pos < nbytes:
            a = addr + pos
            dev, local = interleaved_to_local(a, self.granularity, self.num_devices)
            run = min(self.granularity - (a % self.granularity), nbytes - pos)
            yield pos, dev, local, run
            pos += run

    # ------------------------------------------------------------------
    # IDE view (PIM local access)
    # ------------------------------------------------------------------
    def device_read(self, device: int, local: int, nbytes: int) -> np.ndarray:
        """Read ``nbytes`` locally from one device (PIM view)."""
        return self.devices[device].read(local, nbytes)

    def device_write(self, device: int, local: int, data: np.ndarray) -> None:
        """Write ``data`` locally to one device (PIM view)."""
        self.devices[device].write(local, data)

    def bank_of(self, device: int, local: int):
        """Return the bank of ``device`` containing local byte ``local``."""
        return self.devices[device].bank_of(local)

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0 or addr + nbytes > self.size:
            raise MemoryError_(
                f"interleaved access [{addr}, {addr + nbytes}) out of range "
                f"(rank size {self.size})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rank(devices={self.num_devices}, size={self.size})"
