"""Functional PIM unit model (UPMEM-like, §2.1).

One :class:`PIMUnit` sits next to one DRAM bank. It owns a WRAM scratchpad
(64 kB by default) and executes the operations of Fig. 7b:

* **LS** — the load phase: write back the previous result from WRAM to the
  bank and stream new operand data from the bank into WRAM (strided, to
  follow the block-circulant placement).
* **Filter / Group / Aggregation / Hash / Join** — compute phases operating
  entirely inside WRAM, consulting the snapshot bitmap to skip invisible
  rows.

Every method is functional (real bytes move) and returns the modelled time
in nanoseconds. DRAM-side time uses the streaming model of
:mod:`repro.pim.timing`; compute time is ``ceil(n / tasklets)`` element
steps at a few cycles per element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro import perf
from repro.core.config import DRAMTimings, DeviceGeometry, PIMUnitConfig
from repro.errors import MemoryError_, ProtocolError
from repro.pim.device import Bank
from repro.pim.timing import BankTimingModel, stream_time
from repro.telemetry import registry as telemetry
from repro.units import ceil_div

__all__ = ["PIMUnit", "PIMUnitStats", "bytes_to_uints", "uints_to_bytes", "Condition"]

#: Modelled compute cost per element, in PIM cycles per tasklet.
_CYCLES_PER_ELEMENT = {
    "filter": 4,
    "group": 8,
    "aggregation": 6,
    "hash": 10,
    "join": 12,
    "copy": 2,
}


#: Widths with a native little-endian dtype (decoded via a zero-copy view).
_NATIVE_WIDTHS = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}


def bytes_to_uints(raw: np.ndarray, width: int) -> np.ndarray:
    """Decode a flat byte array into little-endian unsigned ints.

    ``width`` may be 1–8 bytes; the result dtype is ``uint64``.
    """
    raw = np.ascontiguousarray(raw, dtype=np.uint8)
    if width <= 0 or width > 8:
        raise ProtocolError(f"element width must be 1..8, got {width}")
    if len(raw) % width != 0:
        raise ProtocolError(f"byte length {len(raw)} not a multiple of width {width}")
    if perf.vectorized() and width in _NATIVE_WIDTHS:
        return raw.view(_NATIVE_WIDTHS[width]).astype(np.uint64)
    return _bytes_to_uints_reference(raw, width)


def _bytes_to_uints_reference(raw: np.ndarray, width: int) -> np.ndarray:
    """Positional weights decode — the naive reference for all widths."""
    mat = raw.reshape(-1, width).astype(np.uint64)
    weights = (np.uint64(1) << (np.uint64(8) * np.arange(width, dtype=np.uint64)))
    return (mat * weights).sum(axis=1, dtype=np.uint64)


def uints_to_bytes(values: np.ndarray, width: int) -> np.ndarray:
    """Inverse of :func:`bytes_to_uints`."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if width <= 0 or width > 8:
        raise ProtocolError(f"element width must be 1..8, got {width}")
    if perf.vectorized() and width == 8:
        return values.view(np.uint8).copy()
    if perf.vectorized() and width in _NATIVE_WIDTHS:
        # Narrowing keeps the low bytes — exactly the per-byte shifts below.
        return values.astype(_NATIVE_WIDTHS[width]).view(np.uint8).copy()
    return _uints_to_bytes_reference(values, width)


def _uints_to_bytes_reference(values: np.ndarray, width: int) -> np.ndarray:
    """Per-byte shift encode — the naive reference for all widths."""
    out = np.empty((len(values), width), dtype=np.uint8)
    for b in range(width):
        out[:, b] = (values >> np.uint64(8 * b)).astype(np.uint8)
    return out.reshape(-1)


@dataclass(frozen=True)
class Condition:
    """A filter predicate encoded in the 8-byte ``condition`` field.

    Byte 0 is the comparison opcode; bytes 1–7 hold the little-endian
    operand. ``BETWEEN``-style predicates are expressed as two filters.
    """

    op: str
    operand: int

    _OPCODES = {"eq": 0, "ne": 1, "lt": 2, "le": 3, "gt": 4, "ge": 5}

    def __post_init__(self) -> None:
        if self.op not in self._OPCODES:
            raise ProtocolError(f"unknown comparison op {self.op!r}")
        if not 0 <= self.operand < (1 << 56):
            raise ProtocolError("condition operand must fit in 7 bytes")

    def encode(self) -> int:
        """Pack into the 8-byte integer carried by the launch request."""
        return self._OPCODES[self.op] | (self.operand << 8)

    @classmethod
    def decode(cls, packed: int) -> "Condition":
        """Unpack from the launch request field."""
        opcode = packed & 0xFF
        for name, code in cls._OPCODES.items():
            if code == opcode:
                return cls(name, packed >> 8)
        raise ProtocolError(f"unknown comparison opcode {opcode}")

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        """Vectorized predicate evaluation."""
        operand = np.uint64(self.operand)
        if self.op == "eq":
            return values == operand
        if self.op == "ne":
            return values != operand
        if self.op == "lt":
            return values < operand
        if self.op == "le":
            return values <= operand
        if self.op == "gt":
            return values > operand
        return values >= operand


@dataclass
class PIMUnitStats:
    """Accumulated work counters of one PIM unit."""

    dram_bytes_read: int = 0
    dram_bytes_written: int = 0
    elements_processed: int = 0
    load_time: float = 0.0
    compute_time: float = 0.0

    @property
    def total_time(self) -> float:
        """Total busy time of the unit."""
        return self.load_time + self.compute_time


class PIMUnit:
    """One per-bank PIM unit with a WRAM scratchpad."""

    def __init__(
        self,
        unit_id: int,
        bank: Bank,
        config: PIMUnitConfig,
        timings: DRAMTimings,
        geometry: DeviceGeometry,
    ) -> None:
        self.unit_id = unit_id
        self.bank = bank
        self.config = config
        self.timings = timings
        self.geometry = geometry
        self.wram = np.zeros(config.wram_bytes, dtype=np.uint8)
        self.stats = PIMUnitStats()
        self.busy = False
        #: Row-buffer shadow model (hit/miss/conflict accounting for this
        #: bank's DRAM traffic). Created lazily on the first tracked
        #: access while the telemetry registry's ``roofline`` flag is on;
        #: stays ``None`` — zero overhead — otherwise.
        self.rowbuffer: "BankTimingModel | None" = None

    # ------------------------------------------------------------------
    # Row-buffer shadow tracking (roofline observability)
    # ------------------------------------------------------------------
    def _track_rows(
        self, dram_addr: int, span: int, write: bool = False, moved: "int | None" = None
    ) -> None:
        """Feed one contiguous bank access into the row-buffer shadow.

        ``span`` is the address range touched; ``moved`` the bytes
        actually transferred (defaults to the span). The span is
        collapsed to one access per touched DRAM row — a streaming
        access opens each row once — with the transferred bytes charged
        to the run as a whole.
        """
        tel = telemetry.active()
        if not (tel.enabled and tel.roofline) or span <= 0:
            return
        if self.rowbuffer is None:
            self.rowbuffer = BankTimingModel(self.timings)
        rb = self.geometry.row_buffer_bytes
        first = dram_addr // rb
        last = (dram_addr + span - 1) // rb
        moved = span if moved is None else moved
        for row in range(first, last + 1):
            self.rowbuffer.access(row, moved if row == first else 0, write)

    def _track_row_list(self, addrs, width: int, write: bool = False) -> None:
        """Feed scattered row-granularity accesses into the shadow model."""
        tel = telemetry.active()
        if not (tel.enabled and tel.roofline) or len(addrs) == 0:
            return
        if self.rowbuffer is None:
            self.rowbuffer = BankTimingModel(self.timings)
        rb = self.geometry.row_buffer_bytes
        rows = np.asarray(addrs, dtype=np.int64) // rb
        # Collapse consecutive repeats: same-row back-to-back accesses
        # would all be hits, which one access already represents.
        keep = np.ones(len(rows), dtype=bool)
        keep[1:] = rows[1:] != rows[:-1]
        collapsed = rows[keep]
        per_access = len(addrs) * max(width, 1) // max(len(collapsed), 1)
        for row in collapsed:
            self.rowbuffer.access(int(row), per_access, write)

    # ------------------------------------------------------------------
    # WRAM access
    # ------------------------------------------------------------------
    def wram_read(self, offset: int, nbytes: int) -> np.ndarray:
        """Read bytes from WRAM."""
        self._check_wram(offset, nbytes)
        return self.wram[offset : offset + nbytes].copy()

    def wram_write(self, offset: int, data: np.ndarray) -> None:
        """Write bytes into WRAM."""
        data = np.asarray(data, dtype=np.uint8)
        self._check_wram(offset, len(data))
        self.wram[offset : offset + len(data)] = data

    def _check_wram(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > len(self.wram):
            raise MemoryError_(
                f"unit {self.unit_id}: WRAM access [{offset}, {offset + nbytes}) "
                f"out of range (size {len(self.wram)})"
            )

    # ------------------------------------------------------------------
    # Load phase
    # ------------------------------------------------------------------
    def load_strided(
        self,
        dram_addr: int,
        length: int,
        stride: int,
        chunk: int,
        wram_offset: int,
    ) -> float:
        """Stream ``length`` bytes from the bank into WRAM.

        Data is gathered as ``chunk``-byte pieces at ``stride`` spacing
        starting at ``dram_addr`` (stride = the part's row width; chunk =
        the scanned footprint per row). With ``stride == chunk`` this is a
        dense copy. Returns modelled time; DRAM traffic is accounted at
        the unit's 8 B access granularity, so sub-granule chunks still
        cost a full granule (the fragmentation effect of Fig. 11b).
        """
        if length <= 0:
            return 0.0
        if chunk <= 0 or stride < chunk:
            raise ProtocolError(f"invalid stride/chunk {stride}/{chunk}")
        self._check_wram(wram_offset, length)
        pieces = ceil_div(length, chunk)
        if perf.vectorized():
            if stride == chunk:
                out = self.bank.read(dram_addr, length)
            else:
                # One span read covering every piece, then a strided
                # gather — the furthest byte touched equals the naive
                # per-piece loop's, so bank bounds behave identically.
                last_take = length - (pieces - 1) * chunk
                span = (pieces - 1) * stride + last_take
                flat = self.bank.read(dram_addr, span)
                idx = (
                    np.arange(pieces, dtype=np.intp)[:, None] * stride
                    + np.arange(chunk, dtype=np.intp)[None, :]
                ).reshape(-1)[:length]
                out = flat[idx]
        else:
            out = np.empty(length, dtype=np.uint8)
            pos = 0
            for i in range(pieces):
                take = min(chunk, length - pos)
                out[pos : pos + take] = self.bank.read(dram_addr + i * stride, take)
                pos += take
        self.wram[wram_offset : wram_offset + length] = out
        granule = self.config.access_granularity
        if stride == chunk:
            moved = max(length, granule)
            span = length
        else:
            moved = pieces * max(granule, chunk)
            span = (pieces - 1) * stride + chunk
        self._track_rows(dram_addr, span, moved=moved)
        time = self._dram_time(moved)
        self.stats.dram_bytes_read += moved
        self.stats.load_time += time
        return time

    def _dram_time(self, moved: int) -> float:
        """DRAM-side transfer time, capped by the unit's bandwidth spec."""
        raw = stream_time(moved, self.timings, self.geometry, self.config.access_granularity)
        return max(raw, moved / self.config.dram_bandwidth)

    def store_dense(self, dram_addr: int, wram_offset: int, length: int) -> float:
        """Write ``length`` WRAM bytes back to the bank contiguously."""
        if length <= 0:
            return 0.0
        self._check_wram(wram_offset, length)
        self.bank.write(dram_addr, self.wram[wram_offset : wram_offset + length])
        granule = self.config.access_granularity
        self._track_rows(dram_addr, length, write=True, moved=max(length, granule))
        time = self._dram_time(max(length, granule))
        self.stats.dram_bytes_written += max(length, granule)
        self.stats.load_time += time
        return time

    # ------------------------------------------------------------------
    # Compute phases (WRAM-only)
    # ------------------------------------------------------------------
    def _compute_time(self, elements: int, kind: str) -> float:
        steps = ceil_div(max(elements, 1), self.config.tasklets)
        time = steps * _CYCLES_PER_ELEMENT[kind] * self.config.cycle_ns
        self.stats.elements_processed += elements
        self.stats.compute_time += time
        return time

    def _visible_mask(
        self, bitmap_offset: int, count: int, bitmap_base_row: int = 0
    ) -> np.ndarray:
        """Expand the snapshot bitmap into a boolean mask of ``count`` rows."""
        first_bit = bitmap_base_row
        last_bit = bitmap_base_row + count
        nbytes = ceil_div(last_bit, 8)
        raw = self.wram_read(bitmap_offset, nbytes)
        bits = np.unpackbits(raw, bitorder="little")
        return bits[first_bit:last_bit].astype(bool)

    def op_filter(
        self,
        bitmap_offset: int,
        data_offset: int,
        result_offset: int,
        data_width: int,
        condition: Condition,
        count: int,
        bitmap_base_row: int = 0,
    ) -> float:
        """Filter ``count`` elements; write a result bitmap to WRAM.

        Invisible rows (snapshot bit 0) never match.
        """
        values = bytes_to_uints(self.wram_read(data_offset, count * data_width), data_width)
        visible = self._visible_mask(bitmap_offset, count, bitmap_base_row)
        matches = condition.evaluate(values) & visible
        packed = np.packbits(matches.astype(np.uint8), bitorder="little")
        self.wram_write(result_offset, packed)
        return self._compute_time(count, "filter")

    def op_group(
        self,
        bitmap_offset: int,
        data_offset: int,
        dict_offset: int,
        result_offset: int,
        data_width: int,
        count: int,
        dict_capacity: int = 256,
        bitmap_base_row: int = 0,
    ) -> float:
        """Dictionary-encode ``count`` group keys into dense group indices.

        The dictionary (distinct keys, little-endian ``data_width`` bytes
        each) is written at ``dict_offset``; per-row 2-byte group indices
        at ``result_offset``. Invisible rows get index 0xFFFF.
        """
        values = bytes_to_uints(self.wram_read(data_offset, count * data_width), data_width)
        visible = self._visible_mask(bitmap_offset, count, bitmap_base_row)
        uniques = np.unique(values[visible]) if visible.any() else np.array([], dtype=np.uint64)
        if len(uniques) > dict_capacity:
            raise ProtocolError(
                f"group dictionary overflow: {len(uniques)} keys > {dict_capacity}"
            )
        indices = np.full(count, 0xFFFF, dtype=np.uint16)
        if len(uniques):
            indices[visible] = np.searchsorted(uniques, values[visible]).astype(np.uint16)
        self.wram_write(dict_offset, uints_to_bytes(uniques, data_width))
        self.wram_write(result_offset, indices.view(np.uint8))
        return self._compute_time(count, "group")

    def op_aggregation(
        self,
        bitmap_offset: int,
        data_offset: int,
        index_offset: int,
        result_offset: int,
        data_width: int,
        count: int,
        num_groups: int,
        bitmap_base_row: int = 0,
    ) -> float:
        """Sum ``count`` values into per-group 8-byte accumulators.

        Group indices are the 2-byte outputs of :meth:`op_group`;
        accumulators at ``result_offset`` are read-modified-written so
        chunked execution accumulates across phases.
        """
        values = bytes_to_uints(self.wram_read(data_offset, count * data_width), data_width)
        indices = self.wram_read(index_offset, count * 2).view(np.uint16)
        visible = self._visible_mask(bitmap_offset, count, bitmap_base_row)
        valid = visible & (indices != 0xFFFF)
        acc = self.wram_read(result_offset, num_groups * 8).view(np.uint64).copy()
        if valid.any():
            np.add.at(acc, indices[valid].astype(np.int64), values[valid])
        self.wram_write(result_offset, acc.view(np.uint8))
        return self._compute_time(count, "aggregation")

    def op_hash(
        self,
        bitmap_offset: int,
        data_offset: int,
        result_offset: int,
        data_width: int,
        count: int,
        hash_function: int = 0,
        bitmap_base_row: int = 0,
    ) -> float:
        """Hash ``count`` keys to 4-byte values (0 for invisible rows)."""
        values = bytes_to_uints(self.wram_read(data_offset, count * data_width), data_width)
        visible = self._visible_mask(bitmap_offset, count, bitmap_base_row)
        hashed = _hash_u64(values, hash_function)
        hashed[~visible] = 0
        self.wram_write(result_offset, hashed.view(np.uint8))
        return self._compute_time(count, "hash")

    def op_join(
        self,
        hash1_offset: int,
        hash2_offset: int,
        result_offset: int,
        count1: int,
        count2: int,
    ) -> float:
        """Join two 4-byte hash buckets; write match-pair indices.

        The result region receives a 4-byte match count followed by
        ``(i, j)`` pairs of 4-byte indices into the two buckets.
        """
        h1 = self.wram_read(hash1_offset, count1 * 4).view(np.uint32)
        h2 = self.wram_read(hash2_offset, count2 * 4).view(np.uint32)
        if perf.vectorized():
            pairs_flat, num_pairs = _join_pairs_vectorized(h1, h2)
        else:
            pairs_flat, num_pairs = _join_pairs_reference(h1, h2)
        out = np.empty(4 + num_pairs * 8, dtype=np.uint8)
        out[:4] = np.frombuffer(np.uint32(num_pairs).tobytes(), dtype=np.uint8)
        if num_pairs:
            out[4:] = pairs_flat.view(np.uint8)
        self.wram_write(result_offset, out)
        return self._compute_time(count1 + count2, "join")

    def copy_rows(self, src_addrs: np.ndarray, dst_addrs: np.ndarray, width: int) -> float:
        """Defragmentation helper: copy ``width``-byte slots bank-locally."""
        if len(src_addrs) != len(dst_addrs):
            raise ProtocolError("src/dst address count mismatch")
        if perf.vectorized() and len(src_addrs):
            src = np.asarray(src_addrs, dtype=np.intp)
            dst = np.asarray(dst_addrs, dtype=np.intp)
            hi = max(int(src.max()), int(dst.max())) + width
            if src.min() < 0 or dst.min() < 0 or hi > self.bank.size:
                raise MemoryError_(
                    f"bank {self.bank.index} copy_rows access out of range "
                    f"(size {self.bank.size})"
                )
            # Defragmentation copies delta blocks into data blocks — the
            # regions are distinct allocations, so gather-then-scatter
            # matches the sequential per-row copy.
            data = self.bank.device.data
            base = self.bank.start
            lanes = np.arange(width, dtype=np.intp)
            data[base + dst[:, None] + lanes] = data[base + src[:, None] + lanes]
        else:
            for src_a, dst_a in zip(src_addrs, dst_addrs):
                self.bank.write(int(dst_a), self.bank.read(int(src_a), width))
        granule = self.config.access_granularity
        self._track_row_list(src_addrs, max(width, granule), write=False)
        self._track_row_list(dst_addrs, max(width, granule), write=True)
        moved = 2 * len(src_addrs) * max(width, granule)
        time = self._dram_time(moved)
        self.stats.dram_bytes_read += moved // 2
        self.stats.dram_bytes_written += moved // 2
        self.stats.load_time += time
        time += self._compute_time(len(src_addrs), "copy")
        return time


def _join_pairs_reference(h1: np.ndarray, h2: np.ndarray):
    """Naive bucket match: build-side dict probed row by row.

    Pair order is probe index ``i`` ascending, then build index ``j``
    ascending within equal hashes. Hash 0 marks invisible rows on both
    sides and never matches.
    """
    pairs = []
    positions = {}
    for j, h in enumerate(h2):
        if h:
            positions.setdefault(int(h), []).append(j)
    for i, h in enumerate(h1):
        for j in positions.get(int(h), ()):
            pairs.append((i, j))
    if not pairs:
        return np.empty(0, dtype=np.uint32), 0
    return np.array(pairs, dtype=np.uint32).reshape(-1), len(pairs)


def _join_pairs_vectorized(h1: np.ndarray, h2: np.ndarray):
    """Sort/searchsorted bucket match, same pair order as the reference.

    The stable sort groups equal build-side hashes while preserving
    ascending ``j`` within each group, so the ragged gather reproduces
    the reference's (i-major, j-ascending) order exactly.
    """
    j_nonzero = np.nonzero(h2)[0]
    if len(j_nonzero) == 0 or len(h1) == 0:
        return np.empty(0, dtype=np.uint32), 0
    h2_live = h2[j_nonzero]
    order = np.argsort(h2_live, kind="stable")
    h2_sorted = h2_live[order]
    j_sorted = j_nonzero[order]
    left = np.searchsorted(h2_sorted, h1, side="left")
    counts = np.searchsorted(h2_sorted, h1, side="right") - left
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.uint32), 0
    i_rep = np.repeat(np.arange(len(h1), dtype=np.uint32), counts)
    starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.intp) - np.repeat(starts, counts)
    j_rep = j_sorted[np.repeat(left, counts) + within].astype(np.uint32)
    return np.stack([i_rep, j_rep], axis=1).reshape(-1), total


def _hash_u64(values: np.ndarray, hash_function: int) -> np.ndarray:
    """Simple multiplicative hashes selected by ``hash_function``.

    Hash 0 is reserved as the "invisible" marker, so outputs are forced
    non-zero.
    """
    multipliers = (
        np.uint64(0x9E3779B97F4A7C15),
        np.uint64(0xC2B2AE3D27D4EB4F),
        np.uint64(0x165667B19E3779F9),
    )
    mult = multipliers[hash_function % len(multipliers)]
    mixed = (values + np.uint64(1)) * mult
    out = (mixed >> np.uint64(32)).astype(np.uint32)
    out[out == 0] = 1
    return out
