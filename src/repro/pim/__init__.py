"""The PIM hardware substrate: devices, timing, units, controllers."""

from repro.pim.device import Bank, Device
from repro.pim.memory import Rank, interleaved_to_local, local_to_interleaved
from repro.pim.pim_unit import PIMUnit, Condition, bytes_to_uints, uints_to_bytes
from repro.pim.requests import LaunchRequest, OpType, encode_launch, decode_launch
from repro.pim.controller import OriginalController, PushTapController
from repro.pim.executor import TwoPhaseExecutor, ExecutionResult

__all__ = [
    "Bank",
    "Device",
    "Rank",
    "interleaved_to_local",
    "local_to_interleaved",
    "PIMUnit",
    "Condition",
    "bytes_to_uints",
    "uints_to_bytes",
    "LaunchRequest",
    "OpType",
    "encode_launch",
    "decode_launch",
    "OriginalController",
    "PushTapController",
    "TwoPhaseExecutor",
    "ExecutionResult",
]
