"""Two-phase OLAP execution (§6.2).

An OLAP operation is split into alternating *load* and *compute* phases,
chunked by half the WRAM (the other half is the units' operating memory).
During a load phase bank control belongs to the PIM units and normal CPU
access is blocked; during a compute phase PUSHtap's controller leaves the
banks to the CPU, whereas the original architecture keeps them locked for
the whole offload.

:class:`TwoPhaseExecutor` orchestrates the phases over any
:class:`ChunkedOperation` and produces an :class:`ExecutionResult` whose
``cpu_blocked_time`` is exactly the quantity the paper's real-time-OLTP
argument is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Protocol, Sequence

from repro.errors import QueryError
from repro.faults import injector as faults
from repro.faults import plan as fault_plan
from repro.pim.controller import ControlCost, _ControllerBase
from repro.pim.pim_unit import PIMUnit
from repro.pim.requests import LaunchRequest, OpType
from repro.telemetry import registry as telemetry

__all__ = [
    "ChunkedOperation",
    "PhaseTrace",
    "ExecutionResult",
    "TwoPhaseExecutor",
    "MAX_FAULT_RETRIES",
    "RETRY_BACKOFF_BASE_NS",
]

#: Bounded retries per control interaction before giving up on a query.
MAX_FAULT_RETRIES = 8
#: First retry backoff (simulated ns); doubles per attempt.
RETRY_BACKOFF_BASE_NS = 100.0


class ChunkedOperation(Protocol):
    """Work split into WRAM-sized chunks per PIM unit.

    Implementations perform real data movement/compute on the given unit
    and return the modelled time of each call.
    """

    def num_chunks(self) -> int:
        """Number of load/compute phase pairs (max across units)."""
        ...

    def participating_units(self) -> Sequence[PIMUnit]:
        """Units involved in this operation."""
        ...

    def load_request(self, chunk: int) -> LaunchRequest:
        """The LS launch request for phase ``chunk``."""
        ...

    def compute_request(self, chunk: int) -> LaunchRequest:
        """The compute launch request for phase ``chunk``."""
        ...

    def load(self, unit: PIMUnit, chunk: int) -> float:
        """Run the load phase for one unit; returns unit-local time."""
        ...

    def compute(self, unit: PIMUnit, chunk: int) -> float:
        """Run the compute phase for one unit; returns unit-local time."""
        ...


@dataclass(frozen=True)
class PhaseTrace:
    """Timing of one load+compute phase pair."""

    chunk: int
    control_time: float
    load_time: float
    compute_time: float


@dataclass
class ExecutionResult:
    """Aggregate timing of one two-phase OLAP operation."""

    total_time: float = 0.0
    cpu_blocked_time: float = 0.0
    load_time: float = 0.0
    compute_time: float = 0.0
    control_time: float = 0.0
    phases: int = 0
    traces: List[PhaseTrace] = field(default_factory=list)
    #: DRAM bytes moved (read + written) by the participating units.
    dram_bytes: int = 0
    #: Elements pushed through the units' compute pipelines.
    elements: int = 0

    @property
    def control_fraction(self) -> float:
        """Control (mode-switch + messaging) share of total time."""
        return self.control_time / self.total_time if self.total_time else 0.0

    @property
    def effective_bandwidth(self) -> float:
        """Achieved DRAM bandwidth over the operation's total time (B/ns)."""
        return self.dram_bytes / self.total_time if self.total_time else 0.0

    @property
    def operational_intensity(self) -> float:
        """Elements processed per DRAM byte moved (roofline x-axis)."""
        return self.elements / self.dram_bytes if self.dram_bytes else 0.0

    def merge(self, other: "ExecutionResult") -> "ExecutionResult":
        """Concatenate two results (serial composition)."""
        return ExecutionResult(
            total_time=self.total_time + other.total_time,
            cpu_blocked_time=self.cpu_blocked_time + other.cpu_blocked_time,
            load_time=self.load_time + other.load_time,
            compute_time=self.compute_time + other.compute_time,
            control_time=self.control_time + other.control_time,
            phases=self.phases + other.phases,
            traces=self.traces + other.traces,
            dram_bytes=self.dram_bytes + other.dram_bytes,
            elements=self.elements + other.elements,
        )


class TwoPhaseExecutor:
    """Runs chunked operations under a given memory controller."""

    def __init__(self, controller: _ControllerBase) -> None:
        self.controller = controller

    # ------------------------------------------------------------------
    # Fault-tolerant control interactions
    # ------------------------------------------------------------------
    def _launch_with_retry(self, request: LaunchRequest) -> ControlCost:
        """Launch ``request``, re-issuing after transient launch faults.

        Dropped or garbled launches (fault injection) leave the
        controller un-armed; the CPU detects this, waits an exponential
        backoff in *simulated* time, and re-issues — all charged to the
        query's control time. Exhausting the retry budget raises
        :class:`~repro.errors.QueryError`.
        """
        cpu_time = 0.0
        handover = 0.0
        for attempt in range(MAX_FAULT_RETRIES + 1):
            cost = self.controller.launch(request)
            cpu_time += cost.cpu_time
            handover += cost.handover_time
            if self.controller.last_launch_accepted:
                return ControlCost(cpu_time, handover)
            inj = faults.active()
            inj.detect(self.controller.last_launch_fault or fault_plan.DROP_LAUNCH)
            backoff = RETRY_BACKOFF_BASE_NS * (2.0 ** attempt)
            inj.retry(backoff)
            cpu_time += backoff
        raise QueryError(
            f"{request.op.name} launch not accepted after "
            f"{MAX_FAULT_RETRIES} retries (injected control faults)"
        )

    def _poll_with_retry(self) -> ControlCost:
        """Poll until the controller reports done, with bounded backoff."""
        cpu_time = 0.0
        for attempt in range(MAX_FAULT_RETRIES + 1):
            cost = self.controller.poll()
            cpu_time += cost.cpu_time
            if self.controller.last_poll_done:
                return ControlCost(cpu_time, 0.0)
            inj = faults.active()
            inj.detect(fault_plan.POLL_NOT_DONE)
            backoff = RETRY_BACKOFF_BASE_NS * (2.0 ** attempt)
            inj.retry(backoff)
            cpu_time += backoff
        raise QueryError(
            f"poll still not done after {MAX_FAULT_RETRIES} retries "
            "(injected control faults)"
        )

    def execute(self, op: ChunkedOperation) -> ExecutionResult:
        """Run all phases of ``op``; returns aggregate timing.

        Per-phase wall time is the slowest unit (units run in parallel);
        CPU-blocked time counts control traffic and load phases always,
        and compute phases only when the controller keeps banks locked
        (the original architecture).
        """
        units = list(op.participating_units())
        if not units:
            raise QueryError("chunked operation has no participating units")
        result = ExecutionResult()
        bytes_before = sum(
            u.stats.dram_bytes_read + u.stats.dram_bytes_written for u in units
        )
        elements_before = sum(u.stats.elements_processed for u in units)
        blocking_compute = self.controller.locks_banks_during_compute
        tel = telemetry.active()
        # The controller records its own pim.control spans as launches and
        # polls happen, so phase spans recorded here in execution order
        # interleave with them on one coherent timeline. Per-unit detail
        # spans (parallel lanes under each phase) are opt-in via the
        # registry's detail_spans flag — the profiler turns it on.
        detail = tel.enabled and tel.detail_spans
        # One offload spans every phase: the original architecture pays
        # its bank handover here (once) and holds the banks throughout.
        begin_cost = self.controller.begin_offload()
        result.total_time += begin_cost.total
        result.control_time += begin_cost.total
        result.cpu_blocked_time += begin_cost.total
        inj = faults.active()
        for chunk in range(op.num_chunks()):
            load_req = op.load_request(chunk)
            if load_req.op != OpType.LS and load_req.op != OpType.DEFRAGMENT:
                raise QueryError(f"load phase must be LS/Defragment, got {load_req.op.name}")
            launch_cost = self._launch_with_retry(load_req)
            unit_load_times = [(unit, op.load(unit, chunk)) for unit in units]
            load_time = max(t for _, t in unit_load_times)
            self.controller.finish(load_req)
            if tel.enabled:
                span = tel.record_span(
                    "pim.phase.load",
                    load_time,
                    {"chunk": chunk, "op": load_req.op.name},
                )
                if detail:
                    self._record_unit_spans(
                        tel, "pim.unit.load", span.start, chunk, unit_load_times
                    )
            poll_cost = self._poll_with_retry()

            compute_req = op.compute_request(chunk)
            if compute_req.op.needs_bank_handover:
                raise QueryError(
                    f"compute phase must be WRAM-only, got {compute_req.op.name}"
                )
            op_name = compute_req.op.name
            c_launch_cost = self._launch_with_retry(compute_req)
            unit_compute_times = [(unit, op.compute(unit, chunk)) for unit in units]
            compute_time = max(t for _, t in unit_compute_times)
            self.controller.finish(compute_req)
            if tel.enabled:
                span = tel.record_span(
                    "pim.phase.compute",
                    compute_time,
                    {"chunk": chunk, "op": op_name},
                )
                if detail:
                    self._record_unit_spans(
                        tel, "pim.unit.compute", span.start, chunk, unit_compute_times
                    )
            c_poll_cost = self._poll_with_retry()

            reissue_control = 0.0
            reissue_compute = 0.0
            if inj.enabled and inj.fire(fault_plan.CHUNK_REISSUE):
                # The WRAM-resident chunk is re-issued: the units recompute
                # the same staged data (results are overwritten, not
                # accumulated — the chunk stays loaded), so only the extra
                # launch/poll round and compute time are charged.
                inj.detect(fault_plan.CHUNK_REISSUE)
                r_launch = self._launch_with_retry(compute_req)
                self.controller.finish(compute_req)
                if tel.enabled:
                    tel.record_span(
                        "pim.phase.compute",
                        compute_time,
                        {"chunk": chunk, "op": op_name, "reissue": True},
                    )
                r_poll = self._poll_with_retry()
                reissue_control = r_launch.total + r_poll.total
                reissue_compute = compute_time

            control = (
                launch_cost.total
                + poll_cost.total
                + c_launch_cost.total
                + c_poll_cost.total
                + reissue_control
            )
            compute_total = compute_time + reissue_compute
            result.total_time += control + load_time + compute_total
            result.load_time += load_time
            result.compute_time += compute_total
            result.control_time += control
            blocked = launch_cost.total + load_time + poll_cost.cpu_time
            blocked += c_launch_cost.total + c_poll_cost.cpu_time
            blocked += reissue_control
            if blocking_compute:
                blocked += compute_total
            result.cpu_blocked_time += blocked
            result.phases += 1
            result.traces.append(PhaseTrace(chunk, control, load_time, compute_total))
            if tel.enabled:
                tel.counter("pim.executor.phases").inc()
            if inj.enabled and inj.fire(fault_plan.INTERRUPT_OFFLOAD):
                # The offload is interrupted at the chunk boundary (e.g. a
                # higher-priority CPU burst): bank control returns to the
                # CPU and the offload is re-opened, re-paying any per-
                # offload handover the controller charges.
                inj.detect(fault_plan.INTERRUPT_OFFLOAD)
                stop_cost = self.controller.end_offload()
                resume_cost = self.controller.begin_offload()
                extra = stop_cost.total + resume_cost.total
                result.total_time += extra
                result.control_time += extra
                result.cpu_blocked_time += extra
        end_cost = self.controller.end_offload()
        result.total_time += end_cost.total
        result.control_time += end_cost.total
        result.cpu_blocked_time += end_cost.total
        result.dram_bytes = (
            sum(u.stats.dram_bytes_read + u.stats.dram_bytes_written for u in units)
            - bytes_before
        )
        result.elements = sum(u.stats.elements_processed for u in units) - elements_before
        if tel.enabled:
            tel.counter("pim.executor.offloads").inc()
        return result

    @staticmethod
    def _record_unit_spans(tel, name, phase_start, chunk, unit_times) -> None:
        """Per-unit parallel lanes under one phase span.

        Units run concurrently, so each unit span starts with the phase
        and carries its own duration; explicit starts keep the serial
        cursor untouched.
        """
        for unit, unit_time in unit_times:
            if unit_time <= 0.0:
                continue
            tel.record_span(
                name,
                unit_time,
                {
                    "chunk": chunk,
                    "unit": unit.unit_id,
                    "device": unit.bank.device.index,
                    "bank": unit.bank.index,
                },
                start=phase_start,
            )
