"""Launch/poll request encoding (§6.1, Fig. 7b).

PUSHtap's CPU controls PIM units with two request kinds disguised as
normal memory accesses to a preconfigured special physical address:

* **launch** — a 64 B memory *write* whose payload is ``type (1 B)`` +
  ``input parameters (63 B)``;
* **poll** — a memory *read* of the same address; the polling module
  answers once all PIM units have finished.

The per-operation parameter fields and their byte widths follow Fig. 7b
exactly. Load-phase operations (``LS``, ``Defragment``) hand DRAM bank
control to the PIM units; compute operations run out of WRAM with the CPU
retaining bank control.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Mapping, Tuple

from repro.errors import ProtocolError

__all__ = [
    "OpType",
    "LaunchRequest",
    "PollRequest",
    "REQUEST_BYTES",
    "FIELD_SPECS",
    "encode_launch",
    "decode_launch",
]

#: Size of one launch request payload (one cache line).
REQUEST_BYTES = 64


class OpType(IntEnum):
    """PIM operation types (Fig. 7b)."""

    LS = 1
    DEFRAGMENT = 2
    FILTER = 3
    GROUP = 4
    AGGREGATION = 5
    HASH = 6
    JOIN = 7

    @property
    def needs_bank_handover(self) -> bool:
        """Whether the scheduler hands DRAM bank control to PIM units.

        Only the load-phase operations touch DRAM; compute operations run
        entirely out of WRAM (§6.1).
        """
        return self in (OpType.LS, OpType.DEFRAGMENT)


#: Parameter field layouts: op type → ordered (name, byte width) pairs.
FIELD_SPECS: Dict[OpType, Tuple[Tuple[str, int], ...]] = {
    OpType.LS: (
        ("result_addr", 3),
        ("result_len", 2),
        ("result_offset", 2),
        ("result_stride", 2),
        ("op0_addr", 3),
        ("op0_len", 2),
        ("op0_offset", 2),
        ("op0_stride", 2),
    ),
    OpType.DEFRAGMENT: (
        ("meta_addr", 3),
        ("data_addr", 3),
        ("data_stride", 2),
        ("delta_addr", 3),
        ("delta_stride", 2),
    ),
    OpType.FILTER: (
        ("bitmap_offset", 2),
        ("data_offset", 2),
        ("result_offset", 2),
        ("data_width", 1),
        ("condition", 8),
    ),
    OpType.GROUP: (
        ("bitmap_offset", 2),
        ("data_offset", 2),
        ("dict_offset", 2),
        ("result_offset", 2),
        ("data_width", 1),
    ),
    OpType.AGGREGATION: (
        ("bitmap_offset", 2),
        ("data_offset", 2),
        ("index_offset", 2),
        ("result_offset", 2),
        ("data_width", 1),
    ),
    OpType.HASH: (
        ("bitmap_offset", 2),
        ("data_offset", 2),
        ("result_offset", 2),
        ("hash_function", 4),
        ("data_width", 1),
    ),
    OpType.JOIN: (
        ("hash1_offset", 2),
        ("hash2_offset", 2),
        ("result_offset", 2),
        ("data_width", 1),
    ),
}


@dataclass(frozen=True)
class LaunchRequest:
    """A decoded launch request: operation type plus named parameters."""

    op: OpType
    params: Mapping[str, int]

    def __post_init__(self) -> None:
        spec = FIELD_SPECS[self.op]
        names = [name for name, _ in spec]
        unknown = set(self.params) - set(names)
        if unknown:
            raise ProtocolError(f"{self.op.name}: unknown fields {sorted(unknown)}")
        for name, width in spec:
            value = self.params.get(name, 0)
            if not isinstance(value, int) or value < 0:
                raise ProtocolError(f"{self.op.name}.{name}: must be a non-negative int")
            if value >= (1 << (8 * width)):
                raise ProtocolError(
                    f"{self.op.name}.{name}: value {value} exceeds {width}-byte field"
                )

    def get(self, name: str) -> int:
        """Return a parameter, defaulting omitted fields to 0."""
        if all(name != n for n, _ in FIELD_SPECS[self.op]):
            raise ProtocolError(f"{self.op.name} has no field {name!r}")
        return int(self.params.get(name, 0))

    def encode(self) -> bytes:
        """Encode to the 64 B payload written to the special address."""
        return encode_launch(self)


@dataclass(frozen=True)
class PollRequest:
    """A poll request — a read of the special address; carries no payload."""

    def encode(self) -> bytes:
        """Poll requests read, rather than write, the special address."""
        return b""


def encode_launch(request: LaunchRequest) -> bytes:
    """Encode a :class:`LaunchRequest` into 64 bytes per Fig. 7b."""
    out = bytearray(REQUEST_BYTES)
    out[0] = int(request.op)
    pos = 1
    for name, width in FIELD_SPECS[request.op]:
        value = request.get(name)
        out[pos : pos + width] = value.to_bytes(width, "little")
        pos += width
    if pos > REQUEST_BYTES:
        raise ProtocolError(
            f"{request.op.name}: fields occupy {pos} bytes, exceeding {REQUEST_BYTES}"
        )
    return bytes(out)


def decode_launch(payload: bytes) -> LaunchRequest:
    """Decode a 64 B payload back into a :class:`LaunchRequest`."""
    if len(payload) != REQUEST_BYTES:
        raise ProtocolError(
            f"launch payload must be {REQUEST_BYTES} bytes, got {len(payload)}"
        )
    try:
        op = OpType(payload[0])
    except ValueError:
        raise ProtocolError(f"unknown op type byte {payload[0]}") from None
    params: Dict[str, int] = {}
    pos = 1
    for name, width in FIELD_SPECS[op]:
        params[name] = int.from_bytes(payload[pos : pos + width], "little")
        pos += width
    trailing: List[int] = [b for b in payload[pos:] if b]
    if trailing:
        raise ProtocolError(f"{op.name}: non-zero trailing bytes {trailing}")
    return LaunchRequest(op, params)
