"""CH-benCHmark schema and query column-usage map (§7.1).

CH-benCHmark combines TPC-C's nine tables (OLTP side) with TPC-H's 22
analytical queries adapted to that schema. The paper gives anchor points
we reproduce exactly:

* CUSTOMER column widths range 2–9 B for the Fig. 3/4 example columns;
  overall CH column widths span 2–152 B (§8; ``c_data`` is the 152 B
  extreme, ``ol_amount`` the 8 B example).
* The Q1-only key-column subset has 4 columns; Q1–Q3 has 32 (§7.2).
* ``c_id`` is scanned by 8 queries and ``c_state`` by 3 (§4.2).

The exact per-query column sets the authors used are not published; these
are reconstructed from the TPC-H query semantics over the TPC-C schema
(suppliers/nations folded onto warehouse/stock as CH does).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import SchemaError
from repro.format.schema import Column, TableSchema

__all__ = [
    "TABLE_NAMES",
    "PAPER_ROW_COUNTS",
    "ch_schema",
    "ch_table",
    "query_columns",
    "key_columns_for",
    "column_scan_weights",
    "all_queries",
    "row_counts",
]

#: The nine TPC-C tables.
TABLE_NAMES = (
    "warehouse",
    "district",
    "customer",
    "history",
    "neworder",
    "order",
    "orderline",
    "item",
    "stock",
)

#: Row counts used in the paper's evaluation (§7.1), scale = 1.0.
PAPER_ROW_COUNTS: Dict[str, int] = {
    "item": 20_000_000,
    "stock": 20_000_000,
    "customer": 6_000_000,
    "order": 6_000_000,
    "orderline": 60_000_000,
    "neworder": 60_000_000,
    "history": 6_000_000,
    "warehouse": 2_000,
    "district": 20_000,
}


def _int(name: str, width: int) -> Column:
    return Column(name, width, kind="int")


def _chars(name: str, width: int) -> Column:
    return Column(name, width, kind="bytes")


_SCHEMAS: Dict[str, TableSchema] = {
    "warehouse": TableSchema.of(
        "warehouse",
        [
            _int("w_id", 2),
            _chars("w_name", 10),
            _chars("w_street_1", 20),
            _chars("w_street_2", 20),
            _chars("w_city", 20),
            _int("w_state", 2),
            _chars("w_zip", 9),
            _int("w_tax", 3),
            _int("w_ytd", 6),
        ],
    ),
    "district": TableSchema.of(
        "district",
        [
            _int("d_id", 2),
            _int("d_w_id", 2),
            _chars("d_name", 10),
            _chars("d_street_1", 20),
            _chars("d_street_2", 20),
            _chars("d_city", 20),
            _int("d_state", 2),
            _chars("d_zip", 9),
            _int("d_tax", 3),
            _int("d_ytd", 6),
            _int("d_next_o_id", 4),
        ],
    ),
    "customer": TableSchema.of(
        "customer",
        [
            _int("c_id", 4),
            _int("c_d_id", 2),
            _int("c_w_id", 2),
            _chars("c_first", 16),
            _chars("c_middle", 2),
            _chars("c_last", 16),
            _chars("c_street_1", 20),
            _chars("c_street_2", 20),
            _chars("c_city", 20),
            _int("c_state", 2),
            _chars("c_zip", 9),
            _chars("c_phone", 16),
            _int("c_since", 6),
            _int("c_credit", 2),
            _int("c_credit_lim", 6),
            _int("c_discount", 3),
            _int("c_balance", 6),
            _int("c_ytd_payment", 6),
            _int("c_payment_cnt", 2),
            _int("c_delivery_cnt", 2),
            _chars("c_data", 152),
        ],
    ),
    "history": TableSchema.of(
        "history",
        [
            _int("h_c_id", 4),
            _int("h_c_d_id", 2),
            _int("h_c_w_id", 2),
            _int("h_d_id", 2),
            _int("h_w_id", 2),
            _int("h_date", 6),
            _int("h_amount", 5),
            _chars("h_data", 24),
        ],
    ),
    "neworder": TableSchema.of(
        "neworder",
        [
            _int("no_o_id", 4),
            _int("no_d_id", 2),
            _int("no_w_id", 2),
        ],
    ),
    "order": TableSchema.of(
        "order",
        [
            _int("o_id", 4),
            _int("o_d_id", 2),
            _int("o_w_id", 2),
            _int("o_c_id", 4),
            _int("o_entry_d", 6),
            _int("o_carrier_id", 2),
            _int("o_ol_cnt", 2),
            _int("o_all_local", 2),
        ],
    ),
    "orderline": TableSchema.of(
        "orderline",
        [
            _int("ol_o_id", 4),
            _int("ol_d_id", 2),
            _int("ol_w_id", 2),
            _int("ol_number", 2),
            _int("ol_i_id", 4),
            _int("ol_supply_w_id", 2),
            _int("ol_delivery_d", 6),
            _int("ol_quantity", 2),
            _int("ol_amount", 8),
            _chars("ol_dist_info", 24),
        ],
    ),
    "item": TableSchema.of(
        "item",
        [
            _int("i_id", 4),
            _int("i_im_id", 3),
            _chars("i_name", 24),
            _int("i_price", 3),
            _chars("i_data", 50),
        ],
    ),
    "stock": TableSchema.of(
        "stock",
        [
            _int("s_i_id", 4),
            _int("s_w_id", 2),
            _int("s_quantity", 2),
            _chars("s_dist_01", 24),
            _chars("s_dist_02", 24),
            _chars("s_dist_03", 24),
            _chars("s_dist_04", 24),
            _chars("s_dist_05", 24),
            _chars("s_dist_06", 24),
            _chars("s_dist_07", 24),
            _chars("s_dist_08", 24),
            _chars("s_dist_09", 24),
            _chars("s_dist_10", 24),
            _int("s_ytd", 5),
            _int("s_order_cnt", 2),
            _int("s_remote_cnt", 2),
            _chars("s_data", 50),
        ],
    ),
}

#: Columns each analytical query scans, reconstructed from TPC-H-over-CH.
#: Anchors: Q1 alone → 4 key columns; Q1–Q3 cumulative → 32; c_id in 8
#: queries; c_state in 3.
_QUERY_COLUMNS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "Q1": {"orderline": ("ol_number", "ol_quantity", "ol_amount", "ol_delivery_d")},
    "Q2": {
        "item": ("i_id", "i_im_id", "i_price"),
        "stock": ("s_i_id", "s_w_id", "s_quantity", "s_ytd", "s_order_cnt", "s_remote_cnt"),
    },
    "Q3": {
        "customer": ("c_id", "c_d_id", "c_w_id", "c_state", "c_balance", "c_since", "c_discount"),
        "order": ("o_id", "o_d_id", "o_w_id", "o_c_id", "o_entry_d", "o_carrier_id", "o_ol_cnt"),
        "orderline": ("ol_o_id", "ol_d_id", "ol_w_id", "ol_i_id", "ol_supply_w_id"),
    },
    "Q4": {
        "order": ("o_id", "o_d_id", "o_w_id", "o_entry_d", "o_ol_cnt"),
        "orderline": ("ol_o_id", "ol_d_id", "ol_w_id", "ol_delivery_d"),
    },
    "Q5": {
        "customer": ("c_id", "c_d_id", "c_w_id", "c_state"),
        "warehouse": ("w_id", "w_state"),
        "order": ("o_id", "o_d_id", "o_w_id", "o_c_id", "o_entry_d"),
        "orderline": ("ol_o_id", "ol_d_id", "ol_w_id", "ol_amount", "ol_supply_w_id"),
        "stock": ("s_i_id", "s_w_id"),
    },
    "Q6": {"orderline": ("ol_delivery_d", "ol_quantity", "ol_amount")},
    "Q7": {
        "customer": ("c_id", "c_d_id", "c_w_id"),
        "order": ("o_id", "o_d_id", "o_w_id", "o_c_id", "o_entry_d"),
        "orderline": ("ol_o_id", "ol_d_id", "ol_w_id", "ol_supply_w_id", "ol_amount", "ol_delivery_d"),
        "stock": ("s_i_id", "s_w_id"),
    },
    "Q8": {
        "customer": ("c_id", "c_d_id", "c_w_id"),
        "warehouse": ("w_id",),
        "item": ("i_id", "i_price"),
        "order": ("o_id", "o_d_id", "o_w_id", "o_c_id", "o_entry_d"),
        "orderline": ("ol_o_id", "ol_d_id", "ol_w_id", "ol_i_id", "ol_amount", "ol_supply_w_id"),
        "stock": ("s_i_id", "s_w_id"),
    },
    "Q9": {
        "item": ("i_id", "i_im_id"),
        "warehouse": ("w_id", "w_state"),
        "order": ("o_id", "o_d_id", "o_w_id", "o_entry_d"),
        "orderline": ("ol_o_id", "ol_d_id", "ol_w_id", "ol_i_id", "ol_amount", "ol_supply_w_id"),
        "stock": ("s_i_id", "s_w_id"),
    },
    "Q10": {
        "customer": ("c_id", "c_d_id", "c_w_id", "c_balance"),
        "order": ("o_id", "o_d_id", "o_w_id", "o_c_id", "o_entry_d"),
        "orderline": ("ol_o_id", "ol_d_id", "ol_w_id", "ol_amount", "ol_delivery_d"),
    },
    "Q11": {"stock": ("s_i_id", "s_w_id", "s_order_cnt", "s_quantity")},
    "Q12": {
        "order": ("o_id", "o_d_id", "o_w_id", "o_entry_d", "o_carrier_id", "o_ol_cnt"),
        "orderline": ("ol_o_id", "ol_d_id", "ol_w_id", "ol_delivery_d"),
    },
    "Q13": {
        "customer": ("c_id", "c_d_id", "c_w_id"),
        "order": ("o_id", "o_d_id", "o_w_id", "o_c_id", "o_carrier_id"),
    },
    "Q14": {
        "item": ("i_id", "i_price"),
        "orderline": ("ol_i_id", "ol_amount", "ol_delivery_d"),
    },
    "Q15": {
        "orderline": ("ol_supply_w_id", "ol_amount", "ol_delivery_d"),
        "stock": ("s_i_id", "s_w_id"),
    },
    "Q16": {
        "item": ("i_id", "i_im_id", "i_price"),
        "stock": ("s_i_id", "s_w_id", "s_quantity"),
    },
    "Q17": {
        "item": ("i_id", "i_im_id"),
        "orderline": ("ol_i_id", "ol_quantity", "ol_amount"),
    },
    "Q18": {
        "customer": ("c_id", "c_d_id", "c_w_id"),
        "order": ("o_id", "o_d_id", "o_w_id", "o_c_id", "o_ol_cnt"),
        "orderline": ("ol_o_id", "ol_d_id", "ol_w_id", "ol_amount", "ol_quantity"),
    },
    "Q19": {
        "item": ("i_id", "i_price", "i_im_id"),
        "orderline": ("ol_i_id", "ol_quantity", "ol_amount", "ol_w_id"),
    },
    "Q20": {
        "item": ("i_id",),
        "orderline": ("ol_i_id", "ol_delivery_d", "ol_quantity"),
        "stock": ("s_i_id", "s_w_id", "s_quantity"),
    },
    "Q21": {
        "warehouse": ("w_id", "w_state"),
        "order": ("o_id", "o_d_id", "o_w_id", "o_entry_d"),
        "orderline": ("ol_o_id", "ol_d_id", "ol_w_id", "ol_delivery_d", "ol_supply_w_id"),
        "stock": ("s_i_id", "s_w_id"),
    },
    "Q22": {
        "customer": ("c_id", "c_d_id", "c_w_id", "c_state", "c_balance"),
        "district": ("d_id", "d_w_id"),
        "order": ("o_id", "o_d_id", "o_w_id", "o_c_id"),
    },
}


def ch_schema() -> Dict[str, TableSchema]:
    """All nine table schemas, keyed by table name."""
    return dict(_SCHEMAS)


def ch_table(name: str) -> TableSchema:
    """One table's schema."""
    try:
        return _SCHEMAS[name]
    except KeyError:
        raise SchemaError(f"unknown CH table {name!r}") from None


def all_queries() -> List[str]:
    """Query names Q1..Q22, in order."""
    return [f"Q{i}" for i in range(1, 23)]


def query_columns(query: str) -> Dict[str, Tuple[str, ...]]:
    """Columns a query scans, per table."""
    try:
        return dict(_QUERY_COLUMNS[query])
    except KeyError:
        raise SchemaError(f"unknown CH query {query!r}") from None


def key_columns_for(queries: Sequence[str], table: str) -> List[str]:
    """Union of columns the given queries scan in ``table``.

    Order follows the table's schema, matching the deterministic layout
    generation.
    """
    schema = ch_table(table)
    used = set()
    for query in queries:
        used.update(query_columns(query).get(table, ()))
    unknown = used - set(schema.column_names)
    if unknown:
        raise SchemaError(f"query columns {sorted(unknown)} not in table {table!r}")
    return [c for c in schema.column_names if c in used]


def column_scan_weights(queries: Sequence[str], table: str) -> Dict[str, int]:
    """How many of the given queries scan each column of ``table``."""
    weights: Dict[str, int] = {}
    for query in queries:
        for column in query_columns(query).get(table, ()):
            weights[column] = weights.get(column, 0) + 1
    return weights


def row_counts(scale: float) -> Dict[str, int]:
    """Paper row counts scaled by ``scale`` (min 1 row, min 1 warehouse).

    DISTRICT is derived as 10 per warehouse after scaling so the
    warehouse→district→customer foreign keys stay consistent at any
    scale (the generators assign ``d_id = i % 10 + 1``).
    """
    if scale <= 0:
        raise SchemaError("scale must be positive")
    counts = {name: max(1, int(count * scale)) for name, count in PAPER_ROW_COUNTS.items()}
    counts["district"] = counts["warehouse"] * 10
    return counts
