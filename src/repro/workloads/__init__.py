"""PUSHtap reproduction subpackage."""
