"""Mixed HTAP workload driver (§7.3.3's measurement methodology).

Interleaves TPC-C transactions with analytical queries at a configured
ratio and reports throughput in the paper's units — tpmC (transactions
per minute) and QphH (queries per hour) — computed over *simulated* time,
so the numbers reflect the modelled system rather than the Python host.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.engine import PushTapEngine
from repro.errors import ConfigError
from repro.faults import injector as faults
from repro.oltp.engine import TxnContext
from repro.telemetry import registry as telemetry
from repro.telemetry.metrics import Histogram
from repro.units import S

__all__ = ["WorkloadReport", "MixedWorkload", "WorkloadSession"]


@dataclass
class WorkloadReport:
    """Throughput and latency summary of one mixed run.

    Per-query latencies are kept in telemetry histograms (one per query
    type), so the report exposes quantiles as well as the historical
    list/mean API.
    """

    transactions: int = 0
    aborted: int = 0
    queries: int = 0
    oltp_time: float = 0.0
    olap_time: float = 0.0
    defrag_time: float = 0.0
    #: The remote-warehouse scaling the driver ran with (1.0 = the
    #: TPC-C spec rates) plus its observed remote-traffic counters —
    #: how many payments/new orders actually crossed warehouses.
    remote_fraction: float = 1.0
    payments: int = 0
    remote_payments: int = 0
    new_orders: int = 0
    remote_new_orders: int = 0
    order_lines: int = 0
    remote_order_lines: int = 0
    query_histograms: Dict[str, Histogram] = field(default_factory=dict)
    #: End-to-end latency of every executed transaction (ns). In batch
    #: mode there is no queue, so end-to-end equals execution time — the
    #: serve layer records the same metric with queue wait included,
    #: which makes batch-mode and serve-mode latency directly comparable.
    txn_histogram: Histogram = field(
        default_factory=lambda: Histogram("workload.txn.latency_ns")
    )

    @property
    def simulated_time(self) -> float:
        """Total simulated wall time (serial engine) in ns."""
        return self.oltp_time + self.olap_time + self.defrag_time

    @property
    def committed(self) -> int:
        """Transactions that committed (executed minus aborted)."""
        return self.transactions - self.aborted

    @property
    def oltp_tpmc(self) -> float:
        """Committed transactions per simulated minute.

        Aborted transactions consume time but do not count — the
        standard tpmC definition (an abort storm must not *raise*
        reported throughput just because aborts are cheap).
        """
        if self.simulated_time == 0:
            return 0.0
        return self.committed / self.simulated_time * S * 60.0

    @property
    def olap_qphh(self) -> float:
        """Queries per simulated hour."""
        if self.simulated_time == 0:
            return 0.0
        return self.queries / self.simulated_time * S * 3600.0

    @property
    def query_latencies(self) -> Dict[str, List[float]]:
        """Per-query-type latency samples (ns), in observation order."""
        return {name: h.samples for name, h in self.query_histograms.items()}

    def observe_query(self, name: str, latency: float) -> None:
        """Record one query latency sample."""
        self.query_histogram(name).observe(latency)

    def query_histogram(self, name: str) -> Histogram:
        """The latency histogram of one query type (empty if never run).

        The histogram is registered on first access, so observations made
        through the returned handle are retained by the report rather
        than silently dropped.
        """
        hist = self.query_histograms.get(name)
        if hist is None:
            hist = self.query_histograms[name] = Histogram(
                f"workload.query.{name}.latency_ns"
            )
        return hist

    def observe_txn(self, latency: float) -> None:
        """Record one transaction's end-to-end latency sample (ns)."""
        self.txn_histogram.observe(latency)
        tel = telemetry.active()
        if tel.enabled:
            tel.histogram("workload.txn.latency_ns").observe(latency)

    def mean_query_latency(self, name: str) -> float:
        """Average simulated latency of one query type."""
        return self.query_histogram(name).mean


class MixedWorkload:
    """Drives an engine with a transaction/query mix.

    ``txns_per_query`` sets the interleaving (the paper's query scheduler
    issues analytical queries between transaction batches); ``queries``
    cycles through the named analytical queries.
    """

    def __init__(
        self,
        engine: PushTapEngine,
        txns_per_query: int = 50,
        queries: Sequence[str] = ("Q1", "Q6", "Q9"),
        seed: int = 11,
        payment_fraction: float = 0.5,
        delivery_fraction: float = 0.0,
        remote_fraction: float = 1.0,
        invariant_checker=None,
    ) -> None:
        if txns_per_query < 0:
            raise ConfigError("txns_per_query must be non-negative")
        if not queries:
            raise ConfigError("at least one analytical query is required")
        self.engine = engine
        self.txns_per_query = txns_per_query
        self.queries = list(queries)
        # The mix fractions go through make_driver → the TPCCDriver
        # constructor, so its validation applies (an invalid
        # payment/delivery/remote mix raises instead of being assigned
        # blindly).
        self.driver = engine.make_driver(
            seed=seed,
            payment_fraction=payment_fraction,
            delivery_fraction=delivery_fraction,
            remote_fraction=remote_fraction,
        )
        #: Optional :class:`~repro.faults.invariants.InvariantChecker`,
        #: consulted after every injected fault and at interval ends.
        self.invariant_checker = invariant_checker
        self._query_cursor = 0

    def _maybe_check(self, force: bool = False) -> None:
        """Run the invariant checker at a safe point.

        Checks run when fault injection reports pending (injected) faults
        since the last check, or unconditionally with ``force`` (interval
        boundaries).
        """
        checker = self.invariant_checker
        if checker is None:
            return
        pending = faults.active().take_pending_checks()
        if pending or force:
            checker.check()

    def run(self, num_queries: int) -> WorkloadReport:
        """Run ``num_queries`` query intervals; returns the report."""
        report = WorkloadReport()
        engine = self.engine
        tel = telemetry.active()
        defrag_before = engine.stats.defrag_time
        for interval in range(num_queries):
            t0 = tel.sim_time if tel.enabled else 0.0
            for _ in range(self.txns_per_query):
                txn = self.driver.next_transaction()
                result = engine.execute_transaction(txn)
                report.transactions += 1
                if result.aborted:
                    report.aborted += 1
                    self.driver.note_abort(txn)
                report.oltp_time += result.total_time
                report.observe_txn(result.total_time)
                self._maybe_check()
            name = self.queries[self._query_cursor % len(self.queries)]
            self._query_cursor += 1
            query = engine.query(name)
            report.queries += 1
            report.olap_time += query.total_time
            report.observe_query(name, query.total_time)
            self._maybe_check(force=True)
            if tel.enabled:
                # Wrapper over the whole txn-batch + query interval; the
                # explicit start keeps the cursor where the sub-spans
                # left it.
                tel.record_span(
                    "workload.interval",
                    tel.sim_time - t0,
                    {"interval": interval, "query": name},
                    start=t0,
                )
        report.defrag_time = engine.stats.defrag_time - defrag_before
        driver = self.driver
        report.remote_fraction = driver.remote_fraction
        report.payments = driver.payments
        report.remote_payments = driver.remote_payments
        report.new_orders = driver.new_orders
        report.remote_new_orders = driver.remote_new_orders
        report.order_lines = driver.order_lines
        report.remote_order_lines = driver.remote_order_lines
        if tel.enabled:
            tel.counter("workload.intervals").inc(num_queries)
            tel.gauge("workload.oltp_tpmc").set(report.oltp_tpmc)
            tel.gauge("workload.olap_qphh").set(report.olap_qphh)
        return report


def _derive_seed(seed: int, label: str) -> int:
    """Per-label RNG seed (CRC-32 derivation, the tpcc_gen idiom)."""
    return (int(seed) ^ zlib.crc32(label.encode("ascii"))) & 0x7FFF_FFFF


class WorkloadSession:
    """Per-client request generation for the serve layer.

    One session owns a seeded :class:`~repro.oltp.tpcc.TPCCDriver` plus
    an independent request-kind stream, so N concurrent tenants draw
    from N decoupled random streams: adding a tenant (or reordering
    service) never perturbs another tenant's request sequence. Requests
    are ``("oltp", txn_closure)`` or ``("olap", query_name)`` pairs.
    """

    def __init__(
        self,
        engine: PushTapEngine,
        tenant: int,
        num_tenants: int = 1,
        seed: int = 11,
        olap_fraction: float = 0.05,
        queries: Sequence[str] = ("Q1", "Q6", "Q9"),
        payment_fraction: float = 0.5,
        delivery_fraction: float = 0.0,
    ) -> None:
        if not 0.0 <= olap_fraction <= 1.0:
            raise ConfigError("olap_fraction must be in [0, 1]")
        if not 0 <= tenant < num_tenants:
            raise ConfigError("tenant index must be in [0, num_tenants)")
        if not queries:
            raise ConfigError("at least one analytical query is required")
        self.tenant = int(tenant)
        self.olap_fraction = olap_fraction
        self.queries = list(queries)
        # Striding the order-id space keeps N drivers over one database
        # from ever colliding on an order key.
        self.driver = engine.make_driver(
            seed=_derive_seed(seed, f"tenant{tenant}.workload"),
            payment_fraction=payment_fraction,
            delivery_fraction=delivery_fraction,
            o_id_offset=int(tenant),
            o_id_stride=int(num_tenants),
        )
        self._kind_rng = np.random.RandomState(
            _derive_seed(seed, f"tenant{tenant}.kind")
        )
        self._query_cursor = 0
        self.generated = 0

    def next_request(self) -> Tuple[str, object]:
        """The session's next request: kind plus its payload."""
        self.generated += 1
        if self._kind_rng.random_sample() < self.olap_fraction:
            name = self.queries[self._query_cursor % len(self.queries)]
            self._query_cursor += 1
            return ("olap", name)
        return ("oltp", self.driver.next_transaction())

    def note_abort(self, txn: Callable[[TxnContext], None]) -> None:
        """Forward an abort to the TPC-C driver's bookkeeping."""
        self.driver.note_abort(txn)
