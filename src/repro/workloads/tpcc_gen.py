"""Deterministic TPC-C / CH-benCHmark data generation.

Generates table rows with consistent foreign keys at any scale. Values
follow TPC-C's ranges where they matter to the queries (item ids, delivery
dates, quantities, amounts); text columns get cheap deterministic filler.
All randomness is seeded, so tests and benchmarks are reproducible.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator, List

import numpy as np

from repro.errors import SchemaError
from repro.format.schema import Value
from repro.workloads.chbench import ch_table, row_counts

__all__ = [
    "DATE_EPOCH",
    "DATE_HORIZON",
    "generate_table",
    "generate_database",
]

#: Synthetic date range (days) used for *_d / *_date columns.
DATE_EPOCH = 1_000
DATE_HORIZON = 3_000


def _table_seed(table: str, seed: int) -> int:
    """Per-table RNG seed derived from a *stable* hash of the name.

    Using the name's content (CRC-32, stable across processes — unlike
    ``hash()``) rather than its length keeps same-length tables such as
    ``stock``/``order`` on distinct, uncorrelated RNG streams while
    preserving determinism for a fixed ``seed``.
    """
    return (seed * 0x9E3779B1 + zlib.crc32(table.encode("utf-8"))) % (1 << 32)


def _filler(rng: np.random.RandomState, width: int) -> bytes:
    return bytes(rng.randint(65, 91, size=width, dtype=np.uint8))


def generate_table(
    table: str, counts: Dict[str, int], seed: int = 7
) -> Iterator[Dict[str, Value]]:
    """Yield ``counts[table]`` rows for ``table``.

    ``counts`` must contain every table so foreign keys stay in range
    (e.g. ``ol_i_id`` points into the generated ITEM rows).
    """
    schema = ch_table(table)
    n = counts.get(table)
    if n is None:
        raise SchemaError(f"counts missing table {table!r}")
    # Generators derive foreign keys from other tables' counts.
    required = {"warehouse", "district", "customer", "order", "item"}
    missing = sorted(required - set(counts))
    if missing:
        raise SchemaError(f"counts missing foreign-key tables {missing}")
    rng = np.random.RandomState(_table_seed(table, seed))
    generator = _GENERATORS.get(table)
    if generator is None:
        raise SchemaError(f"no generator for table {table!r}")
    for i in range(n):
        yield generator(i, counts, rng, schema)


def generate_database(
    scale: float, seed: int = 7, tables: List[str] = None
) -> Dict[str, List[Dict[str, Value]]]:
    """Generate all (or selected) tables at ``scale``."""
    counts = row_counts(scale)
    names = tables if tables is not None else list(counts)
    return {t: list(generate_table(t, counts, seed)) for t in names}


def _warehouse(i, counts, rng, schema):
    return {
        "w_id": i + 1,
        "w_name": _filler(rng, 10),
        "w_street_1": _filler(rng, 20),
        "w_street_2": _filler(rng, 20),
        "w_city": _filler(rng, 20),
        "w_state": int(rng.randint(0, 50)),
        "w_zip": _filler(rng, 9),
        "w_tax": int(rng.randint(0, 2000)),
        "w_ytd": 300_000,
    }


def _district(i, counts, rng, schema):
    warehouses = counts["warehouse"]
    return {
        "d_id": i % 10 + 1,
        "d_w_id": i // 10 % warehouses + 1,
        "d_name": _filler(rng, 10),
        "d_street_1": _filler(rng, 20),
        "d_street_2": _filler(rng, 20),
        "d_city": _filler(rng, 20),
        "d_state": int(rng.randint(0, 50)),
        "d_zip": _filler(rng, 9),
        "d_tax": int(rng.randint(0, 2000)),
        "d_ytd": 30_000,
        "d_next_o_id": 3001,
    }


def _customer(i, counts, rng, schema):
    warehouses = counts["warehouse"]
    return {
        "c_id": i + 1,
        "c_d_id": i % 10 + 1,
        "c_w_id": i % warehouses + 1,
        "c_first": _filler(rng, 16),
        "c_middle": b"OE",
        "c_last": _filler(rng, 16),
        "c_street_1": _filler(rng, 20),
        "c_street_2": _filler(rng, 20),
        "c_city": _filler(rng, 20),
        "c_state": int(rng.randint(0, 50)),
        "c_zip": _filler(rng, 9),
        "c_phone": _filler(rng, 16),
        "c_since": int(rng.randint(DATE_EPOCH, DATE_HORIZON)),
        "c_credit": int(rng.randint(0, 2)),
        "c_credit_lim": 50_000,
        "c_discount": int(rng.randint(0, 5000)),
        "c_balance": 10,
        "c_ytd_payment": 10,
        "c_payment_cnt": 1,
        "c_delivery_cnt": 0,
        "c_data": _filler(rng, 152),
    }


def _history(i, counts, rng, schema):
    warehouses = counts["warehouse"]
    customers = counts["customer"]
    return {
        "h_c_id": i % customers + 1,
        "h_c_d_id": i % 10 + 1,
        "h_c_w_id": i % warehouses + 1,
        "h_d_id": i % 10 + 1,
        "h_w_id": i % warehouses + 1,
        "h_date": int(rng.randint(DATE_EPOCH, DATE_HORIZON)),
        "h_amount": 1000,
        "h_data": _filler(rng, 24),
    }


def _neworder(i, counts, rng, schema):
    warehouses = counts["warehouse"]
    return {
        "no_o_id": i + 1,
        "no_d_id": i % 10 + 1,
        "no_w_id": i % warehouses + 1,
    }


def _order(i, counts, rng, schema):
    warehouses = counts["warehouse"]
    customers = counts["customer"]
    return {
        "o_id": i + 1,
        "o_d_id": i % 10 + 1,
        "o_w_id": i % warehouses + 1,
        "o_c_id": int(rng.randint(1, customers + 1)),
        "o_entry_d": int(rng.randint(DATE_EPOCH, DATE_HORIZON)),
        "o_carrier_id": int(rng.randint(0, 11)),
        "o_ol_cnt": int(rng.randint(5, 16)),
        "o_all_local": 1,
    }


def _orderline(i, counts, rng, schema):
    warehouses = counts["warehouse"]
    orders = counts["order"]
    items = counts["item"]
    return {
        # (ol_o_id, ol_number) stays unique while |ORDERLINE| <= 15·|ORDER|
        # (the paper's sizing has the ratio at 10).
        "ol_o_id": i % orders + 1,
        "ol_d_id": i % 10 + 1,
        "ol_w_id": i % warehouses + 1,
        "ol_number": i // orders % 15 + 1,
        "ol_i_id": int(rng.randint(1, items + 1)),
        "ol_supply_w_id": i % warehouses + 1,
        "ol_delivery_d": int(rng.randint(DATE_EPOCH, DATE_HORIZON)),
        "ol_quantity": int(rng.randint(1, 11)),
        "ol_amount": int(rng.randint(1, 10_000)),
        "ol_dist_info": _filler(rng, 24),
    }


def _item(i, counts, rng, schema):
    return {
        "i_id": i + 1,
        "i_im_id": int(rng.randint(1, 10_001)),
        "i_name": _filler(rng, 24),
        "i_price": int(rng.randint(100, 10_001)),
        "i_data": _filler(rng, 50),
    }


def _stock(i, counts, rng, schema):
    warehouses = counts["warehouse"]
    items = counts["item"]
    row = {
        # With |STOCK| == |ITEM| (the paper's sizing), (s_w_id, s_i_id)
        # stays unique because lcm(W, |ITEM|) >= |ITEM|.
        "s_i_id": i % items + 1,
        "s_w_id": i % warehouses + 1,
        "s_quantity": int(rng.randint(10, 101)),
        "s_ytd": 0,
        "s_order_cnt": 0,
        "s_remote_cnt": 0,
        "s_data": _filler(rng, 50),
    }
    for d in range(1, 11):
        row[f"s_dist_{d:02d}"] = _filler(rng, 24)
    return row


_GENERATORS = {
    "warehouse": _warehouse,
    "district": _district,
    "customer": _customer,
    "history": _history,
    "neworder": _neworder,
    "order": _order,
    "orderline": _orderline,
    "item": _item,
    "stock": _stock,
}
