"""HTAPBench schema for the format-generality check (§7.2).

The paper reports that the compact-aligned format algorithm generalizes
beyond CH-benCHmark: on HTAPBench it achieves 57 % CPU / 98 % PIM
bandwidth utilization at th = 0.55. HTAPBench [23] reuses a TPC-C-like
transactional schema with a TPC-H-like decision-support query set; we
model its core fact/dimension tables with their own width profile so the
generality experiment exercises the layout algorithm on a second,
differently shaped schema.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import SchemaError
from repro.format.schema import Column, TableSchema

__all__ = [
    "HTAPBENCH_TABLES",
    "htapbench_schema",
    "htapbench_table",
    "htapbench_query_columns",
    "htapbench_key_columns",
    "htapbench_scan_weights",
]


def _int(name: str, width: int) -> Column:
    return Column(name, width, kind="int")


def _chars(name: str, width: int) -> Column:
    return Column(name, width, kind="bytes")


_SCHEMAS: Dict[str, TableSchema] = {
    "account": TableSchema.of(
        "account",
        [
            _int("a_id", 6),
            _int("a_branch_id", 3),
            _int("a_balance", 8),
            _int("a_type", 1),
            _int("a_opened_d", 4),
            _chars("a_owner", 32),
            _chars("a_notes", 96),
        ],
    ),
    "teller": TableSchema.of(
        "teller",
        [
            _int("t_id", 3),
            _int("t_branch_id", 3),
            _int("t_balance", 8),
            _chars("t_name", 16),
        ],
    ),
    "branch": TableSchema.of(
        "branch",
        [
            _int("b_id", 3),
            _int("b_balance", 8),
            _int("b_region", 2),
            _chars("b_name", 16),
            _chars("b_address", 40),
        ],
    ),
    "txn_history": TableSchema.of(
        "txn_history",
        [
            _int("x_id", 8),
            _int("x_a_id", 6),
            _int("x_t_id", 3),
            _int("x_b_id", 3),
            _int("x_amount", 6),
            _int("x_time", 4),
            _int("x_kind", 1),
            _chars("x_memo", 48),
        ],
    ),
}

HTAPBENCH_TABLES: Tuple[str, ...] = tuple(_SCHEMAS)

#: Decision-support query column usage (reconstructed: HTAPBench runs
#: TPC-H-style aggregation/join queries over the transactional schema).
_QUERY_COLUMNS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "H1": {"txn_history": ("x_amount", "x_time", "x_kind")},
    "H2": {"txn_history": ("x_a_id", "x_amount"), "account": ("a_id", "a_branch_id")},
    "H3": {"account": ("a_balance", "a_type", "a_opened_d")},
    "H4": {
        "txn_history": ("x_b_id", "x_amount", "x_time"),
        "branch": ("b_id", "b_region"),
    },
    "H5": {"teller": ("t_id", "t_branch_id", "t_balance")},
    "H6": {"txn_history": ("x_t_id", "x_amount"), "teller": ("t_id",)},
}


def htapbench_schema() -> Dict[str, TableSchema]:
    """All HTAPBench table schemas."""
    return dict(_SCHEMAS)


def htapbench_table(name: str) -> TableSchema:
    """One HTAPBench table schema."""
    try:
        return _SCHEMAS[name]
    except KeyError:
        raise SchemaError(f"unknown HTAPBench table {name!r}") from None


def htapbench_query_columns(query: str) -> Dict[str, Tuple[str, ...]]:
    """Columns one decision-support query scans, per table."""
    try:
        return dict(_QUERY_COLUMNS[query])
    except KeyError:
        raise SchemaError(f"unknown HTAPBench query {query!r}") from None


def htapbench_key_columns(table: str, queries: Sequence[str] = None) -> List[str]:
    """Union of scanned columns of ``table`` (schema order)."""
    schema = htapbench_table(table)
    names = queries if queries is not None else list(_QUERY_COLUMNS)
    used = set()
    for query in names:
        used.update(htapbench_query_columns(query).get(table, ()))
    return [c for c in schema.column_names if c in used]


def htapbench_scan_weights(table: str, queries: Sequence[str] = None) -> Dict[str, int]:
    """Scan frequency per column of ``table``."""
    names = queries if queries is not None else list(_QUERY_COLUMNS)
    weights: Dict[str, int] = {}
    for query in names:
        for column in htapbench_query_columns(query).get(table, ()):
            weights[column] = weights.get(column, 0) + 1
    return weights
