"""Host-execution mode switch: vectorized vs. naive reference paths.

The simulator has two implementations of its hottest host-side loops
(the OLAP scan inner loop, the MVCC read path, the CPU fallback scan):

* the **vectorized** paths execute block-granular NumPy batches — the
  production mode, mirroring how the modelled hardware streams whole
  blocks with per-block (not per-row) control cost;
* the **naive** reference paths keep the original row-at-a-time Python
  loops.

Both must produce *bit-identical* results — identical bytes moved,
identical modelled times, identical counters. The retained naive paths
exist so the equivalence is checkable: the property tests and the
``repro.bench`` harness run both modes and assert equality, which is
what lets a perf PR claim "same simulation, faster host".

The switch is process-global (the simulator is single-threaded) and
defaults to vectorized.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["vectorized", "set_vectorized", "naive_mode"]

_VECTORIZED = True


def vectorized() -> bool:
    """Whether the vectorized hot paths are active."""
    return _VECTORIZED


def set_vectorized(enabled: bool) -> None:
    """Select the vectorized (True) or naive reference (False) paths."""
    global _VECTORIZED
    _VECTORIZED = bool(enabled)


@contextmanager
def naive_mode() -> Iterator[None]:
    """Run a block under the naive reference paths, then restore."""
    previous = _VECTORIZED
    set_vectorized(False)
    try:
        yield
    finally:
        set_vectorized(previous)
