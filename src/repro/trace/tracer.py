"""Structured tracer: turns the flat span log into a timeline forest.

The telemetry layer records :class:`~repro.telemetry.metrics.SpanEvent`
objects — flat ``(name, start, duration, attrs)`` tuples on one
simulated clock. This module reconstructs the structure those spans
imply:

* **Nesting** is inferred by containment: a span that lies inside
  another span's ``[start, end]`` window is its child. The instrumented
  layers record wrapper spans (``olap.query``, ``pim.phase``,
  ``workload.interval``) at explicit start timestamps spanning their
  sub-spans, so containment recovers the call tree without any explicit
  parent IDs threaded through the engine.
* **Tracks** group spans by the hardware/software resource they occupy
  (CPU OLTP, CPU OLAP, controller, PIM phases, individual PIM units,
  defrag), mirroring the row layout of a Perfetto / chrome://tracing
  view.
* **Self time** (exclusive time) is a span's duration minus the time
  covered by its children — the quantity bottleneck ranking sorts by.

Everything here is pure post-processing: the tracer never mutates the
registry and costs nothing while the simulation runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import SpanEvent

__all__ = ["TraceSpan", "Tracer", "default_track"]

#: Tolerance when deciding containment — simulated times are floats
#: accumulated by summation, so exact boundary equality can be off by
#: rounding noise.
_EPS = 1e-6

#: Span-name prefixes recorded as *parallel lanes*: such spans share a
#: start with their siblings (concurrent PIM units under one phase), so
#: they may receive a parent but never adopt children — otherwise the
#: longest lane would swallow its siblings.
PARALLEL_LEAF_PREFIXES = ("pim.unit.",)


class TraceSpan:
    """One span enriched with track, parent/child links, and self time."""

    __slots__ = (
        "index",
        "name",
        "start",
        "duration",
        "attrs",
        "track",
        "parent",
        "children",
    )

    def __init__(
        self,
        index: int,
        name: str,
        start: float,
        duration: float,
        attrs: Dict[str, object],
        track: str,
    ) -> None:
        self.index = index
        self.name = name
        self.start = start
        self.duration = duration
        self.attrs = attrs
        self.track = track
        self.parent: Optional["TraceSpan"] = None
        self.children: List["TraceSpan"] = []

    @property
    def end(self) -> float:
        """Span end on the simulated timeline."""
        return self.start + self.duration

    @property
    def depth(self) -> int:
        """Nesting depth (0 for roots)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    @property
    def self_time(self) -> float:
        """Exclusive time: duration minus the union of child windows.

        Children of parallel tracks (per-unit spans under a phase) can
        overlap each other, so the *union* of their windows is
        subtracted, not the sum — and the result is clamped at zero.
        """
        if not self.children:
            return self.duration
        covered = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for child in sorted(self.children, key=lambda s: s.start):
            if cur_start is None:
                cur_start, cur_end = child.start, child.end
            elif child.start <= cur_end + _EPS:
                cur_end = max(cur_end, child.end)
            else:
                covered += cur_end - cur_start
                cur_start, cur_end = child.start, child.end
        if cur_start is not None:
            covered += cur_end - cur_start
        return max(0.0, self.duration - covered)

    @property
    def stack(self) -> Tuple[str, ...]:
        """Root-to-leaf name path (for folded-stack export)."""
        names: List[str] = []
        node: Optional[TraceSpan] = self
        while node is not None:
            names.append(node.name)
            node = node.parent
        return tuple(reversed(names))

    def __repr__(self) -> str:
        return (
            f"TraceSpan({self.name!r}, start={self.start}, "
            f"dur={self.duration}, track={self.track!r})"
        )


def default_track(name: str, attrs: Dict[str, object]) -> str:
    """Map a span name to its timeline track.

    Track names use ``/`` to separate a process-like group from a
    thread-like lane, matching the pid/tid split of the Chrome trace
    exporter.
    """
    if name.startswith("pim.unit."):
        device = attrs.get("device")
        bank = attrs.get("bank")
        if device is not None and bank is not None:
            return f"pim/dev{int(device):02d}.bank{int(bank):02d}"
        unit = attrs.get("unit")
        if unit is not None:
            return f"pim/unit{int(unit):03d}"
        return "pim/units"
    if name.startswith("pim.control") or name.startswith("faults."):
        return "controller/launch"
    if name.startswith("pim."):
        return "pim/phases"
    if name.startswith("oltp."):
        return "cpu/oltp"
    if name.startswith("olap."):
        return "cpu/olap"
    if name.startswith("defrag."):
        return "defrag/run"
    if name.startswith("workload."):
        return "cpu/workload"
    if name.startswith("serve."):
        tenant = attrs.get("tenant")
        if tenant is not None:
            return f"serve/tenant{int(tenant):02d}"
        return "serve/scheduler"
    if name.startswith("cluster."):
        shard = attrs.get("shard")
        if shard is not None:
            return f"cluster/shard{int(shard):02d}"
        return "cluster/coordinator"
    return "misc/other"


class Tracer:
    """Builds the span forest from a flat span log.

    ``Tracer(registry.spans)`` is the usual entry point; the resulting
    :attr:`spans` list preserves the original recording order and every
    span carries its inferred parent, children, track, and self time.
    """

    def __init__(
        self,
        events: Sequence[SpanEvent],
        track_of=default_track,
    ) -> None:
        spans = [
            TraceSpan(
                index=i,
                name=ev.name,
                start=ev.start,
                duration=ev.duration,
                attrs=dict(ev.attrs),
                track=track_of(ev.name, dict(ev.attrs)),
            )
            for i, ev in enumerate(events)
        ]
        _link_by_containment(spans)
        #: All spans, in original recording order.
        self.spans: List[TraceSpan] = spans

    @property
    def roots(self) -> List[TraceSpan]:
        """Spans with no parent, in recording order."""
        return [s for s in self.spans if s.parent is None]

    @property
    def tracks(self) -> Dict[str, List[TraceSpan]]:
        """Spans grouped by track, each group in recording order."""
        out: Dict[str, List[TraceSpan]] = {}
        for span in self.spans:
            out.setdefault(span.track, []).append(span)
        return out

    @property
    def leaves(self) -> List[TraceSpan]:
        """Spans with no children, in recording order."""
        return [s for s in self.spans if not s.children]

    def end_time(self) -> float:
        """Latest span end (0.0 for an empty trace)."""
        return max((s.end for s in self.spans), default=0.0)


def _link_by_containment(spans: List[TraceSpan]) -> None:
    """Assign parents by interval containment, using a sweep stack.

    Spans are visited in ``(start, -duration, index)`` order so a
    wrapper beginning at the same instant as its first child is visited
    first (longer windows open before the spans inside them), and ties
    on both keys resolve to the earlier-recorded span as the parent.
    Parallel-lane spans (:data:`PARALLEL_LEAF_PREFIXES`) take a parent
    but are never pushed as candidate parents themselves.
    """
    stack: List[TraceSpan] = []
    for span in sorted(spans, key=lambda s: (s.start, -s.duration, s.index)):
        while stack and span.start > stack[-1].end - _EPS:
            stack.pop()
        # Zero-duration spans at a window boundary belong to the window
        # they start in; the strict check above keeps a span that begins
        # exactly at a sibling's end from nesting inside that sibling.
        if stack and span.end <= stack[-1].end + _EPS:
            span.parent = stack[-1]
            stack[-1].children.append(span)
        if not span.name.startswith(PARALLEL_LEAF_PREFIXES):
            stack.append(span)
