"""Trace analysis: occupancy, critical path, and bottleneck ranking.

Three questions a PUSHtap-style time-breakdown study asks of a trace:

* **Where does each resource spend its time?** Per-track *occupancy* is
  the union of that track's span windows divided by the trace length —
  a track whose spans overlap (parallel PIM units) is not counted
  double.
* **What chain of work bounds end-to-end time?** The *critical path* is
  the maximum-weight chain of non-overlapping leaf spans, computed by
  weighted-interval scheduling over the leaf set. On the serial
  simulated clock this is exact; its weight equals the busy time of the
  serial timeline.
* **What should be optimised first?** The *bottleneck report* ranks
  span names by total exclusive (self) simulated time, which is where
  the cycles actually go — a wrapper with large total but near-zero
  self time is not a bottleneck, its children are.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.trace.tracer import Tracer, TraceSpan

__all__ = [
    "TrackStats",
    "NameStats",
    "track_stats",
    "name_stats",
    "critical_path",
    "BottleneckReport",
    "analyze",
]


@dataclass
class TrackStats:
    """Aggregate statistics of one timeline track."""

    track: str
    count: int = 0
    total_time: float = 0.0
    busy_time: float = 0.0
    occupancy: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Mapping used by the benchmark snapshot."""
        return {
            "count": self.count,
            "total_ns": self.total_time,
            "busy_ns": self.busy_time,
            "occupancy": self.occupancy,
        }


@dataclass
class NameStats:
    """Aggregate statistics of one span name."""

    name: str
    count: int = 0
    total_time: float = 0.0
    self_time: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Mapping used by the benchmark snapshot."""
        return {
            "count": self.count,
            "total_ns": self.total_time,
            "self_ns": self.self_time,
        }


def _interval_union(spans: List[TraceSpan]) -> float:
    """Total length of the union of the spans' windows."""
    total = 0.0
    cur_start: Optional[float] = None
    cur_end = 0.0
    for span in sorted(spans, key=lambda s: s.start):
        if cur_start is None:
            cur_start, cur_end = span.start, span.end
        elif span.start <= cur_end:
            cur_end = max(cur_end, span.end)
        else:
            total += cur_end - cur_start
            cur_start, cur_end = span.start, span.end
    if cur_start is not None:
        total += cur_end - cur_start
    return total


def track_stats(tracer: Tracer) -> Dict[str, TrackStats]:
    """Per-track count, total, busy (union), and occupancy."""
    horizon = tracer.end_time()
    out: Dict[str, TrackStats] = {}
    for track, spans in tracer.tracks.items():
        stats = TrackStats(track=track, count=len(spans))
        stats.total_time = sum(s.duration for s in spans)
        stats.busy_time = _interval_union(spans)
        stats.occupancy = stats.busy_time / horizon if horizon > 0 else 0.0
        out[track] = stats
    return out


def name_stats(tracer: Tracer) -> Dict[str, NameStats]:
    """Per-span-name count, total (inclusive), and self (exclusive) time."""
    out: Dict[str, NameStats] = {}
    for span in tracer.spans:
        stats = out.get(span.name)
        if stats is None:
            stats = out[span.name] = NameStats(name=span.name)
        stats.count += 1
        stats.total_time += span.duration
        stats.self_time += span.self_time
    return out


def critical_path(tracer: Tracer) -> Tuple[List[TraceSpan], float]:
    """Maximum-weight chain of non-overlapping leaf spans.

    Weighted-interval scheduling over the leaves: sort by end time,
    binary-search the latest compatible predecessor, take the better of
    "skip" and "take". Zero-duration leaves contribute no weight and are
    excluded. Returns ``(path, weight)``.
    """
    leaves = sorted(
        (s for s in tracer.leaves if s.duration > 0.0), key=lambda s: s.end
    )
    n = len(leaves)
    if n == 0:
        return [], 0.0
    ends = [s.end for s in leaves]

    # prev[i]: index of the last leaf ending at or before leaves[i].start.
    prev = [bisect.bisect_right(ends, leaves[i].start + 1e-9) - 1 for i in range(n)]
    best = [0.0] * (n + 1)
    take = [False] * n
    for i in range(n):
        with_i = leaves[i].duration + best[prev[i] + 1]
        if with_i > best[i]:
            best[i + 1] = with_i
            take[i] = True
        else:
            best[i + 1] = best[i]
    path: List[TraceSpan] = []
    i = n - 1
    while i >= 0:
        if take[i]:
            path.append(leaves[i])
            i = prev[i]
        else:
            i -= 1
    path.reverse()
    return path, best[n]


@dataclass
class BottleneckReport:
    """Ranked attribution of simulated time, plus the critical path."""

    tracks: Dict[str, TrackStats] = field(default_factory=dict)
    names: Dict[str, NameStats] = field(default_factory=dict)
    #: Span names ranked by total self time, descending.
    ranked: List[NameStats] = field(default_factory=list)
    critical_path: List[TraceSpan] = field(default_factory=list)
    critical_path_time: float = 0.0
    trace_end: float = 0.0

    def render(self, top: int = 10) -> str:
        """Human-readable report (the CLI's output)."""
        from repro.report import format_percent, format_table, format_time_ns

        sections: List[str] = []
        total_self = sum(s.self_time for s in self.names.values()) or 1.0
        sections.append(f"bottlenecks (top {min(top, len(self.ranked))} by self time):")
        sections.append(
            format_table(
                ["rank", "span", "count", "self time", "share", "total time"],
                [
                    [
                        i + 1,
                        s.name,
                        s.count,
                        format_time_ns(s.self_time),
                        format_percent(s.self_time / total_self),
                        format_time_ns(s.total_time),
                    ]
                    for i, s in enumerate(self.ranked[:top])
                ],
            )
        )
        sections.append("")
        sections.append("track occupancy:")
        sections.append(
            format_table(
                ["track", "spans", "busy", "occupancy"],
                [
                    [
                        t.track,
                        t.count,
                        format_time_ns(t.busy_time),
                        format_percent(t.occupancy),
                    ]
                    for t in sorted(
                        self.tracks.values(), key=lambda t: -t.busy_time
                    )
                ],
            )
        )
        sections.append("")
        sections.append(
            f"critical path: {len(self.critical_path)} spans, "
            f"{format_time_ns(self.critical_path_time)} of "
            f"{format_time_ns(self.trace_end)} "
            f"({format_percent(self.critical_path_time / self.trace_end if self.trace_end else 0.0)})"
        )
        by_name: Dict[str, float] = {}
        for span in self.critical_path:
            by_name[span.name] = by_name.get(span.name, 0.0) + span.duration
        if by_name:
            sections.append(
                format_table(
                    ["span", "critical time"],
                    [
                        [name, format_time_ns(t)]
                        for name, t in sorted(by_name.items(), key=lambda kv: -kv[1])
                    ],
                )
            )
        return "\n".join(sections)


def analyze(tracer: Tracer) -> BottleneckReport:
    """Run the full analysis over a tracer."""
    names = name_stats(tracer)
    path, weight = critical_path(tracer)
    return BottleneckReport(
        tracks=track_stats(tracer),
        names=names,
        ranked=sorted(names.values(), key=lambda s: -s.self_time),
        critical_path=path,
        critical_path_time=weight,
        trace_end=tracer.end_time(),
    )
