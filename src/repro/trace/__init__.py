"""Structured tracing and profiling over the telemetry span log.

The :mod:`repro.trace` package turns the flat simulated-time span log
recorded by :mod:`repro.telemetry` into a structured timeline and the
analyses a time-breakdown study needs:

* :mod:`repro.trace.tracer` — track assignment + containment nesting;
* :mod:`repro.trace.chrome` — Chrome trace-event JSON (Perfetto);
* :mod:`repro.trace.flame` — flamegraph folded stacks;
* :mod:`repro.trace.analysis` — occupancy, critical path, bottlenecks;
* :mod:`repro.trace.profile` — the end-to-end profile runner behind
  ``python -m repro.experiments profile``.
"""

from repro.trace.analysis import BottleneckReport, analyze
from repro.trace.chrome import to_chrome_json, to_chrome_trace
from repro.trace.flame import folded_stacks, to_folded
from repro.trace.profile import ProfileResult, run_profile
from repro.trace.tracer import Tracer, TraceSpan, default_track

__all__ = [
    "Tracer",
    "TraceSpan",
    "default_track",
    "to_chrome_trace",
    "to_chrome_json",
    "folded_stacks",
    "to_folded",
    "analyze",
    "BottleneckReport",
    "ProfileResult",
    "run_profile",
]
