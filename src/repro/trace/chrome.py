"""Chrome trace-event JSON exporter (Perfetto / chrome://tracing).

Emits the JSON-object form of the trace-event format: a ``traceEvents``
list of complete-duration events (``ph: "X"``) plus metadata events
(``ph: "M"``) naming each process/thread row. Timestamps are in
microseconds per the format, converted from the simulator's nanosecond
clock; the original nanosecond values ride along in each event's
``args`` so nothing is lost to the conversion.

Tracks named ``group/lane`` map to process ``group`` and thread
``lane``, so a Perfetto view shows e.g. one ``pim`` process with a
lane per PIM unit under it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.trace.tracer import Tracer

__all__ = ["to_chrome_trace", "to_chrome_json"]

#: The trace-event format counts microseconds.
_NS_PER_US = 1000.0


def _split_track(track: str) -> Tuple[str, str]:
    group, _, lane = track.partition("/")
    return group, lane or "main"


def to_chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """Build the trace-event JSON object for ``tracer``'s spans."""
    # Stable pid/tid assignment: number process groups and lanes in
    # first-appearance order so repeated runs diff cleanly.
    pids: Dict[str, int] = {}
    tids: Dict[str, int] = {}
    events: List[Dict[str, object]] = []
    for span in tracer.spans:
        group, lane = _split_track(span.track)
        if group not in pids:
            pid = pids[group] = len(pids) + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": group},
                }
            )
        if span.track not in tids:
            tid = tids[span.track] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pids[group],
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        args: Dict[str, object] = {
            "start_ns": span.start,
            "duration_ns": span.duration,
        }
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": group,
                "ph": "X",
                "ts": span.start / _NS_PER_US,
                "dur": span.duration / _NS_PER_US,
                "pid": pids[group],
                "tid": tids[span.track],
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated", "source": "repro.trace"},
    }


def to_chrome_json(tracer: Tracer, indent: Optional[int] = None) -> str:
    """Serialize :func:`to_chrome_trace` output to a JSON string."""
    return json.dumps(to_chrome_trace(tracer), indent=indent)
