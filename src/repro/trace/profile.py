"""Profile runner: workload → trace + bottleneck report + bench snapshot.

:func:`run_profile` builds an engine, runs a chosen workload under a
recording telemetry registry (with per-unit detail spans and bounded
histograms turned on), and returns everything the ``profile`` CLI
subcommand writes out: the tracer, the bottleneck analysis, and the
machine-readable ``BENCH_<tag>.json`` snapshot that future PRs diff
perf against.

Simulated metrics come from the simulated clock; ``wall_clock`` captures
what the *host* paid to run the simulation (build/run seconds, peak
RSS), which is what the profile-guided optimisation loop targets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX hosts
    resource = None

from repro.core.engine import PushTapEngine
from repro.errors import ConfigError
from repro.telemetry import registry as telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.trace.analysis import BottleneckReport, analyze
from repro.trace.tracer import Tracer
from repro.units import S
from repro.workloads.driver import MixedWorkload

__all__ = ["ProfileResult", "run_profile", "BENCH_VERSION"]

#: Schema version of the BENCH snapshot.
BENCH_VERSION = 1

_WORKLOADS = ("tpcc", "ch", "mixed")
_MODELS = ("pushtap", "original")


@dataclass
class ProfileResult:
    """Everything one profiling run produced."""

    registry: MetricsRegistry
    tracer: Tracer
    report: BottleneckReport
    bench: Dict[str, object]


def _peak_rss_kib() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unknown)."""
    if resource is None:
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    import sys

    if sys.platform == "darwin":  # pragma: no cover
        rss //= 1024
    return int(rss)


def run_profile(
    workload: str = "mixed",
    model: str = "pushtap",
    intervals: int = 4,
    txns_per_query: int = 25,
    scale: float = 2e-5,
    seed: int = 11,
    defrag_period: int = 200,
    queries: Sequence[str] = ("Q1", "Q6", "Q9"),
    max_histogram_samples: Optional[int] = 4096,
    per_unit_spans: bool = True,
    tag: str = "profile",
) -> ProfileResult:
    """Run one instrumented workload and analyse its trace.

    ``workload`` picks the mix: ``tpcc`` runs only transactions
    (``intervals × txns_per_query`` of them), ``ch`` runs only the
    analytical queries (``intervals`` of them, cycling ``queries``),
    and ``mixed`` interleaves both through
    :class:`~repro.workloads.driver.MixedWorkload`. ``model`` selects
    the controller (``pushtap`` or ``original``, the Fig. 12b pair).
    """
    if workload not in _WORKLOADS:
        raise ConfigError(f"unknown workload {workload!r} (one of {_WORKLOADS})")
    if model not in _MODELS:
        raise ConfigError(f"unknown model {model!r} (one of {_MODELS})")
    if intervals < 1:
        raise ConfigError("intervals must be >= 1")

    build_start = time.perf_counter()
    engine = PushTapEngine.build(
        scale=scale,
        seed=seed,
        controller_kind=model,
        defrag_period=defrag_period,
    )
    build_s = time.perf_counter() - build_start

    registry = MetricsRegistry(max_histogram_samples=max_histogram_samples)
    registry.detail_spans = per_unit_spans
    telemetry.install(registry)
    run_start = time.perf_counter()
    try:
        simulated = _run_workload(
            engine, workload, intervals, txns_per_query, queries, seed
        )
    finally:
        telemetry.disable()
    run_s = time.perf_counter() - run_start

    tracer = Tracer(registry.spans)
    report = analyze(tracer)
    peak_rss_kib = _peak_rss_kib()
    bench: Dict[str, object] = {
        "version": BENCH_VERSION,
        "tag": tag,
        "workload": workload,
        "model": model,
        "params": {
            "intervals": intervals,
            "txns_per_query": txns_per_query,
            "scale": scale,
            "seed": seed,
            "defrag_period": defrag_period,
            "queries": list(queries),
        },
        "simulated": simulated,
        "wall_clock": {
            "build_s": round(build_s, 4),
            "run_s": round(run_s, 4),
            "peak_rss_kib": peak_rss_kib,
        },
        # Top-level scalars so bench comparisons don't re-derive them.
        "wall_clock_s": round(build_s + run_s, 4),
        "peak_rss_bytes": peak_rss_kib * 1024 if peak_rss_kib is not None else None,
        "spans": {
            name: stats.as_dict() for name, stats in sorted(report.names.items())
        },
        "tracks": {
            track: stats.as_dict() for track, stats in sorted(report.tracks.items())
        },
        "critical_path_ns": report.critical_path_time,
        "counters": {n: c.value for n, c in sorted(registry.counters.items())},
    }
    return ProfileResult(
        registry=registry, tracer=tracer, report=report, bench=bench
    )


def _run_workload(
    engine: PushTapEngine,
    workload: str,
    intervals: int,
    txns_per_query: int,
    queries: Sequence[str],
    seed: int,
) -> Dict[str, object]:
    """Drive the engine; returns the ``simulated`` bench section."""
    if workload == "mixed":
        mixed = MixedWorkload(
            engine, txns_per_query=txns_per_query, queries=queries, seed=seed
        )
        rep = mixed.run(intervals)
        return {
            "time_ns": rep.simulated_time,
            "transactions": rep.transactions,
            "aborted": rep.aborted,
            "queries": rep.queries,
            "defrag_runs": engine.stats.defrag_runs,
            "oltp_tpmc": rep.oltp_tpmc,
            "olap_qphh": rep.olap_qphh,
        }
    if workload == "tpcc":
        driver = engine.make_driver(seed=seed)
        aborted = 0
        total = 0.0
        count = intervals * txns_per_query
        for _ in range(count):
            result = engine.execute_transaction(driver.next_transaction())
            total += result.total_time
            if result.aborted:
                aborted += 1
        time_ns = total + engine.stats.defrag_time
        return {
            "time_ns": time_ns,
            "transactions": count,
            "aborted": aborted,
            "queries": 0,
            "defrag_runs": engine.stats.defrag_runs,
            "oltp_tpmc": (count - aborted) / time_ns * S * 60.0 if time_ns else 0.0,
            "olap_qphh": 0.0,
        }
    # workload == "ch": analytical queries only.
    total = 0.0
    for i in range(intervals):
        total += engine.query(queries[i % len(queries)]).total_time
    time_ns = total + engine.stats.defrag_time
    return {
        "time_ns": time_ns,
        "transactions": 0,
        "aborted": 0,
        "queries": intervals,
        "defrag_runs": engine.stats.defrag_runs,
        "oltp_tpmc": 0.0,
        "olap_qphh": intervals / time_ns * S * 3600.0 if time_ns else 0.0,
    }
