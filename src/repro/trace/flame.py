"""Flamegraph folded-stack aggregation of the span forest.

Produces the classic ``root;child;leaf <weight>`` line format consumed
by Brendan Gregg's ``flamegraph.pl`` and by speedscope's "import folded
stacks". Weights are *self* (exclusive) simulated time, rounded to
integer nanoseconds, so the flamegraph's frame widths sum to total
simulated time without double counting parents and children.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.trace.tracer import Tracer

__all__ = ["folded_stacks", "to_folded"]


def folded_stacks(tracer: Tracer) -> Dict[Tuple[str, ...], float]:
    """Aggregate self time by root-to-leaf name path."""
    out: Dict[Tuple[str, ...], float] = {}
    for span in tracer.spans:
        self_time = span.self_time
        if self_time <= 0.0:
            continue
        stack = span.stack
        out[stack] = out.get(stack, 0.0) + self_time
    return out


def to_folded(tracer: Tracer) -> str:
    """Render folded-stack lines (``a;b;c 1234``), sorted by path."""
    lines: List[str] = []
    for stack, weight in sorted(folded_stacks(tracer).items()):
        rounded = int(round(weight))
        if rounded <= 0:
            continue
        lines.append(f"{';'.join(stack)} {rounded}")
    return "\n".join(lines) + ("\n" if lines else "")
