"""The process-global fault-injection switch.

Mirrors :mod:`repro.telemetry.registry`: one injector is installed
process-wide, defaulting to a shared no-op whose :attr:`enabled` check is
all an un-faulted run pays. Instrumented layers follow one pattern::

    from repro.faults import injector as faults

    inj = faults.active()
    if inj.enabled and inj.fire(plan.DROP_LAUNCH):
        ...model the fault...

Every injected fault increments ``faults.injected.<hook>`` and every
engine-side detection increments ``faults.detected.<hook>`` in the
telemetry registry (when telemetry records), so the counters expose the
faults exactly as ROADMAP requires. The injector additionally keeps its
own counts, so fault reports work even with telemetry disabled.

This module must stay importable from the lowest layers (PIM controller,
OLTP engine); it depends only on the plan and telemetry modules.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.plan import FaultPlan
from repro.telemetry import registry as telemetry

__all__ = ["FaultInjector", "NoopInjector", "active", "install", "deactivate"]


class FaultInjector:
    """Consults a :class:`FaultPlan` and accounts every fault event.

    ``pending_checks`` counts faults injected since the harness last ran
    the invariant checker; safe points (transaction/query boundaries)
    drain it via :meth:`take_pending_checks` so every injected fault is
    followed by a check at the next consistent state.
    """

    enabled = True

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.injected: Dict[str, int] = {}
        self.detected: Dict[str, int] = {}
        self.retries = 0
        self._pending_checks = 0

    # ------------------------------------------------------------------
    # Hook-point API
    # ------------------------------------------------------------------
    def fire(self, hook: str) -> bool:
        """One consultation of ``hook``; True means "inject here"."""
        if not self.plan.draw(hook):
            return False
        self.injected[hook] = self.injected.get(hook, 0) + 1
        self._pending_checks += 1
        tel = telemetry.active()
        if tel.enabled:
            tel.counter(f"faults.injected.{hook}").inc()
        return True

    def draw_int(self, hook: str, low: int, high: int) -> int:
        """Deterministic fault magnitude from the plan's hook stream."""
        return self.plan.draw_int(hook, low, high)

    def replay_fire(self, hook: str) -> None:
        """Re-apply the side effects of a fire whose draw already happened.

        The parallel plan pass consults :meth:`FaultPlan.draw` directly
        (advancing the RNG and the schedule); the merge pass then calls
        this at the same point of the sequential interleaving to apply
        the injection accounting without drawing again.
        """
        self.injected[hook] = self.injected.get(hook, 0) + 1
        self._pending_checks += 1
        tel = telemetry.active()
        if tel.enabled:
            tel.counter(f"faults.injected.{hook}").inc()

    def detect(self, hook: str) -> None:
        """The engine noticed (and survived) an injected fault."""
        self.detected[hook] = self.detected.get(hook, 0) + 1
        tel = telemetry.active()
        if tel.enabled:
            tel.counter(f"faults.detected.{hook}").inc()

    def retry(self, backoff_ns: float) -> None:
        """One bounded-retry attempt; ``backoff_ns`` is simulated wait."""
        self.retries += 1
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("faults.retries").inc()
            tel.record_span("faults.retry_backoff", backoff_ns)

    # ------------------------------------------------------------------
    # Invariant-check scheduling
    # ------------------------------------------------------------------
    def take_pending_checks(self) -> int:
        """Faults injected since the last take; resets the count."""
        pending = self._pending_checks
        self._pending_checks = 0
        return pending


class NoopInjector:
    """The disabled injector: never fires, counts nothing."""

    enabled = False
    plan: Optional[FaultPlan] = None
    injected: Dict[str, int] = {}
    detected: Dict[str, int] = {}
    retries = 0

    def fire(self, hook: str) -> bool:
        """Never inject."""
        return False

    def draw_int(self, hook: str, low: int, high: int) -> int:
        """Smallest magnitude (never reached in practice)."""
        return low

    def replay_fire(self, hook: str) -> None:
        """Nothing to account."""

    def detect(self, hook: str) -> None:
        """Nothing to account."""

    def retry(self, backoff_ns: float) -> None:
        """Nothing to account."""

    def take_pending_checks(self) -> int:
        """Never any pending checks."""
        return 0


_NOOP = NoopInjector()
_active: object = _NOOP


def active():
    """The currently installed injector (real or no-op)."""
    return _active


def install(injector: FaultInjector) -> FaultInjector:
    """Install ``injector`` process-wide; returns it."""
    global _active
    _active = injector
    return injector


def deactivate() -> None:
    """Swap the no-op injector back in."""
    global _active
    _active = _NOOP
