"""Cross-subsystem invariant checking for the fault-injection harness.

The :class:`InvariantChecker` inspects a whole engine at *safe points*
(between transactions, after queries, at interval boundaries — never
mid-offload) and asserts that injected faults were absorbed gracefully
rather than corrupting state:

* **Controller discipline** — no bank may stay locked outside an
  offload; the PUSHtap scheduler's pending slot must be empty; the
  original controller must not believe an offload is still active.
* **MVCC agreement** — version-chain timestamps strictly decrease from
  the head; the update log's timestamps never decrease; the number of
  ``update`` records equals :meth:`MVCCManager.stale_version_count`;
  ``delete`` records match the pending tombstones; ``insert`` records
  form the contiguous tail of the row-id space; every delta reference in
  a chain is allocated and every allocated delta row is referenced
  (a bijection — dangling or leaked delta rows fail here).
* **Snapshot agreement** — the incremental bitmaps equal a from-scratch
  rebuild off the MVCC log, and the packed per-device copy in simulated
  DRAM equals the packed in-memory bitmap.

The checker deliberately avoids importing :mod:`repro.core.engine` — it
duck-types the engine (``db``, ``controller``) so low-level modules that
participate in fault injection never gain an import cycle through it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from repro.errors import InvariantViolation
from repro.mvcc.metadata import Region
from repro.telemetry import registry as telemetry
from repro.units import ceil_div

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import PushTapEngine

__all__ = ["InvariantChecker"]


class InvariantChecker:
    """Checks engine-wide consistency invariants at safe points."""

    def __init__(self, engine: "PushTapEngine", raise_on_violation: bool = True) -> None:
        self.engine = engine
        self.raise_on_violation = raise_on_violation
        self.checks = 0
        self.violations: List[str] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def check(self) -> List[str]:
        """Run every invariant; returns (and records) the violations."""
        found: List[str] = []
        found.extend(self._check_controller())
        for name, runtime in self.engine.db.tables.items():
            found.extend(self._check_mvcc(name, runtime))
            found.extend(self._check_snapshot(name, runtime))
        self.checks += 1
        self.violations.extend(found)
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("faults.invariant.checks").inc()
            if found:
                tel.counter("faults.invariant.violations").inc(len(found))
        if found and self.raise_on_violation:
            raise InvariantViolation("; ".join(found))
        return found

    # ------------------------------------------------------------------
    # Controller invariants
    # ------------------------------------------------------------------
    def _check_controller(self) -> List[str]:
        found: List[str] = []
        controller = self.engine.controller
        pending = getattr(controller, "pending", None)
        if pending is not None:
            found.append(
                f"controller has pending operation {pending.op.name} at a safe point"
            )
        if getattr(controller, "_offload_active", False):
            found.append("controller reports an offload active at a safe point")
        if getattr(controller, "mode_batch_active", False):
            found.append("controller holds a mode batch open at a safe point")
        locked = [
            unit.unit_id for unit in controller.units if unit.bank.locked
        ]
        if locked:
            found.append(
                f"{len(locked)} bank(s) left locked outside an offload "
                f"(units {locked[:8]})"
            )
        return found

    # ------------------------------------------------------------------
    # MVCC invariants
    # ------------------------------------------------------------------
    def _check_mvcc(self, name: str, runtime) -> List[str]:
        found: List[str] = []
        mvcc = runtime.mvcc
        log = mvcc._log

        # Log timestamps never decrease (commit order).
        last_ts = 0
        for record in log:
            if record.write_ts < last_ts:
                found.append(
                    f"{name}: log write_ts {record.write_ts} after {last_ts}"
                )
                break
            last_ts = record.write_ts

        # Record counts agree with chain / tombstone state.
        updates = sum(1 for r in log if r.kind == "update")
        deletes = sum(1 for r in log if r.kind == "delete")
        inserts = [r.row_id for r in log if r.kind == "insert"]
        stale = mvcc.stale_version_count()
        if updates != stale:
            found.append(
                f"{name}: {updates} update records but {stale} stale versions"
            )
        if deletes != len(mvcc._tombstones):
            found.append(
                f"{name}: {deletes} delete records but "
                f"{len(mvcc._tombstones)} tombstones"
            )
        if inserts:
            expected = list(
                range(mvcc.num_rows - len(inserts), mvcc.num_rows)
            )
            if inserts != expected:
                found.append(
                    f"{name}: insert records {inserts[:8]}... do not form the "
                    f"contiguous row-id tail ending at {mvcc.num_rows - 1}"
                )

        # Tombstones, dead rows, and row bounds.
        overlap = set(mvcc._tombstones) & mvcc._dead_rows
        if overlap:
            found.append(f"{name}: rows {sorted(overlap)[:8]} both tombstoned and dead")
        out_of_range = [
            r
            for r in list(mvcc._tombstones) + sorted(mvcc._dead_rows)
            if r < 0 or r >= mvcc.num_rows
        ]
        if out_of_range:
            found.append(f"{name}: deleted rows {out_of_range[:8]} out of range")

        # Chains: strictly decreasing timestamps; delta refs ↔ allocator.
        referenced = set()
        for chain in mvcc._chains.values():
            prev_ts = None
            for entry in chain.versions():
                if prev_ts is not None and entry.write_ts >= prev_ts:
                    found.append(
                        f"{name}: row {chain.row_id} chain timestamps not "
                        f"strictly decreasing ({entry.write_ts} under {prev_ts})"
                    )
                    break
                prev_ts = entry.write_ts
            for entry in chain.versions():
                if entry.location.region == Region.DELTA:
                    index = entry.location.index
                    if not mvcc.delta.is_allocated(index):
                        found.append(
                            f"{name}: row {chain.row_id} references "
                            f"unallocated delta row {index}"
                        )
                    elif index in referenced:
                        found.append(
                            f"{name}: delta row {index} referenced by "
                            "multiple versions"
                        )
                    referenced.add(index)
        leaked = mvcc.delta._allocated - referenced
        if leaked:
            found.append(
                f"{name}: {len(leaked)} allocated delta row(s) unreferenced "
                f"by any chain ({sorted(leaked)[:8]})"
            )
        return found

    # ------------------------------------------------------------------
    # Snapshot invariants
    # ------------------------------------------------------------------
    def _check_snapshot(self, name: str, runtime) -> List[str]:
        found: List[str] = []
        mvcc = runtime.mvcc
        snap = runtime.snapshots

        # Rebuild both bitmaps from scratch: the base state (what the
        # constructor or the last defragmentation established) plus a
        # replay of log records committed at or before the snapshot
        # horizon. Inserts newer than the last log clear are all still in
        # the log, so the base row count is recoverable.
        inserts_in_log = sum(1 for r in mvcc._log if r.kind == "insert")
        base_rows = mvcc.num_rows - inserts_in_log
        data = np.zeros(len(snap._data_bits), dtype=bool)
        data[:base_rows] = True
        for row in mvcc._dead_rows:
            data[row] = False
        delta = np.zeros(len(snap._delta_bits), dtype=bool)
        for record in mvcc._log:
            if record.write_ts > snap.last_snapshot_ts:
                continue
            if record.kind == "update":
                self._apply(data, delta, record.prev_ref, False)
                self._apply(data, delta, record.new_ref, True)
            elif record.kind == "insert":
                self._apply(data, delta, record.new_ref, True)
            elif record.kind == "delete":
                self._apply(data, delta, record.prev_ref, False)

        if not np.array_equal(data, snap._data_bits):
            diff = int(np.sum(data != snap._data_bits))
            found.append(
                f"{name}: data bitmap disagrees with log rebuild in {diff} bit(s)"
            )
        if not np.array_equal(delta, snap._delta_bits):
            diff = int(np.sum(delta != snap._delta_bits))
            found.append(
                f"{name}: delta bitmap disagrees with log rebuild in {diff} bit(s)"
            )

        # Independent cross-check: the MVCC packed visibility index must
        # describe the same snapshot the incremental log replay maintains.
        idx_data, idx_delta = mvcc.visible_refs_at(
            snap.last_snapshot_ts, len(snap._delta_bits)
        )
        if not np.array_equal(idx_data, snap._data_bits):
            diff = int(np.sum(idx_data != snap._data_bits))
            found.append(
                f"{name}: data bitmap disagrees with the packed visibility "
                f"index in {diff} bit(s)"
            )
        if not np.array_equal(idx_delta, snap._delta_bits):
            diff = int(np.sum(idx_delta != snap._delta_bits))
            found.append(
                f"{name}: delta bitmap disagrees with the packed visibility "
                f"index in {diff} bit(s)"
            )

        # The per-device packed copy in simulated DRAM must mirror the
        # in-memory bitmap (every device holds the same copy; device 0
        # stands in for all of them).
        for region, bits in (
            (Region.DATA, snap._data_bits),
            (Region.DELTA, snap._delta_bits),
        ):
            stored = runtime.storage.read_bitmap(region, device=0)
            if not np.array_equal(stored, self._packed(bits)):
                found.append(
                    f"{name}: stored {region} bitmap copy diverges from the "
                    "in-memory bitmap"
                )
        return found

    @staticmethod
    def _apply(data: np.ndarray, delta: np.ndarray, ref, value: bool) -> None:
        bits = data if ref.region == Region.DATA else delta
        bits[ref.index] = value

    @staticmethod
    def _packed(bits: np.ndarray) -> np.ndarray:
        nbytes = max(1, ceil_div(len(bits), 8))
        packed = np.packbits(bits.astype(np.uint8), bitorder="little")
        out = np.zeros(nbytes, dtype=np.uint8)
        out[: len(packed)] = packed
        return out
