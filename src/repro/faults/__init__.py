"""Deterministic fault injection and invariant checking.

ROADMAP calls for perturbing the engine's control paths — dropped or
duplicated launch requests, abort storms, defragmentation in the middle
of a query interval — and asserting that the engine's invariants hold
while telemetry counters expose every fault.

The subsystem has four parts:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a seed + per-hook rate
  table that decides, reproducibly, which hook firings inject a fault
  (no wall-clock randomness anywhere);
* :mod:`repro.faults.injector` — the process-global
  :class:`FaultInjector` switch, mirroring the telemetry registry: the
  instrumented layers consult :func:`repro.faults.injector.active` and
  pay only an attribute check when injection is off;
* :mod:`repro.faults.invariants` — :class:`InvariantChecker`: asserts
  controller protocol state, bank-lock discipline, MVCC chain/log
  agreement, and snapshot-bitmap/MVCC-log agreement at safe points;
* :mod:`repro.faults.sweep` — the ``fault-sweep`` harness behind
  ``python -m repro.experiments fault-sweep``.

``invariants`` and ``sweep`` are intentionally *not* imported here: the
injector is imported by low-level layers (controller, OLTP engine) and
must stay free of dependencies on the engine stack.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector, active, deactivate, install
from repro.faults.plan import HOOKS, FaultPlan, FaultRates

__all__ = [
    "FaultPlan",
    "FaultRates",
    "HOOKS",
    "FaultInjector",
    "active",
    "install",
    "deactivate",
]
