"""The ``fault-sweep`` harness: workload under injected faults.

Runs the mixed HTAP workload twice — once clean (the baseline) and once
with a seeded :class:`~repro.faults.injector.FaultInjector` installed —
and reports whether the engine *survived* (no unhandled error, zero
invariant violations) together with the throughput degradation the
injected faults caused. Both runs build identical engines from the same
seed, so with the same arguments the sweep is bit-for-bit reproducible.

This module sits at the top of the fault stack (it imports the engine
and workload driver) and is intentionally **not** re-exported from
:mod:`repro.faults` — importing it from low-level modules would create
an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.engine import PushTapEngine
from repro.errors import ReproError
from repro.faults.injector import FaultInjector, deactivate, install
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan, FaultRates
from repro.workloads.driver import MixedWorkload

__all__ = ["SweepResult", "run_fault_sweep"]


@dataclass
class SweepResult:
    """Outcome of one fault sweep (baseline + faulted run)."""

    seed: int
    rates: Dict[str, float]
    survived: bool = True
    error: Optional[str] = None
    baseline_tpmc: float = 0.0
    baseline_qphh: float = 0.0
    faulted_tpmc: float = 0.0
    faulted_qphh: float = 0.0
    transactions: int = 0
    aborted: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    detected: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    checks: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def tpmc_degradation(self) -> float:
        """Fractional tpmC lost to the injected faults."""
        if self.baseline_tpmc == 0:
            return 0.0
        return 1.0 - self.faulted_tpmc / self.baseline_tpmc

    @property
    def qphh_degradation(self) -> float:
        """Fractional QphH lost to the injected faults."""
        if self.baseline_qphh == 0:
            return 0.0
        return 1.0 - self.faulted_qphh / self.baseline_qphh

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable summary."""
        return {
            "seed": self.seed,
            "rates": self.rates,
            "survived": self.survived,
            "error": self.error,
            "baseline_tpmc": self.baseline_tpmc,
            "baseline_qphh": self.baseline_qphh,
            "faulted_tpmc": self.faulted_tpmc,
            "faulted_qphh": self.faulted_qphh,
            "tpmc_degradation": self.tpmc_degradation,
            "qphh_degradation": self.qphh_degradation,
            "transactions": self.transactions,
            "aborted": self.aborted,
            "injected": self.injected,
            "detected": self.detected,
            "retries": self.retries,
            "invariant_checks": self.checks,
            "invariant_violations": self.violations,
        }


def _build_engine(
    seed: int, scale: float, defrag_period: int, controller_kind: str
) -> PushTapEngine:
    return PushTapEngine.build(
        scale=scale,
        seed=seed,
        controller_kind=controller_kind,
        defrag_period=defrag_period,
        block_rows=256,
    )


def run_fault_sweep(
    seed: int,
    rates: FaultRates,
    intervals: int = 6,
    txns_per_query: int = 30,
    scale: float = 2e-5,
    defrag_period: int = 200,
    controller_kind: str = "pushtap",
    delivery_fraction: float = 0.1,
) -> SweepResult:
    """Run the baseline and faulted workloads; returns the comparison.

    ``intervals`` query intervals of ``txns_per_query`` transactions
    each are driven against two identically built engines. The faulted
    run installs a :class:`FaultPlan` derived from ``seed`` and
    ``rates`` and checks invariants after every injected fault and at
    every interval boundary. A nonzero ``delivery_fraction`` keeps the
    tombstone → defragmentation reconciliation path exercised.
    """
    result = SweepResult(seed=seed, rates=dict(rates.rates))

    # Baseline: same engine, same workload seeds, no injector.
    baseline = _build_engine(seed, scale, defrag_period, controller_kind)
    base_report = MixedWorkload(
        baseline,
        txns_per_query=txns_per_query,
        seed=seed,
        delivery_fraction=delivery_fraction,
    ).run(intervals)
    result.baseline_tpmc = base_report.oltp_tpmc
    result.baseline_qphh = base_report.olap_qphh

    # Faulted run: injector installed for exactly this scope.
    engine = _build_engine(seed, scale, defrag_period, controller_kind)
    injector = FaultInjector(FaultPlan(seed, rates))
    checker = InvariantChecker(engine, raise_on_violation=False)
    install(injector)
    try:
        workload = MixedWorkload(
            engine,
            txns_per_query=txns_per_query,
            seed=seed,
            delivery_fraction=delivery_fraction,
            invariant_checker=checker,
        )
        report = workload.run(intervals)
        result.faulted_tpmc = report.oltp_tpmc
        result.faulted_qphh = report.olap_qphh
        result.transactions = report.transactions
        result.aborted = report.aborted
    except ReproError as exc:
        # The engine did not absorb the faults (e.g. retry budget
        # exhausted): report the failure instead of crashing the sweep.
        result.survived = False
        result.error = f"{type(exc).__name__}: {exc}"
    finally:
        deactivate()
    # One final end-of-run consistency audit.
    checker.check()
    result.injected = dict(injector.injected)
    result.detected = dict(injector.detected)
    result.retries = injector.retries
    result.checks = checker.checks
    result.violations = list(checker.violations)
    if result.violations:
        result.survived = False
    return result
