"""The ``fault-sweep`` harness: workload under injected faults.

Runs the mixed HTAP workload twice — once clean (the baseline) and once
with a seeded :class:`~repro.faults.injector.FaultInjector` installed —
and reports whether the engine *survived* (no unhandled error, zero
invariant violations) together with the throughput degradation the
injected faults caused. Both runs build identical engines from the same
seed, so with the same arguments the sweep is bit-for-bit reproducible.

This module sits at the top of the fault stack (it imports the engine
and workload driver) and is intentionally **not** re-exported from
:mod:`repro.faults` — importing it from low-level modules would create
an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.engine import PushTapEngine
from repro.errors import ConfigError, ReproError
from repro.faults.injector import FaultInjector, deactivate, install
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan, FaultRates
from repro.workloads.driver import MixedWorkload

__all__ = ["SweepResult", "run_fault_sweep"]


@dataclass
class SweepResult:
    """Outcome of one fault sweep (baseline + faulted run)."""

    seed: int
    rates: Dict[str, float]
    #: Which workload shape drove the engines ("mixed" or "serve").
    workload: str = "mixed"
    #: SHA-256 of the fault plan's determinism surface (seed + rates) —
    #: two reports with equal hashes replayed the same fault schedule.
    plan_hash: str = ""
    survived: bool = True
    error: Optional[str] = None
    baseline_tpmc: float = 0.0
    baseline_qphh: float = 0.0
    faulted_tpmc: float = 0.0
    faulted_qphh: float = 0.0
    transactions: int = 0
    aborted: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    detected: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    checks: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def tpmc_degradation(self) -> float:
        """Fractional tpmC lost to the injected faults."""
        if self.baseline_tpmc == 0:
            return 0.0
        return 1.0 - self.faulted_tpmc / self.baseline_tpmc

    @property
    def qphh_degradation(self) -> float:
        """Fractional QphH lost to the injected faults."""
        if self.baseline_qphh == 0:
            return 0.0
        return 1.0 - self.faulted_qphh / self.baseline_qphh

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable summary."""
        return {
            "seed": self.seed,
            "rates": self.rates,
            "workload": self.workload,
            "plan_hash": self.plan_hash,
            "survived": self.survived,
            "error": self.error,
            "baseline_tpmc": self.baseline_tpmc,
            "baseline_qphh": self.baseline_qphh,
            "faulted_tpmc": self.faulted_tpmc,
            "faulted_qphh": self.faulted_qphh,
            "tpmc_degradation": self.tpmc_degradation,
            "qphh_degradation": self.qphh_degradation,
            "transactions": self.transactions,
            "aborted": self.aborted,
            "injected": self.injected,
            "detected": self.detected,
            "retries": self.retries,
            "invariant_checks": self.checks,
            "invariant_violations": self.violations,
        }


def _build_engine(
    seed: int, scale: float, defrag_period: int, controller_kind: str
) -> PushTapEngine:
    return PushTapEngine.build(
        scale=scale,
        seed=seed,
        controller_kind=controller_kind,
        defrag_period=defrag_period,
        block_rows=256,
    )


def _run_mixed(
    seed: int,
    intervals: int,
    txns_per_query: int,
    delivery_fraction: float,
    invariant_checker: Optional[InvariantChecker],
    engine: PushTapEngine,
) -> Dict[str, object]:
    report = MixedWorkload(
        engine,
        txns_per_query=txns_per_query,
        seed=seed,
        delivery_fraction=delivery_fraction,
        invariant_checker=invariant_checker,
    ).run(intervals)
    return {
        "tpmc": report.oltp_tpmc,
        "qphh": report.olap_qphh,
        "transactions": report.transactions,
        "aborted": report.aborted,
    }


def _run_serve(
    seed: int,
    txns_per_query: int,
    invariant_checker: Optional[InvariantChecker],
    engine: PushTapEngine,
) -> Dict[str, object]:
    # Imported here: repro.serve sits above this module in the layering
    # (it imports the fault plan/injector), so a top-level import would
    # be a cycle.
    from repro.serve.loop import ServeConfig, ServeLoop

    config = ServeConfig(
        tenants=3,
        requests_per_tenant=max(8, txns_per_query),
        policy="batched",
        seed=seed,
        arrival="open",
        rate_per_tenant=100_000.0,
        olap_fraction=0.2,
        queue_depth=12,
    )
    result = ServeLoop(
        engine, config, invariant_checker=invariant_checker
    ).run()
    throughput = result.report["throughput"]
    aborted = sum(s["aborted"] for s in result.report["tenants"].values())
    if result.slo_errors and invariant_checker is not None:
        # Broken request conservation is an invariant violation of the
        # serving layer: surface it through the same channel.
        invariant_checker.violations.extend(
            f"serve: {err}" for err in result.slo_errors
        )
    return {
        "tpmc": throughput["oltp_tpmc"],
        "qphh": throughput["olap_qphh"],
        "transactions": result.report["engine"]["transactions"],
        "aborted": aborted,
    }


def run_fault_sweep(
    seed: int,
    rates: FaultRates,
    intervals: int = 6,
    txns_per_query: int = 30,
    scale: float = 2e-5,
    defrag_period: int = 200,
    controller_kind: str = "pushtap",
    delivery_fraction: float = 0.1,
    workload: str = "mixed",
) -> SweepResult:
    """Run the baseline and faulted workloads; returns the comparison.

    With ``workload="mixed"``, ``intervals`` query intervals of
    ``txns_per_query`` transactions each are driven against two
    identically built engines. With ``workload="serve"``, the serving
    loop runs instead (``txns_per_query`` becomes requests per tenant),
    which exercises the serve-layer hooks — client disconnects, spurious
    queue overflow, scheduler stalls — on top of the engine-level ones.
    The faulted run installs a :class:`FaultPlan` derived from ``seed``
    and ``rates`` and checks invariants after every injected fault and
    at every safe-point boundary. A nonzero ``delivery_fraction`` keeps
    the tombstone → defragmentation reconciliation path exercised.
    """
    if workload not in ("mixed", "serve"):
        raise ConfigError(f"unknown sweep workload {workload!r}")
    plan = FaultPlan(seed, rates)
    result = SweepResult(
        seed=seed,
        rates=dict(rates.rates),
        workload=workload,
        plan_hash=plan.content_hash(),
    )

    def _drive(invariant_checker, engine):
        if workload == "serve":
            return _run_serve(seed, txns_per_query, invariant_checker, engine)
        return _run_mixed(
            seed,
            intervals,
            txns_per_query,
            delivery_fraction,
            invariant_checker,
            engine,
        )

    # Baseline: same engine, same workload seeds, no injector.
    baseline = _build_engine(seed, scale, defrag_period, controller_kind)
    base = _drive(None, baseline)
    result.baseline_tpmc = base["tpmc"]
    result.baseline_qphh = base["qphh"]

    # Faulted run: injector installed for exactly this scope.
    engine = _build_engine(seed, scale, defrag_period, controller_kind)
    injector = FaultInjector(plan)
    checker = InvariantChecker(engine, raise_on_violation=False)
    install(injector)
    try:
        faulted = _drive(checker, engine)
        result.faulted_tpmc = faulted["tpmc"]
        result.faulted_qphh = faulted["qphh"]
        result.transactions = faulted["transactions"]
        result.aborted = faulted["aborted"]
    except ReproError as exc:
        # The engine did not absorb the faults (e.g. retry budget
        # exhausted): report the failure instead of crashing the sweep.
        result.survived = False
        result.error = f"{type(exc).__name__}: {exc}"
    finally:
        deactivate()
    # One final end-of-run consistency audit.
    checker.check()
    result.injected = dict(injector.injected)
    result.detected = dict(injector.detected)
    result.retries = injector.retries
    result.checks = checker.checks
    result.violations = list(checker.violations)
    if result.violations:
        result.survived = False
    return result
