"""Seed-driven fault schedules.

A :class:`FaultPlan` owns one independent random stream per *hook point*
(a named location in the engine where a fault class can strike), derived
from a single seed via CRC-32 of the hook name — the same per-name
derivation :mod:`repro.workloads.tpcc_gen` uses for table streams. Two
plans built from the same seed and rates produce the *identical* fault
schedule for the identical sequence of hook consultations, which is what
makes a faulted run replayable: no wall-clock randomness is involved.

Hooks whose rate is zero never consume randomness, so enabling one fault
class does not perturb the schedule of another.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "HOOKS",
    "DROP_LAUNCH",
    "DUPLICATE_LAUNCH",
    "GARBLE_LAUNCH",
    "POLL_NOT_DONE",
    "CHUNK_REISSUE",
    "INTERRUPT_OFFLOAD",
    "FORCED_ABORT",
    "DELTA_EXHAUSTION",
    "DEFRAG_MID_QUERY",
    "CLIENT_DISCONNECT",
    "QUEUE_OVERFLOW",
    "SCHEDULER_STALL",
    "CRASH_BEFORE_WAL_APPEND",
    "CRASH_AFTER_WAL_APPEND",
    "CRASH_MID_CHECKPOINT",
    "CRASH_HOOKS",
    "TWOPC_COORDINATOR_CRASH",
    "TWOPC_PARTICIPANT_TIMEOUT",
    "TWOPC_LOST_PREPARE",
    "TWOPC_HOOKS",
    "FaultRates",
    "FaultPlan",
]

#: Controller: a launch write vanishes before reaching the scheduler.
DROP_LAUNCH = "drop_launch"
#: Controller: the scheduler receives the same launch write twice.
DUPLICATE_LAUNCH = "duplicate_launch"
#: Controller: the launch payload arrives corrupted (bad Fig. 7b encoding).
GARBLE_LAUNCH = "garble_launch"
#: Controller: the polling module answers "not done" N extra times.
POLL_NOT_DONE = "poll_not_done"
#: Executor: a WRAM compute chunk must be re-issued.
CHUNK_REISSUE = "chunk_reissue"
#: Executor: the offload is interrupted at a chunk boundary.
INTERRUPT_OFFLOAD = "interrupt_offload"
#: OLTP: concurrency control force-aborts the transaction (abort storm).
FORCED_ABORT = "forced_abort"
#: OLTP: the delta region reports exhaustion mid-transaction.
DELTA_EXHAUSTION = "delta_exhaustion"
#: Engine: defragmentation triggers in the middle of a query interval.
DEFRAG_MID_QUERY = "defrag_mid_query"
#: Serve: the client vanishes mid-transaction; its writes must roll back.
CLIENT_DISCONNECT = "client_disconnect"
#: Serve: the admission queue spuriously reports overflow (request shed).
QUEUE_OVERFLOW = "queue_overflow"
#: Serve: the HTAP scheduler misses its dispatch tick(s); OLAP backs up.
SCHEDULER_STALL = "scheduler_stall"
#: Durability: the process dies before the commit record reaches the WAL.
CRASH_BEFORE_WAL_APPEND = "crash_before_wal_append"
#: Durability: the process dies right after the WAL append is durable.
CRASH_AFTER_WAL_APPEND = "crash_after_wal_append"
#: Durability: the process dies after spilling a checkpoint segment but
#: before the manifest rename makes it reachable.
CRASH_MID_CHECKPOINT = "crash_mid_checkpoint"
#: Cluster 2PC: the coordinator goes silent after collecting the votes
#: but before the decision reaches any participant (presumed abort).
TWOPC_COORDINATOR_CRASH = "twopc_coordinator_crash"
#: Cluster 2PC: a participant's vote never arrives; the coordinator's
#: timeout expires and the transaction aborts globally.
TWOPC_PARTICIPANT_TIMEOUT = "twopc_participant_timeout"
#: Cluster 2PC: a prepare request is lost in the interconnect — the
#: participant never even executes; coordinator timeout, global abort.
TWOPC_LOST_PREPARE = "twopc_lost_prepare"

#: Every hook point threaded through the engine, in documentation order.
HOOKS: Tuple[str, ...] = (
    DROP_LAUNCH,
    DUPLICATE_LAUNCH,
    GARBLE_LAUNCH,
    POLL_NOT_DONE,
    CHUNK_REISSUE,
    INTERRUPT_OFFLOAD,
    FORCED_ABORT,
    DELTA_EXHAUSTION,
    DEFRAG_MID_QUERY,
    CLIENT_DISCONNECT,
    QUEUE_OVERFLOW,
    SCHEDULER_STALL,
    CRASH_BEFORE_WAL_APPEND,
    CRASH_AFTER_WAL_APPEND,
    CRASH_MID_CHECKPOINT,
    TWOPC_COORDINATOR_CRASH,
    TWOPC_PARTICIPANT_TIMEOUT,
    TWOPC_LOST_PREPARE,
)

#: The process-death hooks; each kills the run with a
#: :class:`~repro.errors.SimulatedCrash` instead of a recoverable fault.
CRASH_HOOKS: Tuple[str, ...] = (
    CRASH_BEFORE_WAL_APPEND,
    CRASH_AFTER_WAL_APPEND,
    CRASH_MID_CHECKPOINT,
)

#: The cluster two-phase-commit hooks; every one resolves to a
#: deterministic global abort (presumed-abort keeps atomicity).
TWOPC_HOOKS: Tuple[str, ...] = (
    TWOPC_COORDINATOR_CRASH,
    TWOPC_PARTICIPANT_TIMEOUT,
    TWOPC_LOST_PREPARE,
)


@dataclass(frozen=True)
class FaultRates:
    """Per-hook injection probabilities, each in ``[0, 1]``.

    Constructed from keyword arguments or :meth:`from_mapping` (the CLI's
    ``--rates drop_launch=0.05,...`` form). Unknown hook names raise
    :class:`~repro.errors.ConfigError` so typos cannot silently disable a
    fault class.
    """

    rates: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for hook, rate in self.rates.items():
            if hook not in HOOKS:
                raise ConfigError(
                    f"unknown fault hook {hook!r}; known hooks: {', '.join(HOOKS)}"
                )
            if not 0.0 <= float(rate) <= 1.0:
                raise ConfigError(f"fault rate {hook}={rate} outside [0, 1]")

    @classmethod
    def from_mapping(cls, rates: Mapping[str, float]) -> "FaultRates":
        """Build from a plain ``{hook: rate}`` mapping."""
        return cls(dict(rates))

    @classmethod
    def parse(cls, spec: str) -> "FaultRates":
        """Parse the CLI form ``hook=rate,hook=rate,...``."""
        rates: Dict[str, float] = {}
        for item in filter(None, (part.strip() for part in spec.split(","))):
            if "=" not in item:
                raise ConfigError(f"fault rate {item!r} is not of the form hook=rate")
            hook, _, value = item.partition("=")
            try:
                rates[hook.strip()] = float(value)
            except ValueError:
                raise ConfigError(f"fault rate {item!r} has a non-numeric rate") from None
        return cls(rates)

    def rate(self, hook: str) -> float:
        """The injection probability of ``hook`` (0.0 when unconfigured)."""
        if hook not in HOOKS:
            raise ConfigError(f"unknown fault hook {hook!r}")
        return float(self.rates.get(hook, 0.0))

    @property
    def active_hooks(self) -> Tuple[str, ...]:
        """Hooks with a nonzero rate, in canonical order."""
        return tuple(h for h in HOOKS if self.rate(h) > 0.0)


class FaultPlan:
    """Decides which hook consultations inject a fault, reproducibly.

    ``draw(hook)`` is called once per hook consultation; it returns True
    when a fault should be injected there. The decision sequence of each
    hook is a pure function of ``(seed, hook, rate)``, so re-running the
    same workload under the same plan parameters replays the same fault
    schedule — the property the determinism tests lock in.
    """

    def __init__(self, seed: int, rates: Optional[FaultRates] = None) -> None:
        self.seed = int(seed)
        self.rates = rates or FaultRates()
        self._streams: Dict[str, np.random.RandomState] = {}
        self._draws: Dict[str, int] = {h: 0 for h in HOOKS}
        #: Injected faults as ``(hook, draw_index)`` pairs, in injection
        #: order per hook — the comparable "fault schedule" of one run.
        self.schedule: List[Tuple[str, int]] = []

    def _stream(self, hook: str) -> np.random.RandomState:
        stream = self._streams.get(hook)
        if stream is None:
            derived = (self.seed ^ zlib.crc32(hook.encode("ascii"))) & 0x7FFF_FFFF
            stream = self._streams[hook] = np.random.RandomState(derived)
        return stream

    def draw(self, hook: str) -> bool:
        """One consultation of ``hook``: inject here?

        Zero-rate hooks return False without consuming randomness, so
        the schedules of active hooks are independent of which other
        hooks exist in the run.
        """
        rate = self.rates.rate(hook)
        if rate <= 0.0:
            return False
        index = self._draws[hook]
        self._draws[hook] = index + 1
        fired = bool(self._stream(hook).random_sample() < rate)
        if fired:
            self.schedule.append((hook, index))
        return fired

    def draw_int(self, hook: str, low: int, high: int) -> int:
        """A deterministic integer in ``[low, high]`` from ``hook``'s stream.

        Used for fault magnitudes (e.g. how many extra not-done polls a
        :data:`POLL_NOT_DONE` fault delivers).
        """
        if low > high:
            raise ConfigError(f"draw_int bounds inverted: [{low}, {high}]")
        return int(self._stream(hook).randint(low, high + 1))

    def draws(self, hook: str) -> int:
        """Number of consultations of ``hook`` so far."""
        if hook not in HOOKS:
            raise ConfigError(f"unknown fault hook {hook!r}")
        return self._draws[hook]

    def content_hash(self) -> str:
        """SHA-256 over the plan's determinism surface (seed + rates).

        Two plans with equal hashes replay identical fault schedules for
        identical consultation sequences; sweep reports carry the hash so
        a result can be traced back to the exact plan that produced it.
        """
        canonical = f"seed={self.seed};" + ",".join(
            f"{hook}={self.rates.rate(hook):.17g}"
            for hook in self.rates.active_hooks
        )
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()
