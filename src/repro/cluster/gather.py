"""Scatter-gather OLAP: merging per-shard query partials.

The paper's three representative queries all decompose over a warehouse
partition: Q1's grouped sums, Q6's filtered sum, and Q9's join revenue
are additive across disjoint ORDERLINE partitions (Q9's ITEM build side
is replicated on every shard, so each shard's join is complete over its
own order lines). The merge is integer addition, so the merged rows are
*bit-identical* to a single engine scanning the union of the data — the
cluster acceptance property the tests compare dict-for-dict.

The gather itself is modelled as one partial-result transfer per remote
shard over the cluster interconnect; shard scans run in parallel, so a
scatter-gather query's latency is the slowest shard plus the gather.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import QueryError
from repro.olap.queries import QueryResult

__all__ = ["MERGEABLE_QUERIES", "merge_rows", "ClusterQueryResult"]

#: Queries the cluster can scatter-gather (additive partials).
MERGEABLE_QUERIES = ("Q1", "Q6", "Q9")


def merge_rows(name: str, shard_rows: Sequence[Dict]) -> Dict:
    """Merge per-shard result rows into the union-of-data result."""
    if name == "Q1":
        merged: Dict = {}
        for rows in shard_rows:
            for key, agg in rows.items():
                acc = merged.get(key)
                if acc is None:
                    merged[key] = dict(agg)
                else:
                    acc["sum_qty"] += agg["sum_qty"]
                    acc["sum_amount"] += agg["sum_amount"]
                    acc["count"] += agg["count"]
        return {key: merged[key] for key in sorted(merged)}
    if name == "Q6":
        return {"revenue": sum(int(rows.get("revenue", 0)) for rows in shard_rows)}
    if name == "Q9":
        return {
            "revenue": sum(int(rows.get("revenue", 0)) for rows in shard_rows),
            "matches": sum(int(rows.get("matches", 0)) for rows in shard_rows),
        }
    raise QueryError(
        f"query {name!r} is not cluster-mergeable "
        f"(supported: {', '.join(MERGEABLE_QUERIES)})"
    )


@dataclass
class ClusterQueryResult:
    """Merged rows and timing of one scatter-gather query."""

    name: str
    rows: Dict = field(default_factory=dict)
    shard_results: List[QueryResult] = field(default_factory=list)
    #: Interconnect time gathering the partials (0 on a 1-shard cluster).
    gather_time: float = 0.0

    @property
    def total_time(self) -> float:
        """Client latency: slowest shard scan plus the gather (ns)."""
        slowest = max((r.total_time for r in self.shard_results), default=0.0)
        return slowest + self.gather_time
