"""Warehouse partitioning of the CH-benCHmark database across shards.

TPC-C partitions naturally by warehouse: every table except ITEM carries
a warehouse column, and the transactions touch remote warehouses only
through the ~1 %/15 % remote New-Order/Payment rates. A shard therefore
holds the rows of the warehouses assigned to it (round-robin:
``shard_of(w) = (w - 1) % N``) plus a full replica of the read-only ITEM
table, and a cluster of N shards covers exactly the single-engine
database — the property the scatter-gather OLAP tests lock in by
comparing merged shard results bit-identically against one engine
loaded with the union of the data.

Each shard engine is built through :meth:`PushTapEngine.build` with the
*global* row counts and a ``row_filter`` keeping its partition, so every
shard consumes the same deterministic generator stream and retains a
disjoint (ITEM aside) subset; capacities and MVCC state are sized to the
retained rows. A 1-shard cluster passes ``row_filter=None`` and is the
bare engine, byte for byte.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.engine import PushTapEngine
from repro.errors import ConfigError
from repro.units import round_up
from repro.workloads.chbench import row_counts

__all__ = [
    "PARTITION_COLUMNS",
    "shard_of",
    "shard_warehouses",
    "cluster_row_counts",
    "partition_row_filter",
    "build_shard",
]

#: The warehouse column each table partitions on (None → replicated).
PARTITION_COLUMNS: Dict[str, Optional[str]] = {
    "warehouse": "w_id",
    "district": "d_w_id",
    "customer": "c_w_id",
    "history": "h_w_id",
    "order": "o_w_id",
    "neworder": "no_w_id",
    "orderline": "ol_w_id",
    "stock": "s_w_id",
    "item": None,
}


def shard_of(w_id: int, num_shards: int) -> int:
    """The shard owning warehouse ``w_id`` (round-robin assignment)."""
    return (int(w_id) - 1) % int(num_shards)


def shard_warehouses(shard: int, num_shards: int, warehouses: int) -> List[int]:
    """The warehouses resident on ``shard`` (ascending)."""
    return [
        w for w in range(1, int(warehouses) + 1) if shard_of(w, num_shards) == shard
    ]


def cluster_row_counts(scale: float, num_shards: int) -> Dict[str, int]:
    """Row counts for an N-shard cluster at ``scale``.

    With one shard this is exactly :func:`~repro.workloads.chbench.row_counts`
    (the bare engine's counts — bit-identity demands it). With more, the
    warehouse count is raised to a multiple of ``num_shards`` (so every
    shard owns the same number of warehouses), districts follow at 10 per
    warehouse, and ITEM/STOCK are raised to a multiple of the warehouse
    count so each warehouse supplies the same number of items. The other
    tables keep their scale-derived totals: the cluster holds the *same*
    data volume regardless of N, which is what makes the shard-count
    sweep a scaling experiment rather than a data-size one.
    """
    if num_shards < 1:
        raise ConfigError("num_shards must be >= 1")
    counts = row_counts(scale)
    if num_shards == 1:
        return counts
    warehouses = round_up(max(counts["warehouse"], num_shards), num_shards)
    counts["warehouse"] = warehouses
    counts["district"] = warehouses * 10
    items = round_up(max(counts["item"], warehouses), warehouses)
    counts["item"] = items
    counts["stock"] = items
    return counts


def partition_row_filter(shard: int, num_shards: int) -> Callable[[str, Dict], bool]:
    """A :meth:`PushTapEngine.build` row filter keeping ``shard``'s rows."""

    def keep(table: str, values: Dict) -> bool:
        column = PARTITION_COLUMNS[table]
        if column is None:
            return True
        return shard_of(values[column], num_shards) == shard

    return keep


def build_shard(
    shard: int,
    num_shards: int,
    counts: Dict[str, int],
    **build_kwargs,
) -> PushTapEngine:
    """Build one shard engine over the global generator stream.

    A 1-shard cluster passes no filter at all, so its engine goes down
    the legacy streaming load path and is bit-identical to
    ``PushTapEngine.build(counts=counts, ...)``.
    """
    if not 0 <= shard < num_shards:
        raise ConfigError(f"shard {shard} outside [0, {num_shards})")
    if counts["warehouse"] < num_shards:
        raise ConfigError(
            f"{counts['warehouse']} warehouse(s) cannot cover {num_shards} shards"
        )
    row_filter = None if num_shards == 1 else partition_row_filter(shard, num_shards)
    return PushTapEngine.build(counts=counts, row_filter=row_filter, **build_kwargs)
