"""Sharded multi-engine cluster: router, 2PC, scatter-gather OLAP.

The cluster layer composes N independent :class:`~repro.core.engine.
PushTapEngine` instances — one simulated PIM server each — into a single
warehouse-partitioned TPC-C system:

- :mod:`repro.cluster.partition` — warehouse → shard placement and
  per-shard row filtering over one global generator stream;
- :mod:`repro.cluster.router` — routes each transaction to the shards
  it touches and splits cross-shard ones into per-shard sub-closures;
- :mod:`repro.cluster.twopc` — deterministic simulated-time two-phase
  commit (presumed abort) over the engines' prepare/commit interface;
- :mod:`repro.cluster.gather` — scatter-gather merge of Q1/Q6/Q9
  partials, bit-identical to one engine scanning the union of the data;
- :mod:`repro.cluster.cluster` — the :class:`PushTapCluster` facade;
- :mod:`repro.cluster.workload` — the tenant-pinned mixed workload and
  its :class:`ClusterReport`;
- :mod:`repro.cluster.sweep` — the fault sweep asserting 2PC atomicity
  under injected coordinator/participant faults.
"""

from repro.cluster.cluster import ClusterTxnResult, PushTapCluster
from repro.cluster.gather import (
    MERGEABLE_QUERIES,
    ClusterQueryResult,
    merge_rows,
)
from repro.cluster.partition import (
    build_shard,
    cluster_row_counts,
    partition_row_filter,
    shard_of,
    shard_warehouses,
)
from repro.cluster.router import ShardRouter
from repro.cluster.sweep import ClusterSweepResult, run_cluster_fault_sweep
from repro.cluster.twopc import TwoPhaseCommit, TwoPhaseOutcome
from repro.cluster.workload import ClusterReport, ClusterWorkload, ShardReport

__all__ = [
    "MERGEABLE_QUERIES",
    "ClusterQueryResult",
    "ClusterReport",
    "ClusterSweepResult",
    "ClusterTxnResult",
    "ClusterWorkload",
    "PushTapCluster",
    "ShardReport",
    "ShardRouter",
    "TwoPhaseCommit",
    "TwoPhaseOutcome",
    "build_shard",
    "cluster_row_counts",
    "merge_rows",
    "partition_row_filter",
    "run_cluster_fault_sweep",
    "shard_of",
    "shard_warehouses",
]
