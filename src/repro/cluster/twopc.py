"""Deterministic simulated-time two-phase commit across shard engines.

The coordinator drives the classic presumed-abort protocol over the
participant interface :class:`~repro.oltp.engine.OLTPEngine` grew for
the cluster: ``prepare`` runs a sub-transaction's body and hardens its
writes behind a prepare record (charged through the same §6.3
flush+barrier model as a single-phase commit), the participant's write
locks stay held across the phases, and ``commit_prepared`` /
``abort_prepared`` resolve the vote. A commit decision costs each
participant one extra flushed line (the decision record) — the
per-participant overhead a cross-shard transaction pays over a local
one — while an abort flushes nothing (presumed abort).

Interconnect traffic is modelled as a fixed per-message latency; a
coordinator that goes silent (the injected coordinator crash) sends no
decision at all, and every prepared participant resolves by timing out
into the presumed abort. All three cluster fault hooks
(:data:`~repro.faults.plan.TWOPC_LOST_PREPARE`,
:data:`~repro.faults.plan.TWOPC_PARTICIPANT_TIMEOUT`,
:data:`~repro.faults.plan.TWOPC_COORDINATOR_CRASH`) therefore resolve
to a deterministic *global* abort: no shard ever commits a transaction
another shard aborted, the invariant :meth:`TwoPhaseCommit.
atomicity_violations` checks over the outcome log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import TransactionError
from repro.faults import injector as faults
from repro.faults import plan as fault_plan
from repro.oltp.engine import TxnContext, TxnResult
from repro.telemetry import registry as telemetry

__all__ = [
    "TwoPhaseOutcome",
    "TwoPhaseCommit",
    "TwoPCDecision",
    "plan_twopc_decision",
]


@dataclass(frozen=True)
class TwoPCDecision:
    """A fault-plan consultation for one cross-shard transaction.

    The parallel plan pass draws the same hook stream the sequential
    coordinator would (and in the same order), without executing any
    participant — single-shard TPC-C sub-transactions always vote yes,
    which the workers assert.
    """

    order: tuple
    #: Per-shard phase-1 status: ``"ok"``, ``"lost"``, or ``"timeout"``.
    statuses: Dict[int, str]
    decide_commit: bool
    coordinator_silent: bool
    abort_cause: Optional[str]
    #: How many hooks fired (the merge pass replays their accounting).
    fires: int


def plan_twopc_decision(home: int, shards: Sequence[int]) -> TwoPCDecision:
    """Draw the 2PC fault decisions for one transaction ahead of time."""
    inj = faults.active()
    enabled = inj.enabled
    order = [home] + sorted(s for s in shards if s != home)
    statuses: Dict[int, str] = {}
    causes: List[str] = []
    fires = 0
    for shard in order:
        remote = shard != home
        if remote and enabled and inj.plan.draw(fault_plan.TWOPC_LOST_PREPARE):
            statuses[shard] = "lost"
            causes.append(fault_plan.TWOPC_LOST_PREPARE)
            fires += 1
            continue
        # The prepare is assumed to vote yes (asserted by the worker).
        if remote and enabled and inj.plan.draw(
            fault_plan.TWOPC_PARTICIPANT_TIMEOUT
        ):
            statuses[shard] = "timeout"
            causes.append(fault_plan.TWOPC_PARTICIPANT_TIMEOUT)
            fires += 1
            continue
        statuses[shard] = "ok"
    decide_commit = not causes
    coordinator_silent = False
    abort_cause: Optional[str] = None
    if decide_commit and enabled and inj.plan.draw(
        fault_plan.TWOPC_COORDINATOR_CRASH
    ):
        decide_commit = False
        coordinator_silent = True
        abort_cause = fault_plan.TWOPC_COORDINATOR_CRASH
        fires += 1
    elif not decide_commit:
        abort_cause = causes[0]
    return TwoPCDecision(
        order=tuple(order),
        statuses=statuses,
        decide_commit=decide_commit,
        coordinator_silent=coordinator_silent,
        abort_cause=abort_cause,
        fires=fires,
    )


@dataclass
class TwoPhaseOutcome:
    """Resolution of one cross-shard transaction."""

    committed: bool
    #: Client-observed latency: participant execution plus interconnect
    #: messages plus any coordinator/participant timeouts (ns).
    latency: float
    #: The interconnect/timeout share of the latency — serial
    #: coordination work that belongs to no single shard's busy time.
    coordination_time: float
    #: Why the transaction aborted (hook name or ``"vote_no"``); None
    #: when committed.
    abort_cause: Optional[str]
    #: Per-participant results (a shard hit by a lost prepare never
    #: executed and has no entry).
    per_shard: Dict[int, TxnResult] = field(default_factory=dict)


class TwoPhaseCommit:
    """Coordinates cross-shard transactions over the shard engines."""

    #: A coordinator/participant timeout, in one-way interconnect hops.
    TIMEOUT_HOPS = 4.0

    def __init__(self, engines: Sequence, interconnect_ns: float = 500.0) -> None:
        self.engines = list(engines)
        self.interconnect_ns = float(interconnect_ns)
        self.attempted = 0
        self.committed = 0
        self.aborted = 0
        self.aborts_by_cause: Dict[str, int] = {}
        #: Total interconnect + timeout time across all transactions.
        self.coordination_time = 0.0
        #: Per-transaction outcome rows ``{shard: "committed"|"aborted"}``
        #: — the atomicity checker's evidence log.
        self.outcomes: List[Dict[int, str]] = []

    @property
    def timeout_ns(self) -> float:
        """How long a silent peer is waited for before presuming abort."""
        return self.TIMEOUT_HOPS * self.interconnect_ns

    def execute(
        self,
        home: int,
        sub_txns: Dict[int, Callable[[TxnContext], None]],
    ) -> TwoPhaseOutcome:
        """Run one cross-shard transaction through both phases.

        ``home`` is the coordinator's shard (its participant exchanges no
        interconnect messages); the other participants pay one message
        per prepare request, vote, decision, and ack. Participants are
        prepared in deterministic order — home first, then ascending —
        so a run replays identically under the same fault plan.
        """
        if home not in sub_txns:
            raise TransactionError(f"home shard {home} has no sub-transaction")
        order = [home] + sorted(s for s in sub_txns if s != home)
        inj = faults.active()

        prepared: Dict[int, object] = {}
        statuses: Dict[int, str] = {}
        vote_no_results: Dict[int, TxnResult] = {}
        causes: List[str] = []
        for shard in order:
            remote = shard != home
            if remote and inj.enabled and inj.fire(fault_plan.TWOPC_LOST_PREPARE):
                # The request vanished in the interconnect: the
                # participant never executes, the coordinator's
                # timeout expires, and the vote is a presumed no.
                inj.detect(fault_plan.TWOPC_LOST_PREPARE)
                statuses[shard] = "lost"
                causes.append(fault_plan.TWOPC_LOST_PREPARE)
                continue
            handle = self.engines[shard].oltp.prepare(sub_txns[shard])
            prepared[shard] = handle
            if not handle.vote_yes:
                statuses[shard] = "vote_no"
                vote_no_results[shard] = handle.result
                causes.append("vote_no")
                continue
            if remote and inj.enabled and inj.fire(
                fault_plan.TWOPC_PARTICIPANT_TIMEOUT
            ):
                # The participant executed and voted yes, but the vote
                # never arrived; the coordinator times out and decides
                # abort — the prepared participant is resolved below.
                inj.detect(fault_plan.TWOPC_PARTICIPANT_TIMEOUT)
                statuses[shard] = "timeout"
                causes.append(fault_plan.TWOPC_PARTICIPANT_TIMEOUT)
                continue
            statuses[shard] = "ok"

        decide_commit = not causes
        abort_cause: Optional[str] = None
        coordinator_silent = False
        if decide_commit and inj.enabled and inj.fire(
            fault_plan.TWOPC_COORDINATOR_CRASH
        ):
            # Every vote was yes, but the coordinator dies before any
            # decision leaves it. Presumed abort: no decision message
            # ever travels; each prepared participant times out and
            # unilaterally aborts.
            inj.detect(fault_plan.TWOPC_COORDINATOR_CRASH)
            decide_commit = False
            coordinator_silent = True
            abort_cause = fault_plan.TWOPC_COORDINATOR_CRASH
        elif not decide_commit:
            abort_cause = causes[0]

        def resolve(shard: int, action: str) -> TxnResult:
            handle = prepared[shard]
            if action == "commit":
                return self.engines[shard].oltp.commit_prepared(handle)
            return self.engines[shard].oltp.abort_prepared(handle)

        return self._settle(
            home,
            order,
            statuses,
            vote_no_results,
            decide_commit,
            coordinator_silent,
            abort_cause,
            resolve,
        )

    def _settle(
        self,
        home: int,
        order: Sequence[int],
        statuses: Dict[int, str],
        vote_no_results: Dict[int, TxnResult],
        decide_commit: bool,
        coordinator_silent: bool,
        abort_cause: Optional[str],
        resolve: Callable[[int, str], TxnResult],
    ) -> TwoPhaseOutcome:
        """Resolve phase 2 and account the transaction.

        Shared between the sequential coordinator (``resolve`` commits or
        aborts the prepared handle on the live engine) and the parallel
        merge (``resolve`` replays the worker's journaled resolution and
        returns its result). The message/timeout arithmetic re-walks
        phase 1 from ``statuses`` in the exact accumulation order the
        inline version used, so latencies stay bit-identical.
        """
        tel = telemetry.active()
        self.attempted += 1
        msg_time = 0.0
        wait_time = 0.0
        for shard in order:
            remote = shard != home
            status = statuses[shard]
            if remote:
                msg_time += self.interconnect_ns  # prepare request
            if status == "lost":
                wait_time += self.timeout_ns
            elif status == "vote_no":
                if remote:
                    msg_time += self.interconnect_ns  # the no-vote reply
            elif status == "timeout":
                wait_time += self.timeout_ns
            elif remote:
                msg_time += self.interconnect_ns  # yes-vote reply

        per_shard: Dict[int, TxnResult] = {}
        outcome_row: Dict[int, str] = {}
        for shard in order:
            status = statuses[shard]
            if status == "lost":
                # Lost prepare: nothing executed, nothing to resolve.
                outcome_row[shard] = "aborted"
                continue
            if status == "vote_no":
                per_shard[shard] = vote_no_results[shard]
                outcome_row[shard] = "aborted"
                continue
            if decide_commit:
                per_shard[shard] = resolve(shard, "commit")
                outcome_row[shard] = "committed"
                if shard != home:
                    msg_time += 2 * self.interconnect_ns  # decision + ack
            else:
                per_shard[shard] = resolve(shard, "abort")
                outcome_row[shard] = "aborted"
                if coordinator_silent:
                    wait_time += self.timeout_ns  # resolved by timeout
                elif shard != home:
                    msg_time += self.interconnect_ns  # abort notification
        self.outcomes.append(outcome_row)

        exec_time = sum(r.total_time for r in per_shard.values())
        coordination = msg_time + wait_time
        self.coordination_time += coordination
        latency = exec_time + coordination
        if decide_commit:
            self.committed += 1
        else:
            self.aborted += 1
            self.aborts_by_cause[abort_cause] = (
                self.aborts_by_cause.get(abort_cause, 0) + 1
            )
        if tel.enabled:
            tel.counter("cluster.twopc.attempted").inc()
            if decide_commit:
                tel.counter("cluster.twopc.committed").inc()
            else:
                tel.counter("cluster.twopc.aborted").inc()
                tel.counter(f"cluster.twopc.aborted.{abort_cause}").inc()
            tel.histogram("cluster.twopc.latency_ns").observe(latency)
            tel.record_span(
                "cluster.twopc",
                latency,
                {"home": home, "participants": len(order)},
            )
        return TwoPhaseOutcome(
            committed=decide_commit,
            latency=latency,
            coordination_time=coordination,
            abort_cause=abort_cause,
            per_shard=per_shard,
        )

    def atomicity_violations(self) -> List[str]:
        """Transactions where one shard committed while another aborted.

        Always empty when the protocol is correct — every fault-sweep
        cell asserts this over the full outcome log.
        """
        found: List[str] = []
        for index, row in enumerate(self.outcomes):
            statuses = set(row.values())
            if "committed" in statuses and "aborted" in statuses:
                found.append(f"cross-shard txn {index}: mixed outcomes {row}")
        return found
