"""Cluster workload driver: tenants pinned to shards, one clock.

:class:`ClusterWorkload` mirrors :class:`~repro.workloads.driver.
MixedWorkload`'s interval loop — ``txns_per_query`` transactions, then
one analytical query — over a :class:`~repro.cluster.cluster.
PushTapCluster`. Each serving tenant owns a seeded TPC-C driver built
over the *global* row counts (per-tenant seeds and order-id
offset/stride follow the serve layer's derivation) with warehouse
affinity pinning its customers to one shard, so the shards share the
load evenly while remote payments and order lines still cross shards
at the TPC-C rates.

With one shard and one tenant the loop degenerates to exactly
``MixedWorkload``: same driver construction, same draw sequence, same
accounting — the bit-identity the cluster tests assert metric by
metric.

The report's simulated clock is the cluster makespan: shards run in
parallel (each one a serial engine, like the single-instance model), so
elapsed time is the busiest shard's busy time plus the serial
coordination work (2PC interconnect + scatter-gather) that belongs to
no shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.faults import injector as faults
from repro.oltp.tpcc import TPCCDriver
from repro.serve.slo import SLOTargets, quantiles
from repro.telemetry import registry as telemetry
from repro.telemetry.metrics import Histogram
from repro.units import S
from repro.workloads.driver import _derive_seed

from repro.cluster.cluster import PushTapCluster
from repro.cluster.partition import shard_warehouses

__all__ = ["ShardReport", "ClusterReport", "ClusterWorkload"]


@dataclass
class ShardReport:
    """One shard's share of a cluster run."""

    shard: int
    warehouses: List[int]
    transactions: int = 0
    defrag_runs: int = 0
    oltp_time: float = 0.0
    olap_time: float = 0.0
    defrag_time: float = 0.0
    #: Client latencies of transactions *homed* on this shard (ns).
    oltp_latency: Histogram = field(default=None)  # type: ignore[assignment]
    slo_violations: int = 0

    def __post_init__(self) -> None:
        if self.oltp_latency is None:
            self.oltp_latency = Histogram(
                f"cluster.shard{self.shard}.oltp.latency_ns"
            )

    @property
    def busy_time(self) -> float:
        """This shard's serial busy time (ns)."""
        return self.oltp_time + self.olap_time + self.defrag_time

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable shard summary."""
        return {
            "shard": self.shard,
            "warehouses": len(self.warehouses),
            "transactions": self.transactions,
            "defrag_runs": self.defrag_runs,
            "oltp_time_ns": self.oltp_time,
            "olap_time_ns": self.olap_time,
            "defrag_time_ns": self.defrag_time,
            "busy_time_ns": self.busy_time,
            "oltp": quantiles(self.oltp_latency),
            "slo_violations": self.slo_violations,
        }


@dataclass
class ClusterReport:
    """Throughput, latency, and cross-shard summary of one cluster run."""

    num_shards: int = 1
    tenants: int = 1
    remote_fraction: float = 1.0
    transactions: int = 0
    aborted: int = 0
    queries: int = 0
    coordination_time: float = 0.0
    per_shard: List[ShardReport] = field(default_factory=list)
    #: 2PC coordinator counters over the run.
    cross_shard_attempted: int = 0
    cross_shard_committed: int = 0
    cross_shard_aborted: int = 0
    aborts_by_cause: Dict[str, int] = field(default_factory=dict)
    #: Remote-traffic counters summed over the tenants' drivers.
    payments: int = 0
    remote_payments: int = 0
    new_orders: int = 0
    remote_new_orders: int = 0
    order_lines: int = 0
    remote_order_lines: int = 0
    tenant_shards: Dict[int, int] = field(default_factory=dict)
    query_histograms: Dict[str, Histogram] = field(default_factory=dict)
    txn_histogram: Histogram = field(
        default_factory=lambda: Histogram("workload.txn.latency_ns")
    )

    @property
    def committed(self) -> int:
        """Transactions that committed (executed minus aborted)."""
        return self.transactions - self.aborted

    @property
    def oltp_time(self) -> float:
        """Total OLTP execution time across every shard (ns)."""
        return sum(s.oltp_time for s in self.per_shard)

    @property
    def olap_time(self) -> float:
        """Total OLAP scan time across every shard (ns)."""
        return sum(s.olap_time for s in self.per_shard)

    @property
    def defrag_time(self) -> float:
        """Total defragmentation time across every shard (ns)."""
        return sum(s.defrag_time for s in self.per_shard)

    @property
    def simulated_time(self) -> float:
        """Cluster makespan: busiest shard plus serial coordination (ns)."""
        busiest = max((s.busy_time for s in self.per_shard), default=0.0)
        return busiest + self.coordination_time

    @property
    def oltp_tpmc(self) -> float:
        """Committed transactions per simulated minute."""
        if self.simulated_time == 0:
            return 0.0
        return self.committed / self.simulated_time * S * 60.0

    @property
    def olap_qphh(self) -> float:
        """Scatter-gather queries per simulated hour."""
        if self.simulated_time == 0:
            return 0.0
        return self.queries / self.simulated_time * S * 3600.0

    @property
    def cross_shard_abort_rate(self) -> float:
        """Aborted fraction of attempted cross-shard transactions."""
        if self.cross_shard_attempted == 0:
            return 0.0
        return self.cross_shard_aborted / self.cross_shard_attempted

    def query_histogram(self, name: str) -> Histogram:
        """The latency histogram of one query type (registered lazily)."""
        hist = self.query_histograms.get(name)
        if hist is None:
            hist = self.query_histograms[name] = Histogram(
                f"workload.query.{name}.latency_ns"
            )
        return hist

    def observe_query(self, name: str, latency: float) -> None:
        """Record one scatter-gather query latency sample."""
        self.query_histogram(name).observe(latency)

    def observe_txn(self, latency: float) -> None:
        """Record one transaction's client latency sample (ns)."""
        self.txn_histogram.observe(latency)
        tel = telemetry.active()
        if tel.enabled:
            tel.histogram("workload.txn.latency_ns").observe(latency)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable run summary (the cluster bench's cell)."""
        return {
            "shards": self.num_shards,
            "tenants": self.tenants,
            "remote_fraction": self.remote_fraction,
            "transactions": self.transactions,
            "committed": self.committed,
            "aborted": self.aborted,
            "queries": self.queries,
            "oltp_time_ns": self.oltp_time,
            "olap_time_ns": self.olap_time,
            "defrag_time_ns": self.defrag_time,
            "coordination_time_ns": self.coordination_time,
            "simulated_time_ns": self.simulated_time,
            "oltp_tpmc": self.oltp_tpmc,
            "olap_qphh": self.olap_qphh,
            "cross_shard": {
                "attempted": self.cross_shard_attempted,
                "committed": self.cross_shard_committed,
                "aborted": self.cross_shard_aborted,
                "abort_rate": self.cross_shard_abort_rate,
                "aborts_by_cause": dict(sorted(self.aborts_by_cause.items())),
            },
            "remote": {
                "payments": self.payments,
                "remote_payments": self.remote_payments,
                "new_orders": self.new_orders,
                "remote_new_orders": self.remote_new_orders,
                "order_lines": self.order_lines,
                "remote_order_lines": self.remote_order_lines,
            },
            "tenant_shards": {str(t): s for t, s in sorted(self.tenant_shards.items())},
            "per_shard": [s.as_dict() for s in self.per_shard],
        }


class ClusterWorkload:
    """Drives a cluster with per-tenant TPC-C streams plus OLAP fanout."""

    def __init__(
        self,
        cluster: PushTapCluster,
        txns_per_query: int = 50,
        queries: Sequence[str] = ("Q1", "Q6", "Q9"),
        seed: int = 11,
        payment_fraction: float = 0.5,
        delivery_fraction: float = 0.0,
        remote_fraction: float = 1.0,
        tenants: Optional[int] = None,
        slo_targets: Optional[SLOTargets] = None,
        invariant_checkers: Sequence = (),
        homogeneous_tenants: bool = False,
        warehouse_groups: Optional[int] = None,
        jobs: Optional[int] = None,
        worker_final_check: bool = False,
    ) -> None:
        if txns_per_query < 0:
            raise ConfigError("txns_per_query must be non-negative")
        if not queries:
            raise ConfigError("at least one analytical query is required")
        self.cluster = cluster
        #: Worker count for :meth:`run` (defaults to the cluster's);
        #: > 1 executes shard sub-streams on a process pool with a
        #: deterministic merge (see :mod:`repro.parallel`).
        self.jobs = int(cluster.jobs if jobs is None else jobs)
        if self.jobs < 1:
            raise ConfigError("jobs must be >= 1")
        #: Under ``jobs > 1``, run one extra invariant check per shard
        #: after the stream ends, inside the worker that owns the data
        #: (the fault sweep's post-run audit).
        self.worker_final_check = bool(worker_final_check)
        #: Per-shard worker checker summaries of the last parallel run.
        self.worker_invariants: List[Dict[str, object]] = []
        self.txns_per_query = txns_per_query
        self.queries = list(queries)
        self.tenants = cluster.num_shards if tenants is None else int(tenants)
        if self.tenants < 1:
            raise ConfigError("tenants must be >= 1")
        self.remote_fraction = float(remote_fraction)
        self.slo_targets = slo_targets or SLOTargets()
        self.invariant_checkers = list(invariant_checkers)
        counts = cluster.counts
        #: Tenant → home shard (round-robin; with tenants == shards each
        #: shard serves exactly one tenant).
        self.tenant_shards: Dict[int, int] = {
            t: t % cluster.num_shards for t in range(self.tenants)
        }
        # Tenant → warehouse-affinity group. Defaults to the shard
        # partition, but the scaling bench pins it to the *maximum*
        # shard count across its cells so every cell draws literally the
        # same per-tenant streams (the affinity path consumes RNG
        # differently from the full-set path, so grouping by the current
        # cell's shard count would change the transaction mix between
        # cells and poison the speedup comparison).
        groups = cluster.num_shards if warehouse_groups is None else int(
            warehouse_groups
        )
        if groups < 1 or groups % cluster.num_shards != 0:
            raise ConfigError(
                "warehouse_groups must be a positive multiple of the shard "
                f"count (got {groups} over {cluster.num_shards} shards)"
            )
        if cluster.warehouses < groups:
            raise ConfigError(
                f"{cluster.warehouses} warehouse(s) cannot cover "
                f"{groups} affinity groups"
            )
        if self.tenants == 1:
            # One tenant: exactly MixedWorkload's driver construction
            # (direct seed, no affinity) — the 1-shard/1-tenant cluster
            # must replay the single-engine workload bit for bit.
            self.drivers = [
                TPCCDriver(
                    counts,
                    seed=seed,
                    payment_fraction=payment_fraction,
                    delivery_fraction=delivery_fraction,
                    remote_fraction=remote_fraction,
                )
            ]
        else:
            # Default: per-tenant independent streams (the serve layer's
            # derivation). ``homogeneous_tenants`` gives every tenant the
            # *same* mix sequence over its own warehouse set and order-id
            # stripe — the scaling bench uses it so the measured speedup
            # isolates partitioning overhead from client-mix variance.
            self.drivers = [
                TPCCDriver(
                    counts,
                    seed=seed
                    if homogeneous_tenants
                    else _derive_seed(seed, f"tenant{t}.workload"),
                    payment_fraction=payment_fraction,
                    delivery_fraction=delivery_fraction,
                    o_id_offset=t,
                    o_id_stride=self.tenants,
                    remote_fraction=remote_fraction,
                    home_warehouses=shard_warehouses(
                        t % groups, groups, counts["warehouse"]
                    ),
                )
                for t in range(self.tenants)
            ]
        self._query_cursor = 0
        self._txn_cursor = 0

    def _maybe_check(self, force: bool = False) -> None:
        """Run the invariant checkers at a safe point (see MixedWorkload)."""
        if not self.invariant_checkers:
            return
        pending = faults.active().take_pending_checks()
        if pending or force:
            for checker in self.invariant_checkers:
                checker.check()

    def run(self, num_queries: int, jobs: Optional[int] = None) -> ClusterReport:
        """Run ``num_queries`` query intervals; returns the report.

        With ``jobs > 1`` (argument, constructor, or cluster default)
        the shard sub-streams execute on a process pool and are merged
        back in sequential order — the report, histograms, outcome
        logs, and telemetry export are byte-identical to ``jobs=1``
        (see :mod:`repro.parallel` for the preconditions enforced).
        """
        cluster = self.cluster
        jobs = self.jobs if jobs is None else int(jobs)
        if jobs < 1:
            raise ConfigError("jobs must be >= 1")
        report = ClusterReport(
            num_shards=cluster.num_shards,
            tenants=self.tenants,
            remote_fraction=self.remote_fraction,
            tenant_shards=dict(self.tenant_shards),
            per_shard=[
                ShardReport(
                    shard=s,
                    warehouses=shard_warehouses(
                        s, cluster.num_shards, cluster.warehouses
                    ),
                )
                for s in range(cluster.num_shards)
            ],
        )
        tel = telemetry.active()
        stats_before = [
            (
                e.stats.transactions,
                e.stats.defrag_runs,
                e.stats.oltp_time,
                e.stats.olap_time,
                e.stats.defrag_time,
            )
            for e in cluster.engines
        ]
        twopc = cluster.twopc
        twopc_before = (twopc.attempted, twopc.committed, twopc.aborted)
        causes_before = dict(twopc.aborts_by_cause)
        coordination_before = cluster.coordination_time
        if jobs > 1:
            # Parallel shard execution with a deterministic merge. The
            # merge fills the report's interval-loop accounting and the
            # coordinator-side cluster/2PC/telemetry state; the shared
            # delta bookkeeping below then applies to both paths.
            from repro.parallel import run_parallel_cluster_workload

            run_parallel_cluster_workload(self, num_queries, jobs, report)
        else:
            for interval in range(num_queries):
                t0 = tel.sim_time if tel.enabled else 0.0
                for _ in range(self.txns_per_query):
                    tenant = self._txn_cursor % self.tenants
                    self._txn_cursor += 1
                    driver = self.drivers[tenant]
                    txn = driver.next_transaction()
                    result = cluster.execute_transaction(txn)
                    report.transactions += 1
                    if not result.committed:
                        report.aborted += 1
                        driver.note_abort(txn)
                    report.observe_txn(result.latency)
                    home = report.per_shard[result.home]
                    home.oltp_latency.observe(result.latency)
                    if result.latency > self.slo_targets.oltp_ns:
                        home.slo_violations += 1
                    self._maybe_check()
                name = self.queries[self._query_cursor % len(self.queries)]
                self._query_cursor += 1
                query = cluster.query(name)
                report.queries += 1
                report.observe_query(name, query.total_time)
                self._maybe_check(force=True)
                if tel.enabled:
                    tel.record_span(
                        "workload.interval",
                        tel.sim_time - t0,
                        {"interval": interval, "query": name},
                        start=t0,
                    )
        for shard, engine in enumerate(cluster.engines):
            txns0, runs0, oltp0, olap0, defrag0 = stats_before[shard]
            entry = report.per_shard[shard]
            entry.transactions = engine.stats.transactions - txns0
            entry.defrag_runs = engine.stats.defrag_runs - runs0
            entry.oltp_time = engine.stats.oltp_time - oltp0
            entry.olap_time = engine.stats.olap_time - olap0
            entry.defrag_time = engine.stats.defrag_time - defrag0
        report.coordination_time = cluster.coordination_time - coordination_before
        report.cross_shard_attempted = twopc.attempted - twopc_before[0]
        report.cross_shard_committed = twopc.committed - twopc_before[1]
        report.cross_shard_aborted = twopc.aborted - twopc_before[2]
        report.aborts_by_cause = {
            cause: count - causes_before.get(cause, 0)
            for cause, count in twopc.aborts_by_cause.items()
            if count - causes_before.get(cause, 0)
        }
        for driver in self.drivers:
            report.payments += driver.payments
            report.remote_payments += driver.remote_payments
            report.new_orders += driver.new_orders
            report.remote_new_orders += driver.remote_new_orders
            report.order_lines += driver.order_lines
            report.remote_order_lines += driver.remote_order_lines
        if tel.enabled:
            tel.counter("workload.intervals").inc(num_queries)
            tel.gauge("workload.oltp_tpmc").set(report.oltp_tpmc)
            tel.gauge("workload.olap_qphh").set(report.olap_qphh)
            tel.gauge("cluster.shards").set(cluster.num_shards)
            tel.counter("cluster.txns.cross_shard").inc(
                report.cross_shard_attempted
            )
        return report
