"""Cluster fault sweep: 2PC under injected coordinator/participant faults.

The cluster analogue of :mod:`repro.faults.sweep`: run the sharded
workload twice — clean baseline, then with a seeded injector installed —
and report survival, throughput degradation, invariant violations, and
(new here) **2PC atomicity**: over the faulted run's full cross-shard
outcome log, no transaction may have committed on one shard and aborted
on another. The three cluster hooks (lost prepare, participant vote
timeout, coordinator crash before decision) all resolve through presumed
abort, so the atomicity list must stay empty in every sweep cell — CI
runs one cell per hook and fails on any violation.

Like the engine-level sweep this module sits at the top of the stack and
is not re-exported from :mod:`repro.faults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.faults.injector import FaultInjector, deactivate, install
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan, FaultRates

from repro.cluster.cluster import PushTapCluster
from repro.cluster.workload import ClusterWorkload

__all__ = ["ClusterSweepResult", "run_cluster_fault_sweep"]


@dataclass
class ClusterSweepResult:
    """Outcome of one cluster fault sweep (baseline + faulted run)."""

    seed: int
    shards: int
    rates: Dict[str, float]
    plan_hash: str = ""
    survived: bool = True
    error: Optional[str] = None
    baseline_tpmc: float = 0.0
    baseline_qphh: float = 0.0
    faulted_tpmc: float = 0.0
    faulted_qphh: float = 0.0
    transactions: int = 0
    aborted: int = 0
    cross_shard_attempted: int = 0
    cross_shard_aborted: int = 0
    aborts_by_cause: Dict[str, int] = field(default_factory=dict)
    injected: Dict[str, int] = field(default_factory=dict)
    detected: Dict[str, int] = field(default_factory=dict)
    checks: int = 0
    violations: List[str] = field(default_factory=list)
    atomicity_violations: List[str] = field(default_factory=list)

    @property
    def tpmc_degradation(self) -> float:
        """Fractional tpmC lost to the injected faults."""
        if self.baseline_tpmc == 0:
            return 0.0
        return 1.0 - self.faulted_tpmc / self.baseline_tpmc

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable summary."""
        return {
            "seed": self.seed,
            "shards": self.shards,
            "rates": self.rates,
            "plan_hash": self.plan_hash,
            "survived": self.survived,
            "error": self.error,
            "baseline_tpmc": self.baseline_tpmc,
            "baseline_qphh": self.baseline_qphh,
            "faulted_tpmc": self.faulted_tpmc,
            "faulted_qphh": self.faulted_qphh,
            "tpmc_degradation": self.tpmc_degradation,
            "transactions": self.transactions,
            "aborted": self.aborted,
            "cross_shard_attempted": self.cross_shard_attempted,
            "cross_shard_aborted": self.cross_shard_aborted,
            "aborts_by_cause": dict(sorted(self.aborts_by_cause.items())),
            "injected": self.injected,
            "detected": self.detected,
            "invariant_checks": self.checks,
            "invariant_violations": self.violations,
            "atomicity_violations": self.atomicity_violations,
        }


def _build_cluster(
    seed: int, shards: int, scale: float, defrag_period: int, extra_rows: int
) -> PushTapCluster:
    return PushTapCluster.build(
        shards=shards,
        scale=scale,
        seed=seed,
        defrag_period=defrag_period,
        block_rows=256,
        extra_rows=extra_rows,
    )


def run_cluster_fault_sweep(
    seed: int,
    rates: FaultRates,
    shards: int = 2,
    intervals: int = 4,
    txns_per_query: int = 30,
    scale: float = 2e-5,
    remote_fraction: float = 4.0,
    defrag_period: int = 200,
    jobs: int = 1,
) -> ClusterSweepResult:
    """Run the clean and faulted cluster workloads; returns the comparison.

    ``remote_fraction`` defaults well above 1.0 so cross-shard payments
    and new orders actually occur at sweep scale — the 2PC hooks only
    fire on the cross-shard path, so a near-zero remote rate would let a
    sweep cell pass vacuously.

    With ``jobs > 1`` both runs execute shard sub-streams on a process
    pool; the sweep result is identical to ``jobs=1`` (the invariant
    checks — including the end-of-run audit — run inside the workers,
    where the shard data lives).
    """
    plan = FaultPlan(seed, rates)
    result = ClusterSweepResult(
        seed=seed,
        shards=shards,
        rates=dict(rates.rates),
        plan_hash=plan.content_hash(),
    )

    def _drive(cluster, checkers):
        workload = ClusterWorkload(
            cluster,
            txns_per_query=txns_per_query,
            seed=seed,
            remote_fraction=remote_fraction,
            invariant_checkers=checkers,
            jobs=jobs,
            worker_final_check=jobs > 1,
        )
        report = workload.run(intervals)
        return report, workload

    # Insert capacity sized to the stream (appends accumulate in
    # ORDERLINE/HISTORY across the whole run).
    extra_rows = 12 * intervals * txns_per_query
    # Baseline: same cluster, same workload seeds, no injector.
    baseline = _build_cluster(seed, shards, scale, defrag_period, extra_rows)
    base, _ = _drive(baseline, [])
    result.baseline_tpmc = base.oltp_tpmc
    result.baseline_qphh = base.olap_qphh

    # Faulted run: injector installed for exactly this scope, one
    # invariant checker per shard engine.
    cluster = _build_cluster(seed, shards, scale, defrag_period, extra_rows)
    injector = FaultInjector(plan)
    checkers = [
        InvariantChecker(engine, raise_on_violation=False)
        for engine in cluster.engines
    ]
    install(injector)
    workload = None
    try:
        report, workload = _drive(cluster, checkers)
        result.faulted_tpmc = report.oltp_tpmc
        result.faulted_qphh = report.olap_qphh
        result.transactions = report.transactions
        result.aborted = report.aborted
        result.cross_shard_attempted = report.cross_shard_attempted
        result.cross_shard_aborted = report.cross_shard_aborted
        result.aborts_by_cause = dict(report.aborts_by_cause)
    except ReproError as exc:
        result.survived = False
        result.error = f"{type(exc).__name__}: {exc}"
    finally:
        deactivate()
    # End-of-run audits: per-shard storage/index consistency plus the
    # cluster-wide atomicity scan over the 2PC outcome log. Under
    # jobs > 1 the shard data lives in the workers, which already ran
    # the planned checks plus the final audit (worker_final_check).
    if jobs > 1 and workload is not None and workload.worker_invariants:
        result.checks = sum(
            w["checks"] for w in workload.worker_invariants
        )
        result.violations = [
            violation
            for w in workload.worker_invariants
            for violation in w["violations"]
        ]
    else:
        for checker in checkers:
            checker.check()
        result.checks = sum(c.checks for c in checkers)
        result.violations = [v for c in checkers for v in c.violations]
    result.injected = dict(injector.injected)
    result.detected = dict(injector.detected)
    result.atomicity_violations = cluster.twopc.atomicity_violations()
    if result.violations or result.atomicity_violations:
        result.survived = False
    return result
