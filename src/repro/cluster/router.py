"""Routing TPC-C transactions to shards, splitting cross-shard ones.

The router inspects a transaction closure's attached ``txn_name`` /
``params`` (every closure in :mod:`repro.oltp.tpcc` carries them) and
maps the warehouses it touches onto shards. A transaction whose
warehouses all live on one shard executes unchanged on that engine —
the overwhelmingly common case, and the reason a 1-shard cluster is
bit-identical to the bare engine. A transaction spanning shards is
split into per-shard sub-closures whose union performs *exactly* the
operations of the original closure (same reads, updates, inserts, same
computed values), so an N-shard history leaves the shards holding the
same committed data a single engine running the unsplit transactions
would hold — the property the scatter-gather OLAP tests verify
bit-identically.

Note the split is by *shard*, not by warehouse: a New-Order line whose
remote supply warehouse happens to live on the home shard stays in the
home sub-transaction and pays no 2PC.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import TransactionError
from repro.oltp.engine import TxnContext
from repro.oltp.tpcc import DeliveryParams, NewOrderParams, PaymentParams

from repro.cluster.partition import shard_of

__all__ = ["ShardRouter"]


def _payment_at_warehouse(params: PaymentParams) -> Callable[[TxnContext], None]:
    """The paying-warehouse half of a remote Payment: warehouse and
    district YTD absorb the amount and the history row lands here (its
    ``h_w_id`` is the paying warehouse — same row the full closure
    inserts)."""

    def txn(ctx: TxnContext) -> None:
        w_row = ctx.index_lookup("warehouse_pk", params.w_id)
        warehouse = ctx.read("warehouse", w_row, ["w_ytd", "w_tax"])
        ctx.update("warehouse", w_row, {"w_ytd": warehouse["w_ytd"] + params.amount})
        d_row = ctx.index_lookup("district_pk", (params.w_id, params.d_id))
        district = ctx.read("district", d_row, ["d_ytd", "d_tax"])
        ctx.update("district", d_row, {"d_ytd": district["d_ytd"] + params.amount})
        ctx.insert(
            "history",
            {
                "h_c_id": params.c_id,
                "h_c_d_id": params.customer_d_id,
                "h_c_w_id": params.customer_w_id,
                "h_d_id": params.d_id,
                "h_w_id": params.w_id,
                "h_date": params.h_date,
                "h_amount": params.amount,
                "h_data": b"payment",
            },
        )

    txn.txn_name = "payment"
    txn.params = params
    return txn


def _payment_at_customer(params: PaymentParams) -> Callable[[TxnContext], None]:
    """The customer-home half of a remote Payment: balance, YTD payment
    and payment count, exactly as the full closure computes them."""

    def txn(ctx: TxnContext) -> None:
        c_row = ctx.index_lookup(
            "customer_pk",
            (params.customer_w_id, params.customer_d_id, params.c_id),
        )
        customer = ctx.read(
            "customer", c_row, ["c_balance", "c_ytd_payment", "c_payment_cnt"]
        )
        new_balance = max(0, customer["c_balance"] - params.amount)
        ctx.update(
            "customer",
            c_row,
            {
                "c_balance": new_balance,
                "c_ytd_payment": customer["c_ytd_payment"] + params.amount,
                "c_payment_cnt": customer["c_payment_cnt"] + 1,
            },
        )

    txn.txn_name = "payment_remote"
    txn.params = params
    return txn


def _new_order_home(
    params: NewOrderParams, home: int, num_shards: int
) -> Callable[[TxnContext], None]:
    """The home-shard part of a cross-shard New-Order.

    Everything except the stock updates of lines supplied by a *remote
    shard*: warehouse/district/customer reads, the d_next_o_id bump, the
    ORDER and NEWORDER inserts, every ITEM price read, every ORDERLINE
    insert (all lines live at the ordering warehouse), and the stock
    updates of home-shard-supplied lines (including nominally remote
    warehouses that happen to reside on the home shard).
    """

    def txn(ctx: TxnContext) -> None:
        w_row = ctx.index_lookup("warehouse_pk", params.w_id)
        ctx.read("warehouse", w_row, ["w_tax"])
        d_row = ctx.index_lookup("district_pk", (params.w_id, params.d_id))
        district = ctx.read("district", d_row, ["d_tax", "d_next_o_id"])
        ctx.update("district", d_row, {"d_next_o_id": district["d_next_o_id"] + 1})
        c_row = ctx.index_lookup(
            "customer_pk", (params.w_id, params.d_id, params.c_id)
        )
        ctx.read("customer", c_row, ["c_discount", "c_credit"])
        ctx.insert(
            "order",
            {
                "o_id": params.o_id,
                "o_d_id": params.d_id,
                "o_w_id": params.w_id,
                "o_c_id": params.c_id,
                "o_entry_d": params.entry_d,
                "o_carrier_id": 0,
                "o_ol_cnt": len(params.item_ids),
                "o_all_local": int(all(s == params.w_id for s in params.supply_w_ids)),
            },
            index_key=("order_pk", params.o_id),
        )
        ctx.insert(
            "neworder",
            {"no_o_id": params.o_id, "no_d_id": params.d_id, "no_w_id": params.w_id},
            index_key=("neworder_pk", params.o_id),
        )
        for number, (i_id, s_w, qty) in enumerate(
            zip(params.item_ids, params.supply_w_ids, params.quantities), start=1
        ):
            i_row = ctx.index_lookup("item_pk", i_id)
            item = ctx.read("item", i_row, ["i_price"])
            if shard_of(s_w, num_shards) == home:
                s_row = ctx.index_lookup("stock_pk", (s_w, i_id))
                stock = ctx.read(
                    "stock", s_row, ["s_quantity", "s_ytd", "s_order_cnt"]
                )
                new_qty = stock["s_quantity"] - qty
                if new_qty < 10:
                    new_qty += 91
                ctx.update(
                    "stock",
                    s_row,
                    {
                        "s_quantity": new_qty,
                        "s_ytd": stock["s_ytd"] + qty,
                        "s_order_cnt": stock["s_order_cnt"] + 1,
                    },
                )
            ctx.insert(
                "orderline",
                {
                    "ol_o_id": params.o_id,
                    "ol_d_id": params.d_id,
                    "ol_w_id": params.w_id,
                    "ol_number": number,
                    "ol_i_id": i_id,
                    "ol_supply_w_id": s_w,
                    "ol_delivery_d": params.entry_d,
                    "ol_quantity": qty,
                    "ol_amount": qty * item["i_price"],
                    "ol_dist_info": b"neworder",
                },
                index_key=("orderline_pk", (params.o_id, number)),
            )

    txn.txn_name = "new_order"
    txn.o_id = params.o_id
    txn.params = params
    return txn


def _new_order_remote_stock(
    params: NewOrderParams, line_indices: List[int]
) -> Callable[[TxnContext], None]:
    """The remote-shard part of a cross-shard New-Order: the stock
    updates of the lines this shard supplies (and nothing else — the
    ORDERLINE rows live at the ordering warehouse)."""

    def txn(ctx: TxnContext) -> None:
        for index in line_indices:
            i_id = params.item_ids[index]
            s_w = params.supply_w_ids[index]
            qty = params.quantities[index]
            s_row = ctx.index_lookup("stock_pk", (s_w, i_id))
            stock = ctx.read("stock", s_row, ["s_quantity", "s_ytd", "s_order_cnt"])
            new_qty = stock["s_quantity"] - qty
            if new_qty < 10:
                new_qty += 91
            ctx.update(
                "stock",
                s_row,
                {
                    "s_quantity": new_qty,
                    "s_ytd": stock["s_ytd"] + qty,
                    "s_order_cnt": stock["s_order_cnt"] + 1,
                },
            )

    txn.txn_name = "new_order_remote"
    txn.params = params
    return txn


def _delivery_subset(
    params: DeliveryParams, orders: List
) -> Callable[[TxnContext], None]:
    """A Delivery restricted to the orders resident on one shard (every
    operation of a delivered order touches only its home warehouse)."""
    from repro.oltp.tpcc import delivery

    sub = delivery(DeliveryParams(params.carrier_id, params.delivery_d, orders))
    return sub


class ShardRouter:
    """Maps transactions to the shards they touch and splits them."""

    def __init__(self, num_shards: int, warehouses: int) -> None:
        if num_shards < 1:
            raise TransactionError("a cluster needs at least one shard")
        if warehouses < num_shards:
            raise TransactionError(
                f"{warehouses} warehouse(s) cannot cover {num_shards} shards"
            )
        self.num_shards = int(num_shards)
        self.warehouses = int(warehouses)

    def shard_of_warehouse(self, w_id: int) -> int:
        """The shard owning warehouse ``w_id``."""
        if not 1 <= w_id <= self.warehouses:
            raise TransactionError(f"warehouse {w_id} outside [1, {self.warehouses}]")
        return shard_of(w_id, self.num_shards)

    def home_shard(self, txn: Callable[[TxnContext], None]) -> int:
        """The coordinator shard of ``txn`` (where its client connects)."""
        params = getattr(txn, "params", None)
        name = getattr(txn, "txn_name", None)
        if params is None or name is None:
            raise TransactionError("cannot route a transaction without params")
        if name == "delivery":
            if not params.orders:
                raise TransactionError("cannot route an empty delivery")
            return self.shard_of_warehouse(params.orders[0].w_id)
        return self.shard_of_warehouse(params.w_id)

    def involved_shards(self, txn: Callable[[TxnContext], None]) -> List[int]:
        """Every shard ``txn`` touches (ascending)."""
        params = getattr(txn, "params", None)
        name = getattr(txn, "txn_name", None)
        if params is None or name is None:
            raise TransactionError("cannot route a transaction without params")
        if name == "payment":
            shards = {
                self.shard_of_warehouse(params.w_id),
                self.shard_of_warehouse(params.customer_w_id),
            }
        elif name == "new_order":
            shards = {self.shard_of_warehouse(params.w_id)}
            shards.update(self.shard_of_warehouse(s) for s in params.supply_w_ids)
        elif name == "delivery":
            if not params.orders:
                raise TransactionError("cannot route an empty delivery")
            shards = {self.shard_of_warehouse(o.w_id) for o in params.orders}
        else:
            # Read-only transactions (order_status, stock_level) route to
            # their home shard; the driver only generates them over
            # orders it created there.
            shards = {self.shard_of_warehouse(params.w_id)}
        return sorted(shards)

    def split(
        self, txn: Callable[[TxnContext], None]
    ) -> Dict[int, Callable[[TxnContext], None]]:
        """Split a cross-shard transaction into per-shard sub-closures."""
        params = txn.params
        name = txn.txn_name
        if name == "payment":
            pay = self.shard_of_warehouse(params.w_id)
            cust = self.shard_of_warehouse(params.customer_w_id)
            if pay == cust:
                raise TransactionError("payment is single-shard; nothing to split")
            return {
                pay: _payment_at_warehouse(params),
                cust: _payment_at_customer(params),
            }
        if name == "new_order":
            home = self.shard_of_warehouse(params.w_id)
            remote_lines: Dict[int, List[int]] = {}
            for index, s_w in enumerate(params.supply_w_ids):
                shard = self.shard_of_warehouse(s_w)
                if shard != home:
                    remote_lines.setdefault(shard, []).append(index)
            if not remote_lines:
                raise TransactionError("new_order is single-shard; nothing to split")
            subs: Dict[int, Callable[[TxnContext], None]] = {
                home: _new_order_home(params, home, self.num_shards)
            }
            for shard, indices in remote_lines.items():
                subs[shard] = _new_order_remote_stock(params, indices)
            return subs
        if name == "delivery":
            groups: Dict[int, List] = {}
            for order in params.orders:
                groups.setdefault(self.shard_of_warehouse(order.w_id), []).append(
                    order
                )
            if len(groups) < 2:
                raise TransactionError("delivery is single-shard; nothing to split")
            return {
                shard: _delivery_subset(params, orders)
                for shard, orders in groups.items()
            }
        raise TransactionError(f"transaction {name!r} cannot span shards")
