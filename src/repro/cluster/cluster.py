"""The sharded cluster: N engines, one router, one 2PC coordinator.

:class:`PushTapCluster` composes N independent :class:`~repro.core.
engine.PushTapEngine` instances (one simulated PIM server each) behind
a warehouse-partitioned :class:`~repro.cluster.router.ShardRouter`.
Single-shard transactions — the vast majority under TPC-C's ~1 %/15 %
remote rates — run unchanged on their home engine; cross-shard ones go
through the :class:`~repro.cluster.twopc.TwoPhaseCommit` coordinator.
Analytical queries scatter across every shard and gather additive
partials (:mod:`repro.cluster.gather`).

A 1-shard cluster is the degenerate case the bit-identity tests pin
down: the router never splits, the coordinator never runs, the gather
is free, and every simulated metric equals the bare engine's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.olap.queries import QueryResult
from repro.oltp.engine import TxnContext, TxnResult
from repro.telemetry import registry as telemetry

from repro.cluster.gather import ClusterQueryResult, merge_rows
from repro.cluster.partition import build_shard, cluster_row_counts
from repro.cluster.router import ShardRouter
from repro.cluster.twopc import TwoPhaseCommit

__all__ = ["ClusterTxnResult", "PushTapCluster"]


@dataclass
class ClusterTxnResult:
    """Outcome of one transaction routed through the cluster."""

    committed: bool
    #: Client-observed latency (ns): the plain execution time for a
    #: single-shard transaction; execution + interconnect + timeouts for
    #: a cross-shard one.
    latency: float
    home: int
    shards: Tuple[int, ...]
    cross_shard: bool
    abort_cause: Optional[str] = None
    per_shard: Dict[int, TxnResult] = field(default_factory=dict)


class PushTapCluster:
    """N shard engines behind a warehouse-partitioned router."""

    def __init__(
        self,
        engines,
        counts: Dict[str, int],
        interconnect_ns: float = 500.0,
        jobs: int = 1,
    ) -> None:
        if not engines:
            raise ConfigError("a cluster needs at least one shard engine")
        if int(jobs) < 1:
            raise ConfigError("jobs must be >= 1")
        self.engines = list(engines)
        #: Default worker count for workloads over this cluster; > 1
        #: runs shard sub-streams on a process pool (see repro.parallel).
        self.jobs = int(jobs)
        #: PushTapEngine.build kwargs captured by :meth:`build` so
        #: spawned parallel workers can rebuild their shard engine
        #: bit-identically (None when the cluster was assembled from
        #: pre-built engines).
        self._shard_build_kwargs: Optional[Dict[str, object]] = None
        self.num_shards = len(self.engines)
        #: The *global* row counts the shards were filtered from — the
        #: workload layer builds its drivers over these, not over any
        #: single shard's filtered row counts.
        self.counts = dict(counts)
        self.warehouses = int(counts["warehouse"])
        self.interconnect_ns = float(interconnect_ns)
        self.router = ShardRouter(self.num_shards, self.warehouses)
        self.twopc = TwoPhaseCommit(self.engines, interconnect_ns)
        #: Accumulated scatter-gather interconnect time (ns).
        self.gather_time = 0.0
        self.queries_run = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        shards: int = 2,
        scale: float = 1e-4,
        counts: Optional[Dict[str, int]] = None,
        interconnect_ns: float = 500.0,
        jobs: int = 1,
        **build_kwargs,
    ) -> "PushTapCluster":
        """Build an N-shard cluster over one global generator stream.

        ``counts`` overrides the :func:`~repro.cluster.partition.
        cluster_row_counts` derivation (the scaling bench pins one count
        set across every shard-count cell); all other keyword arguments
        pass through to :meth:`PushTapEngine.build` for every shard.
        """
        if shards < 1:
            raise ConfigError("shards must be >= 1")
        counts = dict(counts) if counts is not None else cluster_row_counts(
            scale, shards
        )
        engines = [
            build_shard(shard, shards, counts, **build_kwargs)
            for shard in range(shards)
        ]
        cluster = cls(engines, counts, interconnect_ns=interconnect_ns, jobs=jobs)
        cluster._shard_build_kwargs = dict(build_kwargs)
        return cluster

    # ------------------------------------------------------------------
    # OLTP path
    # ------------------------------------------------------------------
    def execute_transaction(
        self, txn: Callable[[TxnContext], None]
    ) -> ClusterTxnResult:
        """Route and run one transaction (2PC when it spans shards)."""
        shards = self.router.involved_shards(txn)
        if len(shards) == 1:
            home = shards[0]
            result = self.engines[home].execute_transaction(txn)
            return ClusterTxnResult(
                committed=not result.aborted,
                latency=result.total_time,
                home=home,
                shards=(home,),
                cross_shard=False,
                abort_cause="local_abort" if result.aborted else None,
                per_shard={home: result},
            )
        home = self.router.home_shard(txn)
        # Participants defragment *before* entering the prepare phase —
        # a defrag pause must never land between prepare and decision
        # while the participant holds cross-shard locks.
        for shard in shards:
            engine = self.engines[shard]
            if engine.defrag_due():
                engine.defragment()
        sub_txns = self.router.split(txn)
        outcome = self.twopc.execute(home, sub_txns)
        # The 2PC path bypasses PushTapEngine.execute_transaction, so
        # mirror its accounting on every participant: execution time
        # always, committed-transaction count and defrag aging only on
        # commit (same rule the serve loop follows).
        for shard, result in outcome.per_shard.items():
            engine = self.engines[shard]
            engine.stats.oltp_time += result.total_time
            if outcome.committed:
                engine.stats.transactions += 1
                engine._txns_since_defrag += 1
        return ClusterTxnResult(
            committed=outcome.committed,
            latency=outcome.latency,
            home=home,
            shards=tuple(shards),
            cross_shard=True,
            abort_cause=outcome.abort_cause,
            per_shard=outcome.per_shard,
        )

    # ------------------------------------------------------------------
    # OLAP path
    # ------------------------------------------------------------------
    def query(self, name: str) -> ClusterQueryResult:
        """Scatter ``name`` across every shard and gather the partials."""
        self.queries_run += 1
        if self.num_shards == 1:
            result = self.engines[0].query(name)
            return ClusterQueryResult(
                name, rows=result.rows, shard_results=[result], gather_time=0.0
            )
        shard_results: list[QueryResult] = [
            engine.query(name) for engine in self.engines
        ]
        rows = merge_rows(name, [r.rows for r in shard_results])
        gather = (self.num_shards - 1) * self.interconnect_ns
        self.gather_time += gather
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("cluster.olap.scatter_queries").inc()
            tel.record_span(
                "cluster.gather", gather, {"query": name, "shards": self.num_shards}
            )
        return ClusterQueryResult(
            name, rows=rows, shard_results=shard_results, gather_time=gather
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def shard_busy_time(self, shard: int) -> float:
        """One shard's total busy time (OLTP + OLAP + defrag, ns)."""
        stats = self.engines[shard].stats
        return stats.oltp_time + stats.olap_time + stats.defrag_time

    @property
    def coordination_time(self) -> float:
        """Serial cluster-level time owned by no shard (2PC + gather)."""
        return self.twopc.coordination_time + self.gather_time

    @property
    def simulated_time(self) -> float:
        """Cluster makespan: slowest shard plus serial coordination."""
        busiest = max(
            self.shard_busy_time(s) for s in range(self.num_shards)
        )
        return busiest + self.coordination_time
