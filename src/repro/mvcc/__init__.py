"""PUSHtap reproduction subpackage."""
