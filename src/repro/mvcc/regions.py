"""Data and delta regions organized in rotation-aligned blocks (§5.1, Fig. 6a).

The data region holds the original version of every row; newer versions go
to the delta region. Both regions are divided into blocks of
``block_rows`` rows, and block ``b`` carries rotation ``b mod d`` under the
block-circulant placement. A new version of a row must land in a delta
block **with the same rotation** as the row's data block, so that during
defragmentation each PIM unit can copy the version back device-locally.

:class:`DeltaAllocator` maintains per-rotation free lists of delta slots
and grows the delta region block-by-block (rotations are assigned by block
index, so growing for rotation ``k`` may require skipping ahead to the
next block index ``≡ k (mod d)``; skipped blocks become available to their
own rotations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.errors import TransactionError
from repro.units import ceil_div

__all__ = ["DataRegion", "DeltaAllocator"]


@dataclass(frozen=True)
class DataRegion:
    """The fixed data region: ``num_rows`` rows in rotation-tagged blocks."""

    num_rows: int
    block_rows: int
    num_devices: int

    def __post_init__(self) -> None:
        if self.num_rows < 0:
            raise TransactionError("num_rows must be non-negative")
        if self.block_rows <= 0 or self.num_devices <= 0:
            raise TransactionError("block_rows and num_devices must be positive")

    @property
    def num_blocks(self) -> int:
        """Number of (possibly partially filled) blocks."""
        return ceil_div(self.num_rows, self.block_rows) if self.num_rows else 0

    def block_of(self, row: int) -> int:
        """Block index of a data row."""
        self._check(row)
        return row // self.block_rows

    def rotation_of(self, row: int) -> int:
        """Circulant rotation of a data row's block."""
        return self.block_of(row) % self.num_devices

    def _check(self, row: int) -> None:
        if row < 0 or row >= self.num_rows:
            raise TransactionError(f"data row {row} out of range [0, {self.num_rows})")


class DeltaAllocator:
    """Allocates delta-region rows grouped by rotation.

    ``capacity_blocks`` bounds the delta region (the engine sizes it from
    the defragmentation period); allocation beyond capacity raises, which
    in the full engine triggers a forced defragmentation.
    """

    def __init__(self, block_rows: int, num_devices: int, capacity_blocks: int) -> None:
        if block_rows <= 0 or num_devices <= 0 or capacity_blocks <= 0:
            raise TransactionError("block_rows/num_devices/capacity must be positive")
        self.block_rows = block_rows
        self.num_devices = num_devices
        self.capacity_blocks = capacity_blocks
        self._next_block = 0
        self._free: Dict[int, List[int]] = {r: [] for r in range(num_devices)}
        self._allocated: Set[int] = set()

    @property
    def num_blocks(self) -> int:
        """Delta blocks materialized so far."""
        return self._next_block

    @property
    def capacity_rows(self) -> int:
        """Maximum delta rows the region can hold."""
        return self.capacity_blocks * self.block_rows

    @property
    def allocated_rows(self) -> int:
        """Currently allocated delta rows."""
        return len(self._allocated)

    @property
    def high_water_rows(self) -> int:
        """Delta rows spanned by materialized blocks (region footprint)."""
        return self._next_block * self.block_rows

    def rotation_of(self, delta_index: int) -> int:
        """Rotation of a delta row (by its block index)."""
        if delta_index < 0:
            raise TransactionError(f"negative delta index {delta_index}")
        return (delta_index // self.block_rows) % self.num_devices

    def block_of(self, delta_index: int) -> int:
        """Block index of a delta row."""
        if delta_index < 0:
            raise TransactionError(f"negative delta index {delta_index}")
        return delta_index // self.block_rows

    def allocate(self, rotation: int) -> int:
        """Allocate one delta row with the requested rotation.

        Raises :class:`TransactionError` when the region is full — the
        engine treats that as "defragmentation overdue".
        """
        if rotation < 0 or rotation >= self.num_devices:
            raise TransactionError(f"rotation {rotation} out of range")
        if not self._free[rotation]:
            self._grow_until(rotation)
        index = self._free[rotation].pop()
        self._allocated.add(index)
        return index

    def release(self, delta_index: int) -> None:
        """Return a delta row to its rotation's free list."""
        if delta_index not in self._allocated:
            raise TransactionError(f"delta row {delta_index} is not allocated")
        self._allocated.discard(delta_index)
        self._free[self.rotation_of(delta_index)].append(delta_index)

    def release_all(self) -> int:
        """Free every allocated row (after defragmentation); returns count."""
        count = len(self._allocated)
        for index in sorted(self._allocated):
            self._free[self.rotation_of(index)].append(index)
        self._allocated.clear()
        return count

    def is_allocated(self, delta_index: int) -> bool:
        """Whether a delta row is currently allocated."""
        return delta_index in self._allocated

    def _grow_until(self, rotation: int) -> None:
        """Materialize blocks until ``rotation`` has a free row."""
        while not self._free[rotation]:
            if self._next_block >= self.capacity_blocks:
                raise TransactionError(
                    f"delta region full ({self.capacity_blocks} blocks); "
                    "defragmentation required"
                )
            block = self._next_block
            self._next_block += 1
            block_rotation = block % self.num_devices
            start = block * self.block_rows
            rows = list(range(start + self.block_rows - 1, start - 1, -1))
            self._free[block_rotation].extend(rows)
