"""The MVCC manager: version chains, the update log, and visibility (§5.1).

One :class:`MVCCManager` serves one table. It tracks version chains for
updated rows (rows never updated implicitly have their original version in
the data region), appends inserts at the data-region cursor, and keeps an
ordered *update log* that snapshotting (§5.2) replays incrementally.

Byte movement is **not** done here — the manager deals in
:class:`~repro.mvcc.metadata.RowRef` locations; the storage engine binds
refs to device addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import TransactionError
from repro.mvcc.metadata import Region, RowRef, VersionChain, VersionEntry
from repro.mvcc.regions import DataRegion, DeltaAllocator

__all__ = ["UpdateRecord", "MVCCManager"]


@dataclass(frozen=True)
class UpdateRecord:
    """One committed write, as replayed by snapshotting.

    ``kind`` is ``"update"``, ``"insert"`` or ``"delete"``. For updates,
    ``new_ref`` is the freshly allocated delta row and ``prev_ref`` the
    version it supersedes; for inserts ``new_ref`` is the appended data
    row; for deletes ``new_ref`` is None.
    """

    write_ts: int
    kind: str
    row_id: int
    new_ref: Optional[RowRef]
    prev_ref: Optional[RowRef]


class MVCCManager:
    """Multi-version concurrency control for one table."""

    def __init__(
        self,
        initial_rows: int,
        capacity_rows: int,
        block_rows: int,
        num_devices: int,
        delta_capacity_blocks: int,
    ) -> None:
        if initial_rows > capacity_rows:
            raise TransactionError("initial_rows exceeds capacity_rows")
        self.data = DataRegion(capacity_rows, block_rows, num_devices)
        self.delta = DeltaAllocator(block_rows, num_devices, delta_capacity_blocks)
        self.num_rows = initial_rows
        self._chains: Dict[int, VersionChain] = {}
        self._tombstones: Dict[int, int] = {}
        #: Rows whose deletion defragmentation has folded into the
        #: snapshot bitmap: their tombstone record and log entries are
        #: gone, but the rows stay dead forever (ids are never reused).
        self._dead_rows: Set[int] = set()
        self._log: List[UpdateRecord] = []

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, row_id: int, ts: int) -> RowRef:
        """Locate the version of ``row_id`` visible at ``ts``."""
        self._check_row(row_id)
        if row_id in self._dead_rows:
            raise TransactionError(f"row {row_id} deleted (folded by defragmentation)")
        if row_id in self._tombstones and self._tombstones[row_id] <= ts:
            raise TransactionError(f"row {row_id} deleted at ts {self._tombstones[row_id]}")
        chain = self._chains.get(row_id)
        if chain is None:
            return RowRef(Region.DATA, row_id)
        entry = chain.visible_at(ts)
        if entry is None:
            raise TransactionError(f"row {row_id} not visible at ts {ts}")
        entry.observe_read(ts)
        return entry.location

    def newest_ref(self, row_id: int) -> RowRef:
        """Location of the newest version (ignores visibility)."""
        self._check_row(row_id)
        chain = self._chains.get(row_id)
        if chain is None:
            return RowRef(Region.DATA, row_id)
        return chain.head.location

    def chain_length(self, row_id: int) -> int:
        """Number of versions of ``row_id`` (1 if never updated)."""
        self._check_row(row_id)
        chain = self._chains.get(row_id)
        return chain.length() if chain is not None else 1

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def update(self, row_id: int, ts: int) -> RowRef:
        """Create a new version of ``row_id``; returns its delta location.

        The delta row is allocated with the same rotation as the row's
        data block so defragmentation can copy it back device-locally.
        A repeated update at the *same* timestamp (the same transaction
        touching one row twice, e.g. a Delivery batch crediting one
        customer for two orders) overwrites that transaction's version in
        place: no new allocation, no new log record, one undo step.
        All validation happens before the delta allocation, so a failed
        update never leaks a delta row.
        """
        self._check_row(row_id)
        if row_id in self._dead_rows:
            raise TransactionError(f"row {row_id} deleted (folded by defragmentation)")
        chain = self._chains.get(row_id)
        if chain is not None:
            if chain.head.write_ts == ts:
                return chain.head.location
            if chain.head.write_ts > ts:
                raise TransactionError(
                    f"row {row_id}: update ts {ts} precedes head ts "
                    f"{chain.head.write_ts}"
                )
        rotation = self.data.rotation_of(row_id)
        delta_index = self.delta.allocate(rotation)
        new_ref = RowRef(Region.DELTA, delta_index)
        if chain is None:
            origin = VersionEntry(write_ts=0, location=RowRef(Region.DATA, row_id))
            chain = VersionChain(row_id, origin)
            self._chains[row_id] = chain
        prev_ref = chain.head.location
        chain.install(VersionEntry(write_ts=ts, location=new_ref))
        self._log.append(UpdateRecord(ts, "update", row_id, new_ref, prev_ref))
        return new_ref

    def insert(self, ts: int) -> Tuple[int, RowRef]:
        """Append a new row at the data-region cursor."""
        if self.num_rows >= self.data.num_rows:
            raise TransactionError(
                f"table full: capacity {self.data.num_rows} rows reached"
            )
        row_id = self.num_rows
        self.num_rows += 1
        ref = RowRef(Region.DATA, row_id)
        self._chains[row_id] = VersionChain(row_id, VersionEntry(ts, ref))
        self._log.append(UpdateRecord(ts, "insert", row_id, ref, None))
        return row_id, ref

    def delete(self, row_id: int, ts: int) -> None:
        """Tombstone a row as of ``ts``."""
        self._check_row(row_id)
        if row_id in self._tombstones or row_id in self._dead_rows:
            raise TransactionError(f"row {row_id} already deleted")
        self._tombstones[row_id] = ts
        self._log.append(UpdateRecord(ts, "delete", row_id, None, self.newest_ref(row_id)))

    # ------------------------------------------------------------------
    # Rollback (transaction aborts)
    # ------------------------------------------------------------------
    def undo_update(self, row_id: int) -> RowRef:
        """Remove the newest version of ``row_id`` (abort path).

        The popped delta row is released and the matching log record
        dropped; returns the removed version's location.
        """
        chain = self._chains.get(row_id)
        if chain is None or chain.head.prev is None:
            raise TransactionError(f"row {row_id} has no version to undo")
        removed = chain.head.location
        if removed.region != Region.DELTA:
            raise TransactionError(f"row {row_id}: newest version is not in the delta")
        # Validate the log tail before mutating anything (undo is atomic).
        self._pop_log("update", row_id)
        chain.head = chain.head.prev
        self.delta.release(removed.index)
        return removed

    def undo_insert(self, row_id: int) -> None:
        """Remove a freshly appended row (abort path).

        Only the most recent insert can be undone — aborts unwind in
        reverse order.
        """
        if row_id != self.num_rows - 1:
            raise TransactionError(
                f"can only undo the most recent insert (row {self.num_rows - 1}), "
                f"got {row_id}"
            )
        self._pop_log("insert", row_id)
        del self._chains[row_id]
        self.num_rows -= 1

    def undo_delete(self, row_id: int) -> None:
        """Remove a tombstone (abort path)."""
        if row_id not in self._tombstones:
            raise TransactionError(f"row {row_id} is not deleted")
        self._pop_log("delete", row_id)
        del self._tombstones[row_id]

    def _pop_log(self, kind: str, row_id: int) -> None:
        if not self._log or self._log[-1].kind != kind or self._log[-1].row_id != row_id:
            raise TransactionError(
                f"log tail does not match undo of {kind} on row {row_id}"
            )
        self._log.pop()

    def tombstoned_rows(self) -> List[int]:
        """Row ids deleted so far (all committed in the single-writer sim).

        Includes both pending tombstones and rows whose deletion a past
        defragmentation already folded into the snapshot bitmap.
        """
        return sorted(set(self._tombstones) | self._dead_rows)

    def dead_rows(self) -> List[int]:
        """Row ids whose deletion defragmentation has already folded."""
        return sorted(self._dead_rows)

    # ------------------------------------------------------------------
    # Snapshot / defragmentation support
    # ------------------------------------------------------------------
    def log_since(self, ts: int) -> Iterator[UpdateRecord]:
        """Committed records with ``write_ts > ts``, in commit order."""
        for record in self._log:
            if record.write_ts > ts:
                yield record

    def log_between(self, after_ts: int, upto_ts: int) -> Iterator[UpdateRecord]:
        """Records with ``after_ts < write_ts <= upto_ts`` (snapshotting)."""
        for record in self._log:
            if after_ts < record.write_ts <= upto_ts:
                yield record

    @property
    def log_length(self) -> int:
        """Number of committed write records retained."""
        return len(self._log)

    def updated_chains(self) -> List[VersionChain]:
        """Chains whose newest version lives in the delta region."""
        return [
            c for c in self._chains.values() if c.head.location.region == Region.DELTA
        ]

    def stale_version_count(self) -> int:
        """Superseded versions awaiting defragmentation."""
        return sum(c.length() - 1 for c in self._chains.values())

    def compact(self) -> List[Tuple[int, RowRef]]:
        """Defragmentation bookkeeping: fold newest versions into the data
        region.

        Returns ``(row_id, delta_ref)`` pairs that the storage layer must
        copy back (delta → origin data row). Tombstoned rows are *not*
        moved — copying a dead row's newest delta version back would be a
        wasted Eq. 1/2 transfer since no future read can observe it.
        Their chains are dropped and the tombstones folded into the
        permanent dead-row set (the log entries that carried them are
        cleared here, so the deletions must survive elsewhere). Chains of
        live rows are truncated, all delta rows released, and the update
        log cleared up to now.
        """
        dead = self._dead_rows | set(self._tombstones)
        moves: List[Tuple[int, RowRef]] = []
        for chain in list(self._chains.values()):
            if chain.row_id in dead:
                del self._chains[chain.row_id]
                continue
            head_loc = chain.head.location
            if head_loc.region == Region.DELTA:
                moves.append((chain.row_id, head_loc))
                chain.head.location = RowRef(Region.DATA, chain.row_id)
            chain.truncate_to_head()
        self._dead_rows.update(self._tombstones)
        self._tombstones.clear()
        self.delta.release_all()
        self._log.clear()
        return moves

    def _check_row(self, row_id: int) -> None:
        if row_id < 0 or row_id >= self.num_rows:
            raise TransactionError(f"row {row_id} out of range [0, {self.num_rows})")
