"""The MVCC manager: version chains, the update log, and visibility (§5.1).

One :class:`MVCCManager` serves one table. It tracks version chains for
updated rows (rows never updated implicitly have their original version in
the data region), appends inserts at the data-region cursor, and keeps an
ordered *update log* that snapshotting (§5.2) replays incrementally.

Reads resolve through a **packed visibility index** — per-table NumPy
arrays of (head begin-ts, head location, chain length, tombstone ts)
maintained incrementally on every write — so the hot path answers
"which version is visible at ts?" with O(1) array lookups and only
falls back to walking a :class:`~repro.mvcc.metadata.VersionChain` for
the rare read of a superseded version. The naive walk is retained as
:meth:`MVCCManager._read_reference` (and selected by
:func:`repro.perf.vectorized` being off) so equivalence stays testable.

Byte movement is **not** done here — the manager deals in
:class:`~repro.mvcc.metadata.RowRef` locations; the storage engine binds
refs to device addresses.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro import perf
from repro.errors import TransactionError
from repro.mvcc.metadata import Region, RowRef, VersionChain, VersionEntry
from repro.mvcc.regions import DataRegion, DeltaAllocator

__all__ = ["UpdateRecord", "MVCCManager"]


@dataclass(frozen=True)
class UpdateRecord:
    """One committed write, as replayed by snapshotting.

    ``kind`` is ``"update"``, ``"insert"`` or ``"delete"``. For updates,
    ``new_ref`` is the freshly allocated delta row and ``prev_ref`` the
    version it supersedes; for inserts ``new_ref`` is the appended data
    row; for deletes ``new_ref`` is None.
    """

    write_ts: int
    kind: str
    row_id: int
    new_ref: Optional[RowRef]
    prev_ref: Optional[RowRef]


class MVCCManager:
    """Multi-version concurrency control for one table."""

    def __init__(
        self,
        initial_rows: int,
        capacity_rows: int,
        block_rows: int,
        num_devices: int,
        delta_capacity_blocks: int,
    ) -> None:
        if initial_rows > capacity_rows:
            raise TransactionError("initial_rows exceeds capacity_rows")
        self.data = DataRegion(capacity_rows, block_rows, num_devices)
        self.delta = DeltaAllocator(block_rows, num_devices, delta_capacity_blocks)
        self.num_rows = initial_rows
        self._chains: Dict[int, VersionChain] = {}
        self._tombstones: Dict[int, int] = {}
        #: Rows whose deletion defragmentation has folded into the
        #: snapshot bitmap: their tombstone record and log entries are
        #: gone, but the rows stay dead forever (ids are never reused).
        self._dead_rows: Set[int] = set()
        self._log: List[UpdateRecord] = []
        #: Parallel write_ts list of ``_log`` (non-decreasing — commit
        #: order), so ``log_since``/``log_between`` bisect instead of
        #: re-scanning the whole log on every incremental snapshot.
        self._log_ts: List[int] = []
        # Packed visibility index, one entry per data-region row:
        # head write_ts (0 = origin), head delta index (-1 = head lives
        # in the data region), chain length (0 = never versioned),
        # tombstone ts (-1 = live), and the permanent dead flag.
        capacity = max(capacity_rows, 1)
        self._head_ts = np.zeros(capacity, dtype=np.int64)
        self._head_delta = np.full(capacity, -1, dtype=np.int64)
        self._chain_len = np.zeros(capacity, dtype=np.int32)
        self._tomb_ts = np.full(capacity, -1, dtype=np.int64)
        self._dead = np.zeros(capacity, dtype=bool)
        #: Superseded versions outstanding — incremented per installed
        #: update, decremented on undo, zeroed by compaction. Always
        #: equals ``sum(chain.length() - 1)`` (invariant-checked).
        self._stale_versions = 0
        #: Rows whose newest version lives in the delta region, in the
        #: order their head first moved there (an ordered set).
        self._delta_heads: Dict[int, None] = {}

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, row_id: int, ts: int) -> RowRef:
        """Locate the version of ``row_id`` visible at ``ts``."""
        if not perf.vectorized():
            return self._read_reference(row_id, ts)
        self._check_row(row_id)
        if row_id in self._dead_rows:
            raise TransactionError(f"row {row_id} deleted (folded by defragmentation)")
        tomb = self._tombstones.get(row_id)
        if tomb is not None and tomb <= ts:
            raise TransactionError(f"row {row_id} deleted at ts {tomb}")
        chain = self._chains.get(row_id)
        if chain is None:
            return RowRef(Region.DATA, row_id)
        if self._head_ts[row_id] <= ts:
            # Common case: the newest version is visible — resolved by
            # the packed index without walking the chain.
            head = chain.head
            head.observe_read(ts)
            return head.location
        entry = chain.visible_at(ts)
        if entry is None:
            raise TransactionError(f"row {row_id} not visible at ts {ts}")
        entry.observe_read(ts)
        return entry.location

    def _read_reference(self, row_id: int, ts: int) -> RowRef:
        """Naive read path: tombstone dicts plus a version-chain walk."""
        self._check_row(row_id)
        if row_id in self._dead_rows:
            raise TransactionError(f"row {row_id} deleted (folded by defragmentation)")
        if row_id in self._tombstones and self._tombstones[row_id] <= ts:
            raise TransactionError(f"row {row_id} deleted at ts {self._tombstones[row_id]}")
        chain = self._chains.get(row_id)
        if chain is None:
            return RowRef(Region.DATA, row_id)
        entry = chain.visible_at(ts)
        if entry is None:
            raise TransactionError(f"row {row_id} not visible at ts {ts}")
        entry.observe_read(ts)
        return entry.location

    def fast_row_mask(self, row_ids) -> np.ndarray:
        """Classify a batch: which rows resolve without any per-row work.

        A ``True`` entry marks an in-range, never-versioned, live row —
        its visible version at *any* timestamp is its data-region origin
        (``RowRef(DATA, row_id)``), with no tombstone check, no chain
        walk, and no read observation. One vectorized pass over the
        packed index answers this for the whole batch; callers send the
        ``False`` rows through :meth:`read` for the full treatment.
        Pure: no side effects, safe to call speculatively.
        """
        ids = np.asarray(row_ids, dtype=np.int64)
        if ids.size == 0:
            return np.zeros(0, dtype=bool)
        fast = (ids >= 0) & (ids < self.num_rows)
        sel = ids[fast]
        ok = (
            (self._chain_len[sel] == 0)
            & (self._tomb_ts[sel] < 0)
            & ~self._dead[sel]
        )
        fast[np.nonzero(fast)[0][~ok]] = False
        return fast

    def read_many(self, row_ids, ts: int) -> List[RowRef]:
        """Locate the versions of a batch of rows visible at ``ts``.

        Identical outcomes and side effects to calling :meth:`read` once
        per row in order: the packed index resolves never-versioned live
        rows in one array pass, and only chained / tombstoned / dead /
        out-of-range rows fall back to the per-row path — errors surface
        at the same row, with the same message, as the sequential loop.
        """
        if not perf.vectorized():
            return [self.read(row_id, ts) for row_id in row_ids]
        fast = self.fast_row_mask(row_ids)
        return [
            RowRef(Region.DATA, int(row_id)) if fast[i] else self.read(int(row_id), ts)
            for i, row_id in enumerate(row_ids)
        ]

    def newest_ref(self, row_id: int) -> RowRef:
        """Location of the newest version (ignores visibility)."""
        self._check_row(row_id)
        chain = self._chains.get(row_id)
        if chain is None:
            return RowRef(Region.DATA, row_id)
        return chain.head.location

    def chain_length(self, row_id: int) -> int:
        """Number of versions of ``row_id`` (1 if never updated)."""
        self._check_row(row_id)
        chain = self._chains.get(row_id)
        if chain is None:
            return 1
        if perf.vectorized():
            # O(1) from the packed index instead of a chain walk.
            return int(self._chain_len[row_id])
        return chain.length()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def update(self, row_id: int, ts: int) -> RowRef:
        """Create a new version of ``row_id``; returns its delta location.

        The delta row is allocated with the same rotation as the row's
        data block so defragmentation can copy it back device-locally.
        A repeated update at the *same* timestamp (the same transaction
        touching one row twice, e.g. a Delivery batch crediting one
        customer for two orders) overwrites that transaction's version in
        place: no new allocation, no new log record, one undo step.
        All validation happens before the delta allocation, so a failed
        update never leaks a delta row.
        """
        self._check_row(row_id)
        if row_id in self._dead_rows:
            raise TransactionError(f"row {row_id} deleted (folded by defragmentation)")
        chain = self._chains.get(row_id)
        if chain is not None:
            if chain.head.write_ts == ts:
                return chain.head.location
            if chain.head.write_ts > ts:
                raise TransactionError(
                    f"row {row_id}: update ts {ts} precedes head ts "
                    f"{chain.head.write_ts}"
                )
        rotation = self.data.rotation_of(row_id)
        delta_index = self.delta.allocate(rotation)
        new_ref = RowRef(Region.DELTA, delta_index)
        if chain is None:
            origin = VersionEntry(write_ts=0, location=RowRef(Region.DATA, row_id))
            chain = VersionChain(row_id, origin)
            self._chains[row_id] = chain
            self._chain_len[row_id] = 1
        prev_ref = chain.head.location
        chain.install(VersionEntry(write_ts=ts, location=new_ref))
        self._chain_len[row_id] += 1
        self._head_ts[row_id] = ts
        self._head_delta[row_id] = delta_index
        self._stale_versions += 1
        if row_id not in self._delta_heads:
            self._delta_heads[row_id] = None
        self._append_log(UpdateRecord(ts, "update", row_id, new_ref, prev_ref))
        return new_ref

    def insert(self, ts: int) -> Tuple[int, RowRef]:
        """Append a new row at the data-region cursor."""
        if self.num_rows >= self.data.num_rows:
            raise TransactionError(
                f"table full: capacity {self.data.num_rows} rows reached"
            )
        row_id = self.num_rows
        self.num_rows += 1
        ref = RowRef(Region.DATA, row_id)
        self._chains[row_id] = VersionChain(row_id, VersionEntry(ts, ref))
        self._chain_len[row_id] = 1
        self._head_ts[row_id] = ts
        self._head_delta[row_id] = -1
        self._append_log(UpdateRecord(ts, "insert", row_id, ref, None))
        return row_id, ref

    def delete(self, row_id: int, ts: int) -> None:
        """Tombstone a row as of ``ts``."""
        self._check_row(row_id)
        if row_id in self._tombstones or row_id in self._dead_rows:
            raise TransactionError(f"row {row_id} already deleted")
        self._tombstones[row_id] = ts
        self._tomb_ts[row_id] = ts
        self._append_log(UpdateRecord(ts, "delete", row_id, None, self.newest_ref(row_id)))

    # ------------------------------------------------------------------
    # Rollback (transaction aborts)
    # ------------------------------------------------------------------
    def undo_update(self, row_id: int) -> RowRef:
        """Remove the newest version of ``row_id`` (abort path).

        The popped delta row is released and the matching log record
        dropped; returns the removed version's location.
        """
        chain = self._chains.get(row_id)
        if chain is None or chain.head.prev is None:
            raise TransactionError(f"row {row_id} has no version to undo")
        removed = chain.head.location
        if removed.region != Region.DELTA:
            raise TransactionError(f"row {row_id}: newest version is not in the delta")
        # Validate the log tail before mutating anything (undo is atomic).
        self._pop_log("update", row_id)
        chain.head = chain.head.prev
        self.delta.release(removed.index)
        self._stale_versions -= 1
        self._chain_len[row_id] -= 1
        head = chain.head
        self._head_ts[row_id] = head.write_ts
        if head.location.region == Region.DELTA:
            self._head_delta[row_id] = head.location.index
        else:
            self._head_delta[row_id] = -1
            self._delta_heads.pop(row_id, None)
        return removed

    def undo_insert(self, row_id: int) -> None:
        """Remove a freshly appended row (abort path).

        Only the most recent insert can be undone — aborts unwind in
        reverse order.
        """
        if row_id != self.num_rows - 1:
            raise TransactionError(
                f"can only undo the most recent insert (row {self.num_rows - 1}), "
                f"got {row_id}"
            )
        self._pop_log("insert", row_id)
        del self._chains[row_id]
        self.num_rows -= 1
        self._chain_len[row_id] = 0
        self._head_ts[row_id] = 0
        self._head_delta[row_id] = -1

    def undo_delete(self, row_id: int) -> None:
        """Remove a tombstone (abort path)."""
        if row_id not in self._tombstones:
            raise TransactionError(f"row {row_id} is not deleted")
        self._pop_log("delete", row_id)
        del self._tombstones[row_id]
        self._tomb_ts[row_id] = -1

    def _append_log(self, record: UpdateRecord) -> None:
        self._log.append(record)
        self._log_ts.append(record.write_ts)

    def _pop_log(self, kind: str, row_id: int) -> None:
        if not self._log or self._log[-1].kind != kind or self._log[-1].row_id != row_id:
            raise TransactionError(
                f"log tail does not match undo of {kind} on row {row_id}"
            )
        self._log.pop()
        self._log_ts.pop()

    def tombstoned_rows(self) -> List[int]:
        """Row ids deleted so far (all committed in the single-writer sim).

        Includes both pending tombstones and rows whose deletion a past
        defragmentation already folded into the snapshot bitmap.
        """
        return sorted(set(self._tombstones) | self._dead_rows)

    def dead_rows(self) -> List[int]:
        """Row ids whose deletion defragmentation has already folded."""
        return sorted(self._dead_rows)

    # ------------------------------------------------------------------
    # Snapshot / defragmentation support
    # ------------------------------------------------------------------
    def log_since(self, ts: int) -> Iterator[UpdateRecord]:
        """Committed records with ``write_ts > ts``, in commit order.

        Timestamps are appended in commit order (non-decreasing,
        invariant-checked), so the start position bisects in O(log n)
        rather than re-scanning the whole log.
        """
        return iter(self._log[bisect.bisect_right(self._log_ts, ts) :])

    def log_between(self, after_ts: int, upto_ts: int) -> Iterator[UpdateRecord]:
        """Records with ``after_ts < write_ts <= upto_ts`` (snapshotting).

        An inverted window (``after_ts > upto_ts``) raises — in the
        snapshot/IVM paths it is always a caller bug (a cursor that ran
        ahead of the target timestamp), and silently yielding nothing
        would let a stale view pass for a fresh one.
        """
        lo, hi = self._log_window(after_ts, upto_ts)
        return iter(self._log[lo:hi])

    def log_count_between(self, after_ts: int, upto_ts: int) -> int:
        """Number of records :meth:`log_between` would yield, in O(log n).

        Cost estimation (e.g. the serve scheduler's apply-deltas vs
        full-rescan decision) needs the count without materializing or
        consuming the records.
        """
        lo, hi = self._log_window(after_ts, upto_ts)
        return hi - lo

    def _log_window(self, after_ts: int, upto_ts: int) -> Tuple[int, int]:
        """Bisect the log slice for ``(after_ts, upto_ts]`` windows."""
        if after_ts > upto_ts:
            raise ValueError(
                f"inverted update-log window: after_ts {after_ts} > upto_ts {upto_ts}"
            )
        lo = bisect.bisect_right(self._log_ts, after_ts)
        hi = bisect.bisect_right(self._log_ts, upto_ts, lo=lo)
        return lo, hi

    @property
    def log_length(self) -> int:
        """Number of committed write records retained."""
        return len(self._log)

    def updated_chains(self) -> List[VersionChain]:
        """Chains whose newest version lives in the delta region.

        O(updated rows) via the maintained delta-head set, in the order
        each row's head first moved to the delta region.
        """
        return [self._chains[row_id] for row_id in self._delta_heads]

    def stale_version_count(self) -> int:
        """Superseded versions awaiting defragmentation (O(1))."""
        return self._stale_versions

    def visible_refs_at(self, ts: int, delta_rows: int) -> Tuple[np.ndarray, np.ndarray]:
        """Visibility bitmaps at ``ts``, batched over the packed index.

        Returns boolean arrays over the data region (``capacity_rows``
        entries) and the delta region's first ``delta_rows`` entries.
        Rows whose head is newer than ``ts`` fall back to a chain walk —
        the only per-row work, and only for in-flight multi-version rows.
        Unlike :meth:`read`, this never observes reads (it describes a
        snapshot, it doesn't take part in concurrency control).
        """
        if not perf.vectorized():
            return self._visible_refs_reference(ts, delta_rows)
        n = self.num_rows
        data_bits = np.zeros(self.data.num_rows, dtype=bool)
        delta_bits = np.zeros(max(delta_rows, 1), dtype=bool)[:delta_rows]
        if n == 0:
            return data_bits, delta_bits
        head_ts = self._head_ts[:n]
        head_delta = self._head_delta[:n]
        chain_len = self._chain_len[:n]
        tomb = self._tomb_ts[:n]
        alive = ~self._dead[:n] & ~((tomb >= 0) & (tomb <= ts))
        head_visible = alive & ((chain_len == 0) | (head_ts <= ts))
        rows = np.nonzero(head_visible)[0]
        deltas = head_delta[rows]
        data_bits[rows[deltas < 0]] = True
        delta_bits[deltas[deltas >= 0]] = True
        # Rare fallback: alive rows whose newest version post-dates ts.
        for row in np.nonzero(alive & (chain_len > 0) & (head_ts > ts))[0]:
            entry = self._chains[int(row)].visible_at(int(ts))
            if entry is None:
                continue
            if entry.location.region == Region.DATA:
                data_bits[entry.location.index] = True
            else:
                delta_bits[entry.location.index] = True
        return data_bits, delta_bits

    def _visible_refs_reference(
        self, ts: int, delta_rows: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Naive visibility bitmaps: one chain resolution per row."""
        data_bits = np.zeros(self.data.num_rows, dtype=bool)
        delta_bits = np.zeros(max(delta_rows, 1), dtype=bool)[:delta_rows]
        for row_id in range(self.num_rows):
            if row_id in self._dead_rows:
                continue
            tomb = self._tombstones.get(row_id)
            if tomb is not None and tomb <= ts:
                continue
            chain = self._chains.get(row_id)
            if chain is None:
                data_bits[row_id] = True
                continue
            entry = chain.visible_at(ts)
            if entry is None:
                continue
            if entry.location.region == Region.DATA:
                data_bits[entry.location.index] = True
            else:
                delta_bits[entry.location.index] = True
        return data_bits, delta_bits

    def compact(self) -> List[Tuple[int, RowRef]]:
        """Defragmentation bookkeeping: fold newest versions into the data
        region.

        Returns ``(row_id, delta_ref)`` pairs that the storage layer must
        copy back (delta → origin data row). Tombstoned rows are *not*
        moved — copying a dead row's newest delta version back would be a
        wasted Eq. 1/2 transfer since no future read can observe it.
        Their chains are dropped and the tombstones folded into the
        permanent dead-row set (the log entries that carried them are
        cleared here, so the deletions must survive elsewhere). Chains of
        live rows are truncated, all delta rows released, and the update
        log cleared up to now.
        """
        dead = self._dead_rows | set(self._tombstones)
        moves: List[Tuple[int, RowRef]] = []
        for chain in list(self._chains.values()):
            if chain.row_id in dead:
                del self._chains[chain.row_id]
                continue
            head_loc = chain.head.location
            if head_loc.region == Region.DELTA:
                moves.append((chain.row_id, head_loc))
                chain.head.location = RowRef(Region.DATA, chain.row_id)
            chain.truncate_to_head()
        self._dead_rows.update(self._tombstones)
        self._tombstones.clear()
        self.delta.release_all()
        self._log.clear()
        self._log_ts.clear()
        # Packed index: batch-fold the same transitions.
        self._stale_versions = 0
        self._delta_heads.clear()
        if dead:
            folded = np.fromiter(dead, dtype=np.int64, count=len(dead))
            self._dead[folded] = True
            self._tomb_ts[folded] = -1
            self._chain_len[folded] = 0
            self._head_ts[folded] = 0
            self._head_delta[folded] = -1
        if self._chains:
            live = np.fromiter(self._chains.keys(), dtype=np.int64, count=len(self._chains))
            self._chain_len[live] = 1
            self._head_delta[live] = -1
        return moves

    def _check_row(self, row_id: int) -> None:
        if row_id < 0 or row_id >= self.num_rows:
            raise TransactionError(f"row {row_id} out of range [0, {self.num_rows})")
