"""Timestamp allocation for MVCC.

A single monotonically increasing logical clock hands out transaction
timestamps (DBx1000-style timestamp-ordering MVCC, §2.3). Analytical
queries take a *read timestamp* without consuming a new write timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TimestampOracle"]


@dataclass
class TimestampOracle:
    """Monotonic logical-timestamp source."""

    _next: int = field(default=1)

    def next_timestamp(self) -> int:
        """Allocate a fresh write timestamp."""
        ts = self._next
        self._next += 1
        return ts

    def read_timestamp(self) -> int:
        """Current read horizon: sees everything committed so far."""
        return self._next - 1

    def advance_to(self, ts: int) -> None:
        """Fast-forward so ``read_timestamp() >= ts``; never rewinds.

        Used by crash recovery, which applies checkpoint segments and
        replays WAL records at their *recorded* timestamps and must leave
        the oracle at the recovered commit horizon.
        """
        self._next = max(self._next, int(ts) + 1)

    @property
    def last_issued(self) -> int:
        """The most recently issued timestamp (0 if none)."""
        return self._next - 1
