"""MVCC metadata: row references, version entries, version chains (§2.3, §5.1).

Every row version carries a *write timestamp* (the transaction that
created it), a *read timestamp* (most recent reader), and a *pointer* to
the previous version — forming a version chain whose head is the newest
version. Metadata lives in CPU memory (PIM units never need it, §5.1);
its modelled DRAM footprint is :data:`METADATA_BYTES` per entry, the
``m = 16`` of the defragmentation cost model (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import TransactionError

__all__ = ["Region", "RowRef", "VersionEntry", "VersionChain", "METADATA_BYTES"]

#: Modelled metadata size per version entry (the paper's m = 16 B).
METADATA_BYTES = 16


class Region:
    """Region tags for row references."""

    DATA = "data"
    DELTA = "delta"


@dataclass(frozen=True)
class RowRef:
    """Location of one row version: region + row index within it."""

    region: str
    index: int

    def __post_init__(self) -> None:
        if self.region not in (Region.DATA, Region.DELTA):
            raise TransactionError(f"unknown region {self.region!r}")
        if self.index < 0:
            raise TransactionError(f"negative row index {self.index}")


@dataclass
class VersionEntry:
    """One version of a row."""

    write_ts: int
    location: RowRef
    prev: Optional["VersionEntry"] = None
    read_ts: int = 0

    def observe_read(self, ts: int) -> None:
        """Record a read at timestamp ``ts``."""
        if ts > self.read_ts:
            self.read_ts = ts


@dataclass
class VersionChain:
    """The version chain of one logical row; ``head`` is the newest."""

    row_id: int
    head: VersionEntry

    def visible_at(self, ts: int) -> Optional[VersionEntry]:
        """Newest version with ``write_ts <= ts`` (None if row is newer
        than the reader's snapshot entirely)."""
        entry: Optional[VersionEntry] = self.head
        while entry is not None:
            if entry.write_ts <= ts:
                return entry
            entry = entry.prev
        return None

    def install(self, entry: VersionEntry) -> None:
        """Install a new newest version (timestamps must increase)."""
        if entry.write_ts <= self.head.write_ts:
            raise TransactionError(
                f"row {self.row_id}: new version ts {entry.write_ts} not newer "
                f"than head ts {self.head.write_ts}"
            )
        entry.prev = self.head
        self.head = entry

    def length(self) -> int:
        """Number of versions in the chain."""
        n = 0
        entry: Optional[VersionEntry] = self.head
        while entry is not None:
            n += 1
            entry = entry.prev
        return n

    def versions(self) -> List[VersionEntry]:
        """All versions, newest first."""
        out: List[VersionEntry] = []
        entry: Optional[VersionEntry] = self.head
        while entry is not None:
            out.append(entry)
            entry = entry.prev
        return out

    def stale_refs(self) -> List[RowRef]:
        """Locations of all superseded versions (everything but head)."""
        return [e.location for e in self.versions()[1:]]

    def truncate_to_head(self) -> List[RowRef]:
        """Drop all superseded versions; returns their locations."""
        stale = self.stale_refs()
        self.head.prev = None
        return stale
