"""The OLAP engine: snapshot-consistent PIM scans plus CPU glue (§6.3).

The engine runs physical operators through the two-phase executor, takes
care of snapshotting before each query, and converts CPU-side glue work
(result harvest, group merge, bucket exchange) into time using the system
configuration's CPU bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.core.table import TableRuntime
from repro.errors import QueryError
from repro.olap import plan as qplan
from repro.olap.operators import (
    AggregationOperation,
    FilterOperation,
    GroupOperation,
    HashOperation,
    RegionRows,
    RowSlice,
    UnitIndex,
)
from repro.pim.controller import _ControllerBase
from repro.pim.executor import ExecutionResult, TwoPhaseExecutor
from repro.pim.pim_unit import Condition
from repro.telemetry import registry as telemetry

__all__ = ["QueryTiming", "OLAPEngine", "CPUFilterResult"]


@dataclass
class CPUFilterResult:
    """Outcome of a CPU fallback scan (§4.1.2) — mask-compatible with
    :class:`~repro.olap.operators.FilterOperation`."""

    column: str
    condition: "Condition"
    masks: Dict["RowSlice", np.ndarray] = field(default_factory=dict)
    cpu_bytes: int = 0

#: Modelled per-element CPU merge cost (ns) for dictionaries/buckets.
_CPU_MERGE_NS_PER_ELEMENT = 0.5


@dataclass
class QueryTiming:
    """Time accounting of one analytical query (Fig. 9b breakdown)."""

    snapshot_time: float = 0.0
    defrag_time: float = 0.0
    scan: ExecutionResult = field(default_factory=ExecutionResult)
    cpu_time: float = 0.0

    @property
    def consistency_time(self) -> float:
        """Snapshot + defragmentation — the paper's *consistency* bar."""
        return self.snapshot_time + self.defrag_time

    @property
    def total_time(self) -> float:
        """End-to-end query time."""
        return self.consistency_time + self.scan.total_time + self.cpu_time

    def add_cpu_bytes(self, nbytes: int, bandwidth: float) -> None:
        """Account CPU traffic at ``bandwidth`` bytes/ns."""
        self.cpu_time += nbytes / bandwidth


class OLAPEngine:
    """Executes analytical operators against table runtimes."""

    def __init__(
        self,
        config: SystemConfig,
        controller: _ControllerBase,
        units: UnitIndex,
    ) -> None:
        self.config = config
        self.controller = controller
        self.units = units
        self.executor = TwoPhaseExecutor(controller)

    def _units_for(self, table: TableRuntime) -> UnitIndex:
        """The PIM units of the rank holding ``table``."""
        return table.units if table.units is not None else self.units

    # ------------------------------------------------------------------
    # Mode-switch batching (serve-layer scheduler hook)
    # ------------------------------------------------------------------
    def begin_mode_batch(self) -> float:
        """Switch banks into PIM mode for a batch of queries; returns ns.

        Queries executed before :meth:`end_mode_batch` skip their
        per-launch mode switches (see
        :meth:`repro.pim.controller._ControllerBase.begin_mode_batch`).
        """
        cost = self.controller.begin_mode_batch()
        tel = telemetry.active()
        if tel.enabled and cost.total:
            tel.record_span("pim.control", cost.total, {"kind": "mode_batch"})
        return cost.total

    def end_mode_batch(self) -> float:
        """Close the open mode batch; returns the switch-back cost in ns."""
        return self.controller.end_mode_batch().total

    @property
    def mode_batch_active(self) -> bool:
        """Whether a mode batch currently holds the banks."""
        return self.controller.mode_batch_active

    def _observe(
        self, operator: str, op, scan: ExecutionResult, column: str, start: float
    ) -> None:
        """Report one operator execution into the telemetry registry.

        The operator span is a *wrapper* recorded at the explicit
        timeline position where its executor run began, so it contains
        the phase/control spans the run recorded without advancing the
        cursor a second time.
        """
        tel = telemetry.active()
        if not tel.enabled:
            return
        tel.counter("olap.operators").inc()
        tel.counter(f"olap.operator.{operator}.count").inc()
        tel.counter("olap.bytes_scanned").inc(getattr(op, "bytes_scanned", 0))
        tel.counter("olap.cpu_transfer_bytes").inc(getattr(op, "cpu_transfer_bytes", 0))
        tel.histogram(f"olap.operator.{operator}.latency_ns").observe(scan.total_time)
        tel.record_span(
            f"olap.operator.{operator}",
            tel.sim_time - start,
            {"column": column, "phases": scan.phases},
            start=start,
        )

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self, table: TableRuntime, ts: int, timing: QueryTiming) -> None:
        """Bring the table's snapshot up to ``ts`` and charge its cost."""
        cost = table.snapshots.update_to(ts)
        elapsed = cost.total_cpu_bytes / self.config.total_cpu_bandwidth
        timing.snapshot_time += elapsed
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("olap.snapshots").inc()
            tel.record_span("olap.snapshot", elapsed, {"table": table.name})

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def filter(
        self,
        table: TableRuntime,
        column: str,
        condition: Condition,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
    ) -> FilterOperation:
        """Run a predicate scan; mask harvest is charged to CPU time."""
        op = FilterOperation(
            table.storage,
            self._units_for(table),
            column,
            condition,
            rows or table.region_rows(),
        )
        t0 = telemetry.active().sim_time
        scan = self.executor.execute(op)
        timing.scan = timing.scan.merge(scan)
        timing.add_cpu_bytes(op.cpu_transfer_bytes, self.config.total_cpu_bandwidth)
        self._observe("filter", op, scan, column, t0)
        return op

    def group(
        self,
        table: TableRuntime,
        column: str,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
    ) -> Tuple[GroupOperation, qplan.MergedGroups]:
        """Group scan + CPU dictionary merge."""
        op = GroupOperation(
            table.storage, self._units_for(table), column, rows or table.region_rows()
        )
        t0 = telemetry.active().sim_time
        scan = self.executor.execute(op)
        timing.scan = timing.scan.merge(scan)
        timing.add_cpu_bytes(op.cpu_transfer_bytes, self.config.total_cpu_bandwidth)
        self._observe("group", op, scan, column, t0)
        merged = qplan.merge_group_blocks(op)
        timing.add_cpu_bytes(merged.cpu_bytes, self.config.total_cpu_bandwidth)
        timing.cpu_time += merged.num_groups * _CPU_MERGE_NS_PER_ELEMENT
        return op, merged

    def aggregate(
        self,
        table: TableRuntime,
        column: str,
        indices: Mapping[RowSlice, np.ndarray],
        num_groups: int,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
    ) -> np.ndarray:
        """Grouped sum of a value column under precomputed group indices."""
        op = AggregationOperation(
            table.storage,
            self._units_for(table),
            column,
            rows or table.region_rows(),
            indices,
            num_groups,
        )
        t0 = telemetry.active().sim_time
        scan = self.executor.execute(op)
        timing.scan = timing.scan.merge(scan)
        timing.add_cpu_bytes(op.cpu_transfer_bytes, self.config.total_cpu_bandwidth)
        self._observe("aggregate", op, scan, column, t0)
        return op.total()

    def hash_scan(
        self,
        table: TableRuntime,
        column: str,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
        hash_function: int = 0,
    ) -> HashOperation:
        """Hash a join key column."""
        op = HashOperation(
            table.storage,
            self._units_for(table),
            column,
            rows or table.region_rows(),
            hash_function,
        )
        t0 = telemetry.active().sim_time
        scan = self.executor.execute(op)
        timing.scan = timing.scan.merge(scan)
        timing.add_cpu_bytes(op.cpu_transfer_bytes, self.config.total_cpu_bandwidth)
        self._observe("hash", op, scan, column, t0)
        return op

    def join(
        self,
        build: HashOperation,
        probe: HashOperation,
        timing: QueryTiming,
        num_buckets: int = 64,
        build_masks: Optional[Mapping[RowSlice, np.ndarray]] = None,
    ) -> qplan.JoinResult:
        """Bucketized hash join; PIM bucket matching charged as compute."""
        result = qplan.hash_join(build, probe, num_buckets, build_masks)
        timing.add_cpu_bytes(result.cpu_bytes, self.config.total_cpu_bandwidth)
        # PIM units match buckets in parallel (§6.3): elements spread over
        # all units' tasklets at the join cycle cost.
        pim = self.config.pim
        per_unit = result.pim_elements / max(1, len(self.units))
        steps = per_unit / pim.tasklets
        match_time = steps * 12 * pim.cycle_ns
        timing.scan.compute_time += match_time
        timing.scan.total_time += match_time
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("olap.operator.join.count").inc()
            tel.counter("olap.cpu_transfer_bytes").inc(result.cpu_bytes)
            tel.record_span(
                "olap.operator.join", match_time, {"elements": result.pim_elements}
            )
        return result

    def cpu_filter(
        self,
        table: TableRuntime,
        column: str,
        condition: Condition,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
    ) -> "CPUFilterResult":
        """Predicate scan of *any* column through the CPU (§4.1.2).

        Normal columns are not IDE-aligned, so PIM units cannot stream
        them; the CPU streams every part containing the column instead —
        correct, but at a bandwidth cost the key-column mechanism avoids.
        Masks are produced per block in the same :class:`RowSlice` shape
        as PIM filters, so results compose with aggregates and joins.
        """
        rows = rows or table.region_rows()
        storage = table.storage
        masks: Dict[RowSlice, np.ndarray] = {}
        cpu_bytes = 0
        per_row_compute = 1.0  # ns per predicate evaluation on the CPU
        from repro.mvcc.metadata import Region

        for region, count, visible in (
            (Region.DATA, rows.data_rows, table.snapshots.visible_data_rows()),
            (Region.DELTA, rows.delta_rows, table.snapshots.visible_delta_rows()),
        ):
            if count <= 0:
                continue
            raw = storage.read_column_values(region, column, count)
            if storage.layout.schema.column(column).kind == "int":
                values = np.fromiter(raw, dtype=np.uint64, count=count)
            else:
                # Opaque byte columns compare as 0 (matches the per-row
                # ``v if isinstance(v, int) else 0`` reference behavior).
                values = np.zeros(count, dtype=np.uint64)
            matches = condition.evaluate(values) & visible[:count]
            cpu_bytes += storage.cpu_scan_bytes(column, count)
            timing.cpu_time += count * per_row_compute
            block = storage.block_rows
            for base in range(0, count, block):
                hi = min(base + block, count)
                masks[RowSlice(region, base, hi - base)] = matches[base:hi]
        timing.add_cpu_bytes(cpu_bytes, self.config.total_cpu_bandwidth)
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("olap.operator.cpu_filter.count").inc()
            tel.counter("olap.cpu_filter_bytes").inc(cpu_bytes)
        return CPUFilterResult(column=column, condition=condition, masks=masks,
                               cpu_bytes=cpu_bytes)

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def filtered_sum(
        self,
        table: TableRuntime,
        filters: Sequence[FilterOperation],
        value_column: str,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
    ) -> int:
        """SUM(value) over rows passing all filters (no GROUP BY)."""
        if not filters:
            raise QueryError("filtered_sum needs at least one filter")
        masks, cpu_bytes = qplan.combine_masks(filters)
        timing.add_cpu_bytes(cpu_bytes, self.config.total_cpu_bandwidth)
        indices = qplan.masks_to_indices(masks)
        total = self.aggregate(table, value_column, indices, 1, timing, rows)
        return int(total[0])
