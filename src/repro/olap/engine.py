"""The OLAP engine: snapshot-consistent PIM scans plus CPU glue (§6.3).

The engine runs physical operators through the two-phase executor, takes
care of snapshotting before each query, and converts CPU-side glue work
(result harvest, group merge, bucket exchange) into time using the system
configuration's CPU bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.core.table import TableRuntime
from repro.errors import QueryError
from repro.olap import plan as qplan
from repro.olap.operators import (
    AggregationOperation,
    FilterOperation,
    GroupOperation,
    HashOperation,
    RegionRows,
    RowSlice,
    UnitIndex,
)
from repro.olap.cost import scan_bandwidth_per_unit
from repro.pim.controller import _ControllerBase
from repro.pim.executor import ExecutionResult, TwoPhaseExecutor
from repro.pim.pim_unit import Condition
from repro.pim.substrate import Substrate
from repro.telemetry import registry as telemetry

__all__ = ["QueryTiming", "OLAPEngine", "OperatorMetrics", "CPUFilterResult"]


@dataclass
class CPUFilterResult:
    """Outcome of a CPU fallback scan (§4.1.2) — mask-compatible with
    :class:`~repro.olap.operators.FilterOperation`."""

    column: str
    condition: "Condition"
    masks: Dict["RowSlice", np.ndarray] = field(default_factory=dict)
    cpu_bytes: int = 0

#: Modelled per-element CPU merge cost (ns) for dictionaries/buckets.
_CPU_MERGE_NS_PER_ELEMENT = 0.5


@dataclass(frozen=True)
class OperatorMetrics:
    """Roofline accounting of one operator execution.

    Bandwidths are bytes/ns (= GB/s); ``effective_bandwidth`` is DRAM
    bytes over the operation's DRAM-busy (load) time, aggregated across
    the participating units, and ``ceiling_ratio`` relates it to the
    active substrate's stream ceiling for that many units.
    """

    operator: str
    column: str
    dram_bytes: int
    elements: int
    load_time: float
    compute_time: float
    control_time: float
    total_time: float
    num_units: int
    ceiling_bandwidth: float
    bound: str

    @property
    def effective_bandwidth(self) -> float:
        """Achieved DRAM bandwidth during load phases, bytes/ns."""
        return self.dram_bytes / self.load_time if self.load_time else 0.0

    @property
    def operational_intensity(self) -> float:
        """Elements processed per DRAM byte moved (roofline x-axis)."""
        return self.elements / self.dram_bytes if self.dram_bytes else 0.0

    @property
    def ceiling_ratio(self) -> float:
        """Achieved bandwidth as a fraction of the substrate ceiling."""
        if not self.ceiling_bandwidth:
            return 0.0
        return self.effective_bandwidth / self.ceiling_bandwidth

    @classmethod
    def from_scan(
        cls,
        operator: str,
        column: str,
        scan: ExecutionResult,
        num_units: int,
        per_unit_ceiling: float,
    ) -> "OperatorMetrics":
        """Build metrics from one executor result."""
        return cls(
            operator=operator,
            column=column,
            dram_bytes=scan.dram_bytes,
            elements=scan.elements,
            load_time=scan.load_time,
            compute_time=scan.compute_time,
            control_time=scan.control_time,
            total_time=scan.total_time,
            num_units=num_units,
            ceiling_bandwidth=per_unit_ceiling * max(num_units, 0),
            bound=Substrate.classify(
                scan.load_time, scan.compute_time, scan.control_time
            ),
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain dict (for JSON snapshots), derived values included."""
        return {
            "operator": self.operator,
            "column": self.column,
            "dram_bytes": self.dram_bytes,
            "elements": self.elements,
            "load_time": self.load_time,
            "compute_time": self.compute_time,
            "control_time": self.control_time,
            "total_time": self.total_time,
            "num_units": self.num_units,
            "ceiling_bandwidth": self.ceiling_bandwidth,
            "effective_bandwidth": self.effective_bandwidth,
            "operational_intensity": self.operational_intensity,
            "ceiling_ratio": self.ceiling_ratio,
            "bound": self.bound,
        }


@dataclass
class QueryTiming:
    """Time accounting of one analytical query (Fig. 9b breakdown)."""

    snapshot_time: float = 0.0
    defrag_time: float = 0.0
    scan: ExecutionResult = field(default_factory=ExecutionResult)
    cpu_time: float = 0.0

    @property
    def consistency_time(self) -> float:
        """Snapshot + defragmentation — the paper's *consistency* bar."""
        return self.snapshot_time + self.defrag_time

    @property
    def total_time(self) -> float:
        """End-to-end query time."""
        return self.consistency_time + self.scan.total_time + self.cpu_time

    def add_cpu_bytes(self, nbytes: int, bandwidth: float) -> None:
        """Account CPU traffic at ``bandwidth`` bytes/ns."""
        self.cpu_time += nbytes / bandwidth


class OLAPEngine:
    """Executes analytical operators against table runtimes."""

    def __init__(
        self,
        config: SystemConfig,
        controller: _ControllerBase,
        units: UnitIndex,
    ) -> None:
        self.config = config
        self.controller = controller
        self.units = units
        self.executor = TwoPhaseExecutor(controller)
        #: Per-unit stream-bandwidth ceiling of the active substrate.
        self.unit_ceiling = scan_bandwidth_per_unit(config)
        #: Roofline accounting of every operator execution, appended only
        #: while the telemetry registry's ``roofline`` flag is on.
        self.roofline_log: List[OperatorMetrics] = []

    def _units_for(self, table: TableRuntime) -> UnitIndex:
        """The PIM units of the rank holding ``table``."""
        return table.units if table.units is not None else self.units

    # ------------------------------------------------------------------
    # Mode-switch batching (serve-layer scheduler hook)
    # ------------------------------------------------------------------
    def begin_mode_batch(self) -> float:
        """Switch banks into PIM mode for a batch of queries; returns ns.

        Queries executed before :meth:`end_mode_batch` skip their
        per-launch mode switches (see
        :meth:`repro.pim.controller._ControllerBase.begin_mode_batch`).
        """
        cost = self.controller.begin_mode_batch()
        tel = telemetry.active()
        if tel.enabled and cost.total:
            tel.record_span("pim.control", cost.total, {"kind": "mode_batch"})
        return cost.total

    def end_mode_batch(self) -> float:
        """Close the open mode batch; returns the switch-back cost in ns."""
        return self.controller.end_mode_batch().total

    @property
    def mode_batch_active(self) -> bool:
        """Whether a mode batch currently holds the banks."""
        return self.controller.mode_batch_active

    def _observe(
        self, operator: str, op, scan: ExecutionResult, column: str, start: float
    ) -> None:
        """Report one operator execution into the telemetry registry.

        The operator span is a *wrapper* recorded at the explicit
        timeline position where its executor run began, so it contains
        the phase/control spans the run recorded without advancing the
        cursor a second time.
        """
        tel = telemetry.active()
        if not tel.enabled:
            return
        tel.counter("olap.operators").inc()
        tel.counter(f"olap.operator.{operator}.count").inc()
        tel.counter("olap.bytes_scanned").inc(getattr(op, "bytes_scanned", 0))
        tel.counter("olap.cpu_transfer_bytes").inc(getattr(op, "cpu_transfer_bytes", 0))
        tel.histogram(f"olap.operator.{operator}.latency_ns").observe(scan.total_time)
        attrs: Dict[str, object] = {"column": column, "phases": scan.phases}
        if tel.roofline:
            metrics = OperatorMetrics.from_scan(
                operator,
                column,
                scan,
                len(list(op.participating_units())),
                self.unit_ceiling,
            )
            self.roofline_log.append(metrics)
            attrs.update(
                dram_bytes=metrics.dram_bytes,
                eff_gbps=round(metrics.effective_bandwidth, 6),
                ceiling_ratio=round(metrics.ceiling_ratio, 6),
                bound=metrics.bound,
            )
            tel.counter(f"olap.operator.{operator}.dram_bytes").inc(metrics.dram_bytes)
            tel.counter(f"olap.operator.{operator}.elements").inc(metrics.elements)
            tel.counter(f"olap.operator.{operator}.bound.{metrics.bound}").inc()
            tel.histogram(f"olap.operator.{operator}.eff_gbps").observe(
                metrics.effective_bandwidth
            )
            tel.histogram(f"olap.operator.{operator}.ceiling_ratio").observe(
                metrics.ceiling_ratio
            )
        tel.record_window_span(f"olap.operator.{operator}", start, attrs)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self, table: TableRuntime, ts: int, timing: QueryTiming) -> None:
        """Bring the table's snapshot up to ``ts`` and charge its cost."""
        cost = table.snapshots.update_to(ts)
        elapsed = cost.total_cpu_bytes / self.config.total_cpu_bandwidth
        timing.snapshot_time += elapsed
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("olap.snapshots").inc()
            tel.record_span("olap.snapshot", elapsed, {"table": table.name})

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def filter(
        self,
        table: TableRuntime,
        column: str,
        condition: Condition,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
    ) -> FilterOperation:
        """Run a predicate scan; mask harvest is charged to CPU time."""
        op = FilterOperation(
            table.storage,
            self._units_for(table),
            column,
            condition,
            rows or table.region_rows(),
        )
        t0 = telemetry.active().sim_time
        scan = self.executor.execute(op)
        timing.scan = timing.scan.merge(scan)
        timing.add_cpu_bytes(op.cpu_transfer_bytes, self.config.total_cpu_bandwidth)
        self._observe("filter", op, scan, column, t0)
        return op

    def group(
        self,
        table: TableRuntime,
        column: str,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
    ) -> Tuple[GroupOperation, qplan.MergedGroups]:
        """Group scan + CPU dictionary merge."""
        op = GroupOperation(
            table.storage, self._units_for(table), column, rows or table.region_rows()
        )
        t0 = telemetry.active().sim_time
        scan = self.executor.execute(op)
        timing.scan = timing.scan.merge(scan)
        timing.add_cpu_bytes(op.cpu_transfer_bytes, self.config.total_cpu_bandwidth)
        self._observe("group", op, scan, column, t0)
        merged = qplan.merge_group_blocks(op)
        timing.add_cpu_bytes(merged.cpu_bytes, self.config.total_cpu_bandwidth)
        timing.cpu_time += merged.num_groups * _CPU_MERGE_NS_PER_ELEMENT
        return op, merged

    def aggregate(
        self,
        table: TableRuntime,
        column: str,
        indices: Mapping[RowSlice, np.ndarray],
        num_groups: int,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
    ) -> np.ndarray:
        """Grouped sum of a value column under precomputed group indices."""
        op = AggregationOperation(
            table.storage,
            self._units_for(table),
            column,
            rows or table.region_rows(),
            indices,
            num_groups,
        )
        t0 = telemetry.active().sim_time
        scan = self.executor.execute(op)
        timing.scan = timing.scan.merge(scan)
        timing.add_cpu_bytes(op.cpu_transfer_bytes, self.config.total_cpu_bandwidth)
        self._observe("aggregate", op, scan, column, t0)
        return op.total()

    def hash_scan(
        self,
        table: TableRuntime,
        column: str,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
        hash_function: int = 0,
    ) -> HashOperation:
        """Hash a join key column."""
        op = HashOperation(
            table.storage,
            self._units_for(table),
            column,
            rows or table.region_rows(),
            hash_function,
        )
        t0 = telemetry.active().sim_time
        scan = self.executor.execute(op)
        timing.scan = timing.scan.merge(scan)
        timing.add_cpu_bytes(op.cpu_transfer_bytes, self.config.total_cpu_bandwidth)
        self._observe("hash", op, scan, column, t0)
        return op

    def join(
        self,
        build: HashOperation,
        probe: HashOperation,
        timing: QueryTiming,
        num_buckets: int = 64,
        build_masks: Optional[Mapping[RowSlice, np.ndarray]] = None,
    ) -> qplan.JoinResult:
        """Bucketized hash join; PIM bucket matching charged as compute."""
        result = qplan.hash_join(build, probe, num_buckets, build_masks)
        timing.add_cpu_bytes(result.cpu_bytes, self.config.total_cpu_bandwidth)
        # PIM units match buckets in parallel (§6.3): elements spread over
        # all units' tasklets at the join cycle cost.
        pim = self.config.pim
        per_unit = result.pim_elements / max(1, len(self.units))
        steps = per_unit / pim.tasklets
        match_time = steps * 12 * pim.cycle_ns
        timing.scan.compute_time += match_time
        timing.scan.total_time += match_time
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("olap.operator.join.count").inc()
            tel.counter("olap.cpu_transfer_bytes").inc(result.cpu_bytes)
            attrs: Dict[str, object] = {"elements": result.pim_elements}
            if tel.roofline:
                # Bucket matching is WRAM-resident — no DRAM traffic, so
                # the join's match step is compute-bound by construction.
                metrics = OperatorMetrics(
                    operator="join",
                    column="",
                    dram_bytes=0,
                    elements=result.pim_elements,
                    load_time=0.0,
                    compute_time=match_time,
                    control_time=0.0,
                    total_time=match_time,
                    num_units=len(self.units),
                    ceiling_bandwidth=self.unit_ceiling * len(self.units),
                    bound="compute",
                )
                self.roofline_log.append(metrics)
                attrs.update(dram_bytes=0, bound="compute")
                tel.counter("olap.operator.join.elements").inc(result.pim_elements)
                tel.counter("olap.operator.join.bound.compute").inc()
            tel.record_span("olap.operator.join", match_time, attrs)
        return result

    def cpu_filter(
        self,
        table: TableRuntime,
        column: str,
        condition: Condition,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
    ) -> "CPUFilterResult":
        """Predicate scan of *any* column through the CPU (§4.1.2).

        Normal columns are not IDE-aligned, so PIM units cannot stream
        them; the CPU streams every part containing the column instead —
        correct, but at a bandwidth cost the key-column mechanism avoids.
        Masks are produced per block in the same :class:`RowSlice` shape
        as PIM filters, so results compose with aggregates and joins.
        """
        rows = rows or table.region_rows()
        storage = table.storage
        masks: Dict[RowSlice, np.ndarray] = {}
        cpu_bytes = 0
        per_row_compute = 1.0  # ns per predicate evaluation on the CPU
        from repro.mvcc.metadata import Region

        for region, count, visible in (
            (Region.DATA, rows.data_rows, table.snapshots.visible_data_rows()),
            (Region.DELTA, rows.delta_rows, table.snapshots.visible_delta_rows()),
        ):
            if count <= 0:
                continue
            raw = storage.read_column_values(region, column, count)
            if storage.layout.schema.column(column).kind == "int":
                values = np.fromiter(raw, dtype=np.uint64, count=count)
            else:
                # Opaque byte columns compare as 0 (matches the per-row
                # ``v if isinstance(v, int) else 0`` reference behavior).
                values = np.zeros(count, dtype=np.uint64)
            matches = condition.evaluate(values) & visible[:count]
            cpu_bytes += storage.cpu_scan_bytes(column, count)
            timing.cpu_time += count * per_row_compute
            block = storage.block_rows
            for base in range(0, count, block):
                hi = min(base + block, count)
                masks[RowSlice(region, base, hi - base)] = matches[base:hi]
        timing.add_cpu_bytes(cpu_bytes, self.config.total_cpu_bandwidth)
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("olap.operator.cpu_filter.count").inc()
            tel.counter("olap.cpu_filter_bytes").inc(cpu_bytes)
        return CPUFilterResult(column=column, condition=condition, masks=masks,
                               cpu_bytes=cpu_bytes)

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def filtered_sum(
        self,
        table: TableRuntime,
        filters: Sequence[FilterOperation],
        value_column: str,
        timing: QueryTiming,
        rows: Optional[RegionRows] = None,
    ) -> int:
        """SUM(value) over rows passing all filters (no GROUP BY)."""
        if not filters:
            raise QueryError("filtered_sum needs at least one filter")
        masks, cpu_bytes = qplan.combine_masks(filters)
        timing.add_cpu_bytes(cpu_bytes, self.config.total_cpu_bandwidth)
        indices = qplan.masks_to_indices(masks)
        total = self.aggregate(table, value_column, indices, 1, timing, rows)
        return int(total[0])
