"""CPU-side glue for multi-column queries (§6.3).

Multi-column operations (aggregation with GROUP BY, hash join) need CPU
cooperation: merging per-block group dictionaries into global group ids,
combining filter masks, and exchanging hash buckets between banks. These
helpers do the functional work and report the CPU traffic they imply so
the engine can convert it to time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QueryError
from repro.olap.operators import (
    FilterOperation,
    GroupOperation,
    HashOperation,
    RowSlice,
)

__all__ = [
    "MergedGroups",
    "merge_group_blocks",
    "combine_masks",
    "masks_to_indices",
    "apply_mask_to_indices",
    "JoinResult",
    "hash_join",
]

#: Group index marking an invisible / filtered-out row.
INVALID_GROUP = 0xFFFF


@dataclass(frozen=True)
class MergedGroups:
    """Global group ids after the CPU merges per-block dictionaries."""

    keys: np.ndarray
    indices: Dict[RowSlice, np.ndarray]
    cpu_bytes: int

    @property
    def num_groups(self) -> int:
        """Number of distinct group keys."""
        return len(self.keys)


def merge_group_blocks(group_op: GroupOperation) -> MergedGroups:
    """Merge a group scan's per-block dictionaries into global ids.

    Each block's local indices are remapped through a global, sorted key
    dictionary; invisible rows keep :data:`INVALID_GROUP`.
    """
    if not group_op.block_dicts:
        raise QueryError("group operation has no results to merge — run it first")
    all_keys = np.unique(
        np.concatenate([d for d in group_op.block_dicts.values() if len(d)])
        if any(len(d) for d in group_op.block_dicts.values())
        else np.array([], dtype=np.uint64)
    )
    if len(all_keys) >= INVALID_GROUP:
        raise QueryError(f"too many groups ({len(all_keys)}) for 2-byte indices")
    merged: Dict[RowSlice, np.ndarray] = {}
    cpu_bytes = 0
    for row_slice, local in group_op.block_indices.items():
        local_keys = group_op.block_dicts[row_slice]
        out = np.full(len(local), INVALID_GROUP, dtype=np.uint16)
        valid = local != INVALID_GROUP
        if valid.any() and len(local_keys):
            remap = np.searchsorted(all_keys, local_keys).astype(np.uint16)
            out[valid] = remap[local[valid]]
        merged[row_slice] = out
        cpu_bytes += local.nbytes + local_keys.nbytes
    return MergedGroups(all_keys, merged, cpu_bytes)


def combine_masks(
    filters: Sequence[FilterOperation],
) -> Tuple[Dict[RowSlice, np.ndarray], int]:
    """AND the masks of several filter scans over identical row slices."""
    if not filters:
        raise QueryError("combine_masks needs at least one filter")
    slices = set(filters[0].masks)
    for f in filters[1:]:
        if set(f.masks) != slices:
            raise QueryError("filters cover different row slices; cannot combine")
    combined: Dict[RowSlice, np.ndarray] = {}
    cpu_bytes = 0
    for row_slice in slices:
        mask = filters[0].masks[row_slice].copy()
        for f in filters[1:]:
            mask &= f.masks[row_slice]
        combined[row_slice] = mask
        cpu_bytes += sum(-(-len(mask) // 8) for _ in filters)
    return combined, cpu_bytes


def masks_to_indices(
    masks: Mapping[RowSlice, np.ndarray], group: int = 0
) -> Dict[RowSlice, np.ndarray]:
    """Turn boolean masks into single-group aggregation indices.

    Matching rows get group ``group``; others :data:`INVALID_GROUP` —
    filtered aggregation without a GROUP BY is the one-group case.
    """
    out: Dict[RowSlice, np.ndarray] = {}
    for row_slice, mask in masks.items():
        indices = np.full(len(mask), INVALID_GROUP, dtype=np.uint16)
        indices[mask] = group
        out[row_slice] = indices
    return out


def apply_mask_to_indices(
    indices: Mapping[RowSlice, np.ndarray],
    masks: Mapping[RowSlice, np.ndarray],
) -> Dict[RowSlice, np.ndarray]:
    """Invalidate group indices of rows a filter rejected."""
    out: Dict[RowSlice, np.ndarray] = {}
    for row_slice, idx in indices.items():
        if row_slice not in masks:
            raise QueryError(f"mask missing for rows {row_slice}")
        masked = idx.copy()
        masked[~masks[row_slice]] = INVALID_GROUP
        out[row_slice] = masked
    return out


@dataclass(frozen=True)
class JoinResult:
    """Outcome of a hash join between two scanned key columns.

    ``probe_masks`` marks which probe-side rows matched (usable as a
    filter for a follow-up aggregation); ``build_masks_out`` marks build
    rows with at least one probe match (semi-join the other way);
    ``matches`` counts join pairs.
    """

    probe_masks: Dict[RowSlice, np.ndarray]
    matches: int
    cpu_bytes: int
    pim_elements: int
    build_masks_out: Dict[RowSlice, np.ndarray] = None

    @property
    def matched_build_rows(self) -> int:
        """Build rows with at least one probe match."""
        if not self.build_masks_out:
            return 0
        return int(sum(m.sum() for m in self.build_masks_out.values()))


def hash_join(
    build: HashOperation,
    probe: HashOperation,
    num_buckets: int = 64,
    build_masks: Optional[Mapping[RowSlice, np.ndarray]] = None,
) -> JoinResult:
    """Join two hash scans following the bucket division of §6.3 / [38].

    The CPU fetches both sides' hashes, divides them into ``num_buckets``
    buckets, and hands each bucket pair to PIM units; here the per-bucket
    match is done functionally on the CPU side while ``pim_elements``
    carries the modelled PIM join workload (the engine converts it to
    time using the join cycle cost).

    Hash collisions are resolved against the staged key values, so the
    result is exact. ``build_masks`` optionally restricts the build side
    to rows passing an earlier filter (e.g. Q9's item predicate).
    """
    if num_buckets <= 0:
        raise QueryError("num_buckets must be positive")
    build_keys: Dict[int, set] = {}
    cpu_bytes = 0
    pim_elements = 0
    for row_slice, hashes in build.hashes.items():
        values = build.values[row_slice]
        cpu_bytes += hashes.nbytes
        mask = build_masks.get(row_slice) if build_masks is not None else None
        if build_masks is not None and mask is None:
            raise QueryError(f"build mask missing for rows {row_slice}")
        for i, (h, v) in enumerate(zip(hashes, values)):
            if h == 0 or (mask is not None and not mask[i]):
                continue
            build_keys.setdefault(int(h) % num_buckets, set()).add(int(v))
            pim_elements += 1
    probe_masks: Dict[RowSlice, np.ndarray] = {}
    matched_values: set = set()
    matches = 0
    for row_slice, hashes in probe.hashes.items():
        values = probe.values[row_slice]
        cpu_bytes += hashes.nbytes
        mask = np.zeros(len(hashes), dtype=bool)
        for i, (h, v) in enumerate(zip(hashes, values)):
            if h == 0:
                continue
            pim_elements += 1
            bucket = build_keys.get(int(h) % num_buckets)
            if bucket is not None and int(v) in bucket:
                mask[i] = True
                matches += 1
                matched_values.add(int(v))
        probe_masks[row_slice] = mask
    build_masks_out: Dict[RowSlice, np.ndarray] = {}
    for row_slice, hashes in build.hashes.items():
        values = build.values[row_slice]
        in_mask = build_masks.get(row_slice) if build_masks is not None else None
        out = np.zeros(len(hashes), dtype=bool)
        for i, (h, v) in enumerate(zip(hashes, values)):
            if h == 0 or (in_mask is not None and not in_mask[i]):
                continue
            out[i] = int(v) in matched_values
        build_masks_out[row_slice] = out
    return JoinResult(probe_masks, matches, cpu_bytes, pim_elements, build_masks_out)
