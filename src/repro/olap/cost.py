"""Analytic OLAP scan cost model — the large-scale counterpart of the
functional two-phase executor.

The functional simulator moves real bytes, which is feasible at reduced
table scale. Figures whose x-axes reach the paper's full scale (60 M
order lines, millions of transactions) use this analytic model instead;
it is built from the *same* per-phase quantities the executor produces —
chunked WRAM loads, per-element compute steps, and controller overheads —
so the two agree by construction at small scale (validated in
``tests/test_cost_model.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Optional

from repro.core.config import SystemConfig
from repro.errors import QueryError
from repro.pim.timing import effective_stream_bandwidth

__all__ = ["ScanCost", "column_scan_cost", "scan_bandwidth_per_unit"]


@dataclass(frozen=True)
class ScanCost:
    """Cost of scanning one column across all PIM units."""

    total_time: float
    cpu_blocked_time: float
    load_time: float
    compute_time: float
    control_time: float
    phases: int
    bytes_streamed: int

    @property
    def control_fraction(self) -> float:
        """Control overhead share of total time."""
        return self.control_time / self.total_time if self.total_time else 0.0


def scan_bandwidth_per_unit(config: SystemConfig) -> float:
    """Effective per-unit streaming bandwidth in bytes/ns.

    The DRAM-side streaming rate capped by the unit's bandwidth spec
    (1 GB/s for the UPMEM-like unit of Table 1).
    """
    raw = effective_stream_bandwidth(
        config.timings, config.geometry, config.pim.access_granularity
    )
    return min(raw, config.pim.dram_bandwidth)


def column_scan_cost(
    config: SystemConfig,
    num_rows: int,
    column_width: int,
    part_row_width: Optional[int] = None,
    controller_kind: str = "pushtap",
    cycles_per_element: int = 4,
    parallel_units: Optional[int] = None,
    wram_bytes: Optional[int] = None,
) -> ScanCost:
    """Cost of one full-column scan under two-phase execution (§6.2).

    ``part_row_width`` is the per-row footprint streamed (the row width of
    the part holding the column — wider than ``column_width`` when
    padding/other columns share the slot); default is a compact column.
    ``parallel_units`` defaults to every PIM unit in the system
    (block-circulant placement guarantees this for long scans, §4.2).
    """
    if num_rows <= 0 or column_width <= 0:
        raise QueryError("num_rows and column_width must be positive")
    footprint = part_row_width if part_row_width is not None else column_width
    if footprint < column_width:
        raise QueryError("part_row_width cannot be below the column width")
    units = parallel_units if parallel_units is not None else config.total_pim_units
    if units <= 0:
        raise QueryError("parallel_units must be positive")
    wram = wram_bytes if wram_bytes is not None else config.pim.wram_bytes
    load_buffer = wram // 2

    # The part region is streamed contiguously (stride == row width), so
    # sub-granule footprints pack multiple rows per 8 B access — per-row
    # cost is exactly the footprint. (Skipping *holes* below the granule
    # is impossible; fragmentation enters via inflated row counts,
    # Fig. 11b.)
    total_bytes = num_rows * footprint
    per_unit_bytes = total_bytes / units
    phases = max(1, ceil(per_unit_bytes / load_buffer))
    chunk_bytes = per_unit_bytes / phases

    bw = scan_bandwidth_per_unit(config)
    load_per_phase = chunk_bytes / bw
    elements_per_phase = (num_rows / units) / phases
    steps = ceil(max(elements_per_phase, 1) / config.pim.tasklets)
    compute_per_phase = steps * cycles_per_element * config.pim.cycle_ns

    handover = config.mode_switch_latency * config.total_ranks
    if controller_kind == "pushtap":
        # launch(LS)+poll + launch(compute)+poll: 4 requests + one
        # handover per LS phase (compute phases are WRAM-only).
        control_per_phase = 4 * config.controller_request_latency + handover
        blocked_per_phase = control_per_phase + load_per_phase
        offload_control = 0.0
    elif controller_kind == "original":
        # Per phase the CPU messages every unit for launch+poll of both
        # sub-phases; the bank handover is paid once for the whole
        # offload (§2.1 — banks stay locked across phases).
        msg = config.total_pim_units * config.unit_message_latency
        control_per_phase = 4 * msg
        blocked_per_phase = control_per_phase + load_per_phase + compute_per_phase
        offload_control = handover
    else:
        raise QueryError(f"unknown controller kind {controller_kind!r}")

    total_per_phase = control_per_phase + load_per_phase + compute_per_phase
    return ScanCost(
        total_time=phases * total_per_phase + offload_control,
        cpu_blocked_time=phases * blocked_per_phase + offload_control,
        load_time=phases * load_per_phase,
        compute_time=phases * compute_per_phase,
        control_time=phases * control_per_phase + offload_control,
        phases=phases,
        bytes_streamed=int(total_bytes),
    )
