"""Composable predicates compiled to PIM filter scans.

The hardware filter operation (Fig. 7b) evaluates one comparison per
scan; real queries combine several. A :class:`Predicate` tree expresses
conjunctions/disjunctions of per-column comparisons and compiles to the
minimal set of single-column scans plus CPU-side mask algebra:

>>> p = (col("ol_quantity").between(2, 8)
...      & (col("ol_delivery_d") >= 1500)
...      & ~(col("ol_number") == 3))
>>> masks = evaluate(p, olap_engine, table, timing)

Each *leaf* comparison becomes one ``Filter`` launch; boolean structure
is applied to the returned bitmaps by the CPU (cheap — bitmaps are
rows/8 bytes). Leaves over normal columns automatically fall back to the
CPU scan of §4.1.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.table import TableRuntime
from repro.errors import QueryError
from repro.olap.operators import RegionRows, RowSlice
from repro.pim.pim_unit import Condition

__all__ = ["Predicate", "Comparison", "And", "Or", "Not", "col", "evaluate"]


class Predicate:
    """Base class: supports ``&``, ``|`` and ``~`` composition."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def leaves(self):
        """Yield every comparison leaf."""
        raise NotImplementedError

    def _apply(self, masks: Dict["Comparison", Dict[RowSlice, np.ndarray]]):
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(Predicate):
    """One single-column comparison — a hardware filter launch."""

    column: str
    op: str
    operand: int

    def condition(self) -> Condition:
        """The Fig. 7b condition encoding of this leaf."""
        return Condition(self.op, self.operand)

    def leaves(self):
        yield self

    def _apply(self, masks):
        return masks[self]


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two predicates."""

    left: Predicate
    right: Predicate

    def leaves(self):
        yield from self.left.leaves()
        yield from self.right.leaves()

    def _apply(self, masks):
        a = self.left._apply(masks)
        b = self.right._apply(masks)
        return {rs: a[rs] & b[rs] for rs in a}


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two predicates."""

    left: Predicate
    right: Predicate

    def leaves(self):
        yield from self.left.leaves()
        yield from self.right.leaves()

    def _apply(self, masks):
        a = self.left._apply(masks)
        b = self.right._apply(masks)
        return {rs: a[rs] | b[rs] for rs in a}


@dataclass(frozen=True)
class Not(Predicate):
    """Negation. Invisible rows stay excluded (negation applies to the
    predicate, not to snapshot visibility)."""

    inner: Predicate

    def leaves(self):
        yield from self.inner.leaves()

    def _apply(self, masks):
        inner = self.inner._apply(masks)
        visible = masks["__visible__"]
        return {rs: visible[rs] & ~inner[rs] for rs in inner}


class _ColumnProxy:
    """Builder: ``col("x") >= 5`` etc."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, operand):  # type: ignore[override]
        return Comparison(self.name, "eq", int(operand))

    def __ne__(self, operand):  # type: ignore[override]
        return Comparison(self.name, "ne", int(operand))

    def __lt__(self, operand):
        return Comparison(self.name, "lt", int(operand))

    def __le__(self, operand):
        return Comparison(self.name, "le", int(operand))

    def __gt__(self, operand):
        return Comparison(self.name, "gt", int(operand))

    def __ge__(self, operand):
        return Comparison(self.name, "ge", int(operand))

    def between(self, low: int, high: int) -> Predicate:
        """Inclusive range predicate (two filter launches)."""
        return Comparison(self.name, "ge", int(low)) & Comparison(
            self.name, "le", int(high)
        )

    __hash__ = None  # proxies are builders, not values


def col(name: str) -> _ColumnProxy:
    """Start a comparison over column ``name``."""
    return _ColumnProxy(name)


def evaluate(
    predicate: Predicate,
    olap,
    table: TableRuntime,
    timing,
    rows: Optional[RegionRows] = None,
) -> Dict[RowSlice, np.ndarray]:
    """Run every leaf as a scan and fold the boolean structure.

    Deduplicates identical leaves (each distinct comparison scans once).
    Leaves over key columns run on the PIM units; others fall back to the
    CPU path. Returns per-slice masks already ANDed with snapshot
    visibility, composable with aggregates and joins.
    """
    rows = rows or table.region_rows()
    leaf_masks: Dict[Comparison, Dict[RowSlice, np.ndarray]] = {}
    for leaf in predicate.leaves():
        if leaf in leaf_masks:
            continue
        if not table.schema.has_column(leaf.column):
            raise QueryError(f"unknown column {leaf.column!r}")
        if leaf.column in table.layout.key_columns:
            op = olap.filter(table, leaf.column, leaf.condition(), timing, rows)
            leaf_masks[leaf] = op.masks
        else:
            result = olap.cpu_filter(table, leaf.column, leaf.condition(), timing, rows)
            leaf_masks[leaf] = result.masks
    if not leaf_masks:
        raise QueryError("predicate has no comparisons")
    # Visibility mask (for Not): an always-true comparison's shape.
    any_masks = next(iter(leaf_masks.values()))
    visible: Dict[RowSlice, np.ndarray] = {}
    for row_slice in any_masks:
        bits = (
            table.snapshots.visible_data_rows()
            if row_slice.region == "data"
            else table.snapshots.visible_delta_rows()
        )
        visible[row_slice] = bits[
            row_slice.base_row : row_slice.base_row + row_slice.num_rows
        ]
    leaf_masks["__visible__"] = visible
    return predicate._apply(leaf_masks)
