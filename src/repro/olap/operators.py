"""Physical OLAP operators executed by PIM units (§6.2, §6.3).

Each operator is a :class:`~repro.pim.executor.ChunkedOperation`: its work
is a list of :class:`~repro.core.storage.BlockScan` items per PIM unit,
chunked so each phase's data fits in half the WRAM. A load phase stages
the snapshot-bitmap slice and the column bytes of up to
``blocks_per_phase`` blocks into WRAM; the compute phase then runs the
corresponding Fig. 7b operation per block.

Operators collect *functional* results (masks, group keys, hashes,
partial sums) on the Python side, standing in for the CPU harvesting
result buffers; the harvest traffic is modelled via
``cpu_transfer_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.storage import BlockScan, TableStorage
from repro.errors import QueryError
from repro.mvcc.metadata import Region
from repro.pim.pim_unit import Condition, PIMUnit, bytes_to_uints
from repro.pim.requests import LaunchRequest, OpType
from repro.pim.timing import stream_time
from repro.units import ceil_div

__all__ = [
    "UnitIndex",
    "FilterOperation",
    "GroupOperation",
    "AggregationOperation",
    "HashOperation",
    "RegionRows",
    "RowSlice",
]

#: Maps (device, bank) to the PIM unit responsible for that bank.
UnitIndex = Mapping[Tuple[int, int], PIMUnit]


@dataclass(frozen=True)
class RegionRows:
    """How many rows to scan in each region."""

    data_rows: int
    delta_rows: int = 0


@dataclass(frozen=True)
class RowSlice:
    """Identifies the rows of one scanned block: region + base row."""

    region: str
    base_row: int
    num_rows: int


class _ColumnScanOperation:
    """Shared machinery: plan, chunking, WRAM staging, bitmap loads."""

    #: Bytes of WRAM the result region of one block may use.
    _RESULT_BYTES_PER_BLOCK = 4096

    def __init__(
        self,
        storage: TableStorage,
        units: UnitIndex,
        column: str,
        rows: RegionRows,
    ) -> None:
        self.storage = storage
        self.units = units
        self.column = column
        self.rows = rows
        self.width = storage.layout.schema.column(column).width
        #: DRAM bytes staged into WRAM by this operation (column + bitmap).
        self.bytes_scanned = 0
        self._scans: List[Tuple[BlockScan, RowSlice]] = []
        for region, count in (
            (Region.DATA, rows.data_rows),
            (Region.DELTA, rows.delta_rows),
        ):
            if count <= 0:
                continue
            for scan in storage.column_scan_plan(column, region, count):
                self._scans.append(
                    (scan, RowSlice(region, scan.base_row, scan.num_rows))
                )
        if not self._scans:
            raise QueryError(f"nothing to scan for column {self.column!r}")
        self._queues: Dict[Tuple[int, int], List[int]] = {}
        for i, (scan, _) in enumerate(self._scans):
            self._queues.setdefault((scan.device, scan.bank), []).append(i)
        missing = [key for key in self._queues if key not in units]
        if missing:
            raise QueryError(f"no PIM unit for banks {missing}")
        any_unit = next(iter(units.values()))
        # The WRAM footprint is invariant per operation — compute it once
        # and precompute every batch slot's offsets instead of rebuilding
        # the dict on each of the per-block load/compute calls.
        self._block_wram_bytes = self._per_block_wram_bytes()
        self._blocks_per_phase = self._compute_blocks_per_phase(any_unit)
        self._chunks = max(
            ceil_div(len(q), self._blocks_per_phase) for q in self._queues.values()
        )
        self._slot_offsets = [
            self._offsets(slot) for slot in range(self._blocks_per_phase)
        ]

    # -- WRAM budget ----------------------------------------------------
    def _per_block_wram_bytes(self) -> int:
        block = self.storage.block_rows
        bitmap = block // 8
        data = block * self.width
        aux = self._aux_bytes_per_block()
        return bitmap + data + aux + self._RESULT_BYTES_PER_BLOCK

    def _aux_bytes_per_block(self) -> int:
        """Extra staged bytes (e.g. index arrays); subclasses override."""
        return 0

    def _compute_blocks_per_phase(self, unit: PIMUnit) -> int:
        budget = unit.config.load_buffer_bytes
        need = self._block_wram_bytes
        if need > budget:
            raise QueryError(
                f"one block needs {need} B of WRAM, budget is {budget} B"
            )
        return max(1, budget // need)

    def _offsets(self, batch_slot: int) -> Dict[str, int]:
        """WRAM offsets of one block's regions within a phase batch."""
        base = batch_slot * self._block_wram_bytes
        block = self.storage.block_rows
        bitmap = base
        data = bitmap + block // 8
        aux = data + block * self.width
        result = aux + self._aux_bytes_per_block()
        return {"bitmap": bitmap, "data": data, "aux": aux, "result": result}

    # -- ChunkedOperation interface --------------------------------------
    def num_chunks(self) -> int:
        """Phases needed to drain the longest unit queue."""
        return self._chunks

    def participating_units(self) -> Sequence[PIMUnit]:
        """Units owning at least one block of this scan."""
        return [self.units[key] for key in sorted(self._queues)]

    def load_request(self, chunk: int) -> LaunchRequest:
        """Representative LS request for the phase (Fig. 7b encoding)."""
        scan, _ = self._scans[0]
        return LaunchRequest(
            OpType.LS,
            {
                "op0_addr": scan.dram_addr % (1 << 24),
                "op0_len": min(scan.num_rows * self.width, 0xFFFF),
                "op0_stride": scan.stride,
                "result_addr": 0,
            },
        )

    def compute_request(self, chunk: int) -> LaunchRequest:
        raise NotImplementedError

    def _batch(self, unit_key: Tuple[int, int], chunk: int) -> List[int]:
        queue = self._queues.get(unit_key, [])
        start = chunk * self._blocks_per_phase
        return queue[start : start + self._blocks_per_phase]

    def load(self, unit: PIMUnit, chunk: int) -> float:
        """Stage bitmap + column bytes of this phase's blocks into WRAM."""
        time = 0.0
        key = (unit.bank.device.index, unit.bank.index)
        bank_base = unit.bank.start
        for batch_slot, scan_index in enumerate(self._batch(key, chunk)):
            scan, row_slice = self._scans[scan_index]
            offsets = self._slot_offsets[batch_slot]
            time += unit.load_strided(
                scan.dram_addr - bank_base,
                scan.num_rows * self.width,
                scan.stride,
                scan.chunk,
                offsets["data"],
            )
            time += self._load_bitmap(unit, scan, row_slice, offsets["bitmap"])
            time += self._load_aux(unit, scan, row_slice, offsets)
            self.bytes_scanned += scan.num_rows * self.width + self.storage.block_rows // 8
        return time

    def _load_bitmap(
        self, unit: PIMUnit, scan: BlockScan, row_slice: RowSlice, offset: int
    ) -> float:
        """Stage the block's snapshot-bitmap slice.

        Functionally read from the device's bitmap copy; each bank keeps a
        replica of its rows' bits (§5.2), so the modelled cost is a local
        stream of the slice.
        """
        addr = self.storage.bitmap_block_slice_addr(row_slice.region, scan.block)
        nbytes = self.storage.block_rows // 8
        device = unit.bank.device.index
        data = self.storage.rank.device_read(device, addr, nbytes)
        unit.wram_write(offset, data)
        time = stream_time(
            nbytes, unit.timings, unit.geometry, unit.config.access_granularity
        )
        unit.stats.dram_bytes_read += nbytes
        unit.stats.load_time += time
        return time

    def _load_aux(
        self, unit: PIMUnit, scan: BlockScan, row_slice: RowSlice, offsets: Dict[str, int]
    ) -> float:
        """Stage operator-specific extra data; subclasses override."""
        return 0.0

    def compute(self, unit: PIMUnit, chunk: int) -> float:
        """Run the compute phase on this phase's staged blocks."""
        time = 0.0
        key = (unit.bank.device.index, unit.bank.index)
        for batch_slot, scan_index in enumerate(self._batch(key, chunk)):
            scan, row_slice = self._scans[scan_index]
            time += self._compute_block(
                unit, scan, row_slice, self._slot_offsets[batch_slot]
            )
        return time

    def _compute_block(
        self, unit: PIMUnit, scan: BlockScan, row_slice: RowSlice, offsets: Dict[str, int]
    ) -> float:
        raise NotImplementedError


class FilterOperation(_ColumnScanOperation):
    """Predicate scan of one key column (Fig. 7b ``Filter``).

    Produces a visibility-anded match mask per scanned block, harvested
    into :attr:`masks` keyed by row slice.
    """

    def __init__(
        self,
        storage: TableStorage,
        units: UnitIndex,
        column: str,
        condition: Condition,
        rows: RegionRows,
    ) -> None:
        super().__init__(storage, units, column, rows)
        self.condition = condition
        self.masks: Dict[RowSlice, np.ndarray] = {}
        self.cpu_transfer_bytes = 0

    def compute_request(self, chunk: int) -> LaunchRequest:
        return LaunchRequest(
            OpType.FILTER,
            {
                "data_width": self.width,
                "condition": self.condition.encode(),
            },
        )

    def _compute_block(self, unit, scan, row_slice, offsets) -> float:
        time = unit.op_filter(
            offsets["bitmap"],
            offsets["data"],
            offsets["result"],
            self.width,
            self.condition,
            scan.num_rows,
        )
        packed = unit.wram_read(offsets["result"], ceil_div(scan.num_rows, 8))
        mask = np.unpackbits(packed, bitorder="little")[: scan.num_rows].astype(bool)
        self.masks[row_slice] = mask
        self.cpu_transfer_bytes += len(packed)
        return time


class GroupOperation(_ColumnScanOperation):
    """Group-key scan (Fig. 7b ``Group``): per-block dictionaries + indices.

    The CPU merges per-block dictionaries into global group ids afterwards
    (see :func:`repro.olap.plan.merge_group_blocks`).
    """

    #: WRAM reserved for the per-block dictionary.
    _DICT_CAPACITY = 256

    def __init__(
        self,
        storage: TableStorage,
        units: UnitIndex,
        column: str,
        rows: RegionRows,
    ) -> None:
        super().__init__(storage, units, column, rows)
        self.block_dicts: Dict[RowSlice, np.ndarray] = {}
        self.block_indices: Dict[RowSlice, np.ndarray] = {}
        self.cpu_transfer_bytes = 0

    def _aux_bytes_per_block(self) -> int:
        return self._DICT_CAPACITY * self.width

    def compute_request(self, chunk: int) -> LaunchRequest:
        return LaunchRequest(OpType.GROUP, {"data_width": self.width})

    def _compute_block(self, unit, scan, row_slice, offsets) -> float:
        time = unit.op_group(
            offsets["bitmap"],
            offsets["data"],
            offsets["aux"],
            offsets["result"],
            self.width,
            scan.num_rows,
            dict_capacity=self._DICT_CAPACITY,
        )
        indices = unit.wram_read(offsets["result"], scan.num_rows * 2).view(np.uint16)
        visible = indices != 0xFFFF
        num_groups = int(indices[visible].max()) + 1 if visible.any() else 0
        keys_raw = unit.wram_read(offsets["aux"], num_groups * self.width)
        self.block_dicts[row_slice] = bytes_to_uints(keys_raw, self.width)
        self.block_indices[row_slice] = indices.copy()
        self.cpu_transfer_bytes += num_groups * self.width + scan.num_rows * 2
        return time


class AggregationOperation(_ColumnScanOperation):
    """Grouped sum of one value column (Fig. 7b ``Aggregation``).

    ``indices`` supplies per-row *global* group ids (from a prior group
    scan, merged by the CPU); the CPU transfers each block's index slice
    to the bank holding that block's value column (§6.3), which is
    modelled as aux load traffic.
    """

    def __init__(
        self,
        storage: TableStorage,
        units: UnitIndex,
        column: str,
        rows: RegionRows,
        indices: Mapping[RowSlice, np.ndarray],
        num_groups: int,
    ) -> None:
        if num_groups <= 0:
            raise QueryError("num_groups must be positive")
        # Set before super().__init__: the WRAM budget depends on them.
        self.indices = indices
        self.num_groups = num_groups
        super().__init__(storage, units, column, rows)
        self.partials: Dict[RowSlice, np.ndarray] = {}
        self.cpu_transfer_bytes = 0

    def _aux_bytes_per_block(self) -> int:
        return self.storage.block_rows * 2

    def _per_block_wram_bytes(self) -> int:
        return super()._per_block_wram_bytes() + self.num_groups * 8

    def compute_request(self, chunk: int) -> LaunchRequest:
        return LaunchRequest(OpType.AGGREGATION, {"data_width": self.width})

    def _load_aux(self, unit, scan, row_slice, offsets) -> float:
        try:
            indices = self.indices[row_slice]
        except KeyError:
            raise QueryError(
                f"no group indices for rows {row_slice} — run the group scan "
                "over the same regions first"
            ) from None
        if len(indices) != scan.num_rows:
            raise QueryError(
                f"index slice for {row_slice} has {len(indices)} entries, "
                f"expected {scan.num_rows}"
            )
        arr = np.asarray(indices, dtype=np.uint16)
        unit.wram_write(offsets["aux"], arr.view(np.uint8))
        self.cpu_transfer_bytes += arr.nbytes
        # CPU→WRAM transfer rides the memory bus; modelled as a stream.
        time = stream_time(
            arr.nbytes, unit.timings, unit.geometry, unit.config.access_granularity
        )
        unit.stats.load_time += time
        return time

    def _compute_block(self, unit, scan, row_slice, offsets) -> float:
        acc_offset = offsets["result"]
        unit.wram_write(acc_offset, np.zeros(self.num_groups * 8, dtype=np.uint8))
        time = unit.op_aggregation(
            offsets["bitmap"],
            offsets["data"],
            offsets["aux"],
            acc_offset,
            self.width,
            scan.num_rows,
            self.num_groups,
        )
        partial = unit.wram_read(acc_offset, self.num_groups * 8).view(np.uint64)
        self.partials[row_slice] = partial.copy()
        self.cpu_transfer_bytes += partial.nbytes
        return time

    def total(self) -> np.ndarray:
        """CPU-side merge of all per-block partial sums."""
        out = np.zeros(self.num_groups, dtype=np.uint64)
        for partial in self.partials.values():
            out += partial
        return out


class HashOperation(_ColumnScanOperation):
    """Key hashing for hash join (Fig. 7b ``Hash``)."""

    def __init__(
        self,
        storage: TableStorage,
        units: UnitIndex,
        column: str,
        rows: RegionRows,
        hash_function: int = 0,
    ) -> None:
        super().__init__(storage, units, column, rows)
        self.hash_function = hash_function
        self.hashes: Dict[RowSlice, np.ndarray] = {}
        self.values: Dict[RowSlice, np.ndarray] = {}
        self.cpu_transfer_bytes = 0

    def compute_request(self, chunk: int) -> LaunchRequest:
        return LaunchRequest(
            OpType.HASH,
            {"data_width": self.width, "hash_function": self.hash_function},
        )

    def _compute_block(self, unit, scan, row_slice, offsets) -> float:
        time = unit.op_hash(
            offsets["bitmap"],
            offsets["data"],
            offsets["result"],
            self.width,
            scan.num_rows,
            self.hash_function,
        )
        hashes = unit.wram_read(offsets["result"], scan.num_rows * 4).view(np.uint32)
        self.hashes[row_slice] = hashes.copy()
        raw = unit.wram_read(offsets["data"], scan.num_rows * self.width)
        self.values[row_slice] = bytes_to_uints(raw, self.width)
        self.cpu_transfer_bytes += hashes.nbytes
        return time
