"""TPC-H analytical queries over CH-benCHmark: Q1, Q6, Q9 (§7.1).

The paper evaluates three representative queries:

* **Q1** — aggregation-heavy: grouped sums over ORDERLINE;
* **Q6** — selection-heavy: a multi-predicate filtered sum over ORDERLINE;
* **Q9** — join-heavy: ITEM ⋈ ORDERLINE with a filtered build side.

Beyond the paper's three, four more CH queries are executable — Q4
(semi-join count), Q12 (join + grouped count), Q14 (revenue share), and
Q17 (join + conjunctive filter + sum) — exercising the remaining operator
compositions.

Each query runs snapshot-consistently: the snapshot is brought up to the
query's read timestamp first (its cost lands in the *consistency* bar of
Fig. 9b), then the PIM operators scan under that snapshot.

Q9 is simplified relative to full TPC-H (no per-year grouping through a
second join with ORDER); the paper's "join-heavy" characterization — two
hash scans, a bucket exchange, and a probe-side aggregation — is retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.core.database import Database
from repro.olap import plan as qplan
from repro.olap.engine import OLAPEngine, QueryTiming
from repro.pim.pim_unit import Condition
from repro.workloads.tpcc_gen import DATE_EPOCH, DATE_HORIZON

__all__ = [
    "QueryResult",
    "q1",
    "q4",
    "q6",
    "q9",
    "q12",
    "q14",
    "q17",
    "QUERIES",
    "run_query",
]

#: Default predicate anchors derived from the synthetic date range.
_Q1_DELIVERY_CUTOFF = DATE_EPOCH + (DATE_HORIZON - DATE_EPOCH) // 4
_Q6_DELIVERY_LO = DATE_EPOCH + (DATE_HORIZON - DATE_EPOCH) // 4
_Q6_DELIVERY_HI = DATE_EPOCH + 3 * (DATE_HORIZON - DATE_EPOCH) // 4
_Q6_QTY_LO = 2
_Q6_QTY_HI = 8
_Q9_IM_CUTOFF = 5_000
_Q4_ENTRY_LO = DATE_EPOCH + (DATE_HORIZON - DATE_EPOCH) // 3
_Q4_ENTRY_HI = DATE_EPOCH + 2 * (DATE_HORIZON - DATE_EPOCH) // 3
_Q12_DELIVERY_LO = DATE_EPOCH + (DATE_HORIZON - DATE_EPOCH) // 2
_Q12_DELIVERY_HI = DATE_EPOCH + 3 * (DATE_HORIZON - DATE_EPOCH) // 4
_Q14_PROMO_CUTOFF = 3_000
_Q17_IM_CUTOFF = 5_000
_Q17_QTY_MAX = 3


@dataclass
class QueryResult:
    """Result rows and timing of one analytical query."""

    name: str
    rows: Dict = field(default_factory=dict)
    timing: QueryTiming = field(default_factory=QueryTiming)

    @property
    def total_time(self) -> float:
        """End-to-end query time in ns."""
        return self.timing.total_time


def q1(olap: OLAPEngine, db: Database, ts: int) -> QueryResult:
    """Q1: SUM(ol_quantity), SUM(ol_amount), COUNT(*) grouped by
    ol_number, over order lines delivered after a cutoff."""
    result = QueryResult("Q1")
    table = db.table("orderline")
    olap.snapshot(table, ts, result.timing)
    rows = table.region_rows()
    delivered = olap.filter(
        table,
        "ol_delivery_d",
        Condition("gt", _Q1_DELIVERY_CUTOFF),
        result.timing,
        rows,
    )
    _, merged = olap.group(table, "ol_number", result.timing, rows)
    indices = qplan.apply_mask_to_indices(merged.indices, delivered.masks)
    sum_qty = olap.aggregate(
        table, "ol_quantity", indices, merged.num_groups, result.timing, rows
    )
    sum_amount = olap.aggregate(
        table, "ol_amount", indices, merged.num_groups, result.timing, rows
    )
    counts = np.zeros(merged.num_groups, dtype=np.int64)
    for idx in indices.values():
        valid = idx != qplan.INVALID_GROUP
        if valid.any():
            counts += np.bincount(idx[valid], minlength=merged.num_groups)
    result.timing.add_cpu_bytes(
        sum(i.nbytes for i in indices.values()), olap.config.total_cpu_bandwidth
    )
    for g, key in enumerate(merged.keys):
        if counts[g]:
            result.rows[int(key)] = {
                "sum_qty": int(sum_qty[g]),
                "sum_amount": int(sum_amount[g]),
                "count": int(counts[g]),
            }
    return result


def q6(olap: OLAPEngine, db: Database, ts: int) -> QueryResult:
    """Q6: SUM(ol_amount) with delivery-date range and quantity range."""
    result = QueryResult("Q6")
    table = db.table("orderline")
    olap.snapshot(table, ts, result.timing)
    rows = table.region_rows()
    filters = [
        olap.filter(table, "ol_delivery_d", Condition("ge", _Q6_DELIVERY_LO), result.timing, rows),
        olap.filter(table, "ol_delivery_d", Condition("lt", _Q6_DELIVERY_HI), result.timing, rows),
        olap.filter(table, "ol_quantity", Condition("ge", _Q6_QTY_LO), result.timing, rows),
        olap.filter(table, "ol_quantity", Condition("le", _Q6_QTY_HI), result.timing, rows),
    ]
    total = olap.filtered_sum(table, filters, "ol_amount", result.timing, rows)
    result.rows["revenue"] = total
    return result


def q9(olap: OLAPEngine, db: Database, ts: int) -> QueryResult:
    """Q9: SUM(ol_amount) of order lines joining items with small i_im_id."""
    result = QueryResult("Q9")
    item = db.table("item")
    orderline = db.table("orderline")
    olap.snapshot(item, ts, result.timing)
    olap.snapshot(orderline, ts, result.timing)
    item_rows = item.region_rows()
    ol_rows = orderline.region_rows()
    item_filter = olap.filter(
        item, "i_im_id", Condition("le", _Q9_IM_CUTOFF), result.timing, item_rows
    )
    build = olap.hash_scan(item, "i_id", result.timing, item_rows)
    probe = olap.hash_scan(orderline, "ol_i_id", result.timing, ol_rows)
    join = olap.join(build, probe, result.timing, build_masks=item_filter.masks)
    indices = qplan.masks_to_indices(join.probe_masks)
    total = olap.aggregate(orderline, "ol_amount", indices, 1, result.timing, ol_rows)
    result.rows["revenue"] = int(total[0])
    result.rows["matches"] = join.matches
    return result


def q4(olap: OLAPEngine, db: Database, ts: int) -> QueryResult:
    """Q4 (order priority, simplified): COUNT of orders entered in a date
    range having at least one order line — a semi-join ORDER ⋉ ORDERLINE."""
    result = QueryResult("Q4")
    order = db.table("order")
    orderline = db.table("orderline")
    olap.snapshot(order, ts, result.timing)
    olap.snapshot(orderline, ts, result.timing)
    o_rows = order.region_rows()
    ol_rows = orderline.region_rows()
    entered = olap.filter(
        order, "o_entry_d", Condition("ge", _Q4_ENTRY_LO), result.timing, o_rows
    )
    entered_hi = olap.filter(
        order, "o_entry_d", Condition("lt", _Q4_ENTRY_HI), result.timing, o_rows
    )
    masks, cpu_bytes = qplan.combine_masks([entered, entered_hi])
    result.timing.add_cpu_bytes(cpu_bytes, olap.config.total_cpu_bandwidth)
    build = olap.hash_scan(order, "o_id", result.timing, o_rows)
    probe = olap.hash_scan(orderline, "ol_o_id", result.timing, ol_rows)
    join = olap.join(build, probe, result.timing, build_masks=masks)
    result.rows["order_count"] = join.matched_build_rows
    return result


def q12(olap: OLAPEngine, db: Database, ts: int) -> QueryResult:
    """Q12 (shipping modes, simplified): orders grouped by o_ol_cnt,
    counting those with an order line delivered inside a date range."""
    result = QueryResult("Q12")
    order = db.table("order")
    orderline = db.table("orderline")
    olap.snapshot(order, ts, result.timing)
    olap.snapshot(orderline, ts, result.timing)
    o_rows = order.region_rows()
    ol_rows = orderline.region_rows()
    delivered = [
        olap.filter(orderline, "ol_delivery_d", Condition("ge", _Q12_DELIVERY_LO), result.timing, ol_rows),
        olap.filter(orderline, "ol_delivery_d", Condition("lt", _Q12_DELIVERY_HI), result.timing, ol_rows),
    ]
    ol_masks, cpu_bytes = qplan.combine_masks(delivered)
    result.timing.add_cpu_bytes(cpu_bytes, olap.config.total_cpu_bandwidth)
    # Build on the filtered order lines; probing ORDER flags matching orders.
    build = olap.hash_scan(orderline, "ol_o_id", result.timing, ol_rows)
    probe = olap.hash_scan(order, "o_id", result.timing, o_rows)
    join = olap.join(build, probe, result.timing, build_masks=ol_masks)
    _, merged = olap.group(order, "o_ol_cnt", result.timing, o_rows)
    counts = np.zeros(merged.num_groups, dtype=np.int64)
    for row_slice, idx in merged.indices.items():
        matched = join.probe_masks.get(row_slice)
        if matched is None:
            continue
        valid = (idx != qplan.INVALID_GROUP) & matched
        if valid.any():
            counts += np.bincount(idx[valid], minlength=merged.num_groups)
    result.timing.add_cpu_bytes(
        sum(i.nbytes for i in merged.indices.values()),
        olap.config.total_cpu_bandwidth,
    )
    result.rows = {
        int(key): int(counts[g]) for g, key in enumerate(merged.keys) if counts[g]
    }
    return result


def q14(olap: OLAPEngine, db: Database, ts: int) -> QueryResult:
    """Q14 (promotion effect, simplified): revenue share of order lines
    whose item is promotional (small i_im_id)."""
    result = QueryResult("Q14")
    item = db.table("item")
    orderline = db.table("orderline")
    olap.snapshot(item, ts, result.timing)
    olap.snapshot(orderline, ts, result.timing)
    item_rows = item.region_rows()
    ol_rows = orderline.region_rows()
    promo_items = olap.filter(
        item, "i_im_id", Condition("le", _Q14_PROMO_CUTOFF), result.timing, item_rows
    )
    build = olap.hash_scan(item, "i_id", result.timing, item_rows)
    probe = olap.hash_scan(orderline, "ol_i_id", result.timing, ol_rows)
    join = olap.join(build, probe, result.timing, build_masks=promo_items.masks)
    promo_indices = qplan.masks_to_indices(join.probe_masks)
    promo = olap.aggregate(orderline, "ol_amount", promo_indices, 1, result.timing, ol_rows)
    everything = olap.filter(
        orderline, "ol_amount", Condition("ge", 0), result.timing, ol_rows
    )
    total = olap.aggregate(
        orderline,
        "ol_amount",
        qplan.masks_to_indices(everything.masks),
        1,
        result.timing,
        ol_rows,
    )
    result.rows["promo_revenue"] = int(promo[0])
    result.rows["total_revenue"] = int(total[0])
    result.rows["promo_share"] = (
        int(promo[0]) / int(total[0]) if total[0] else 0.0
    )
    return result


def q17(olap: OLAPEngine, db: Database, ts: int) -> QueryResult:
    """Q17 (small-quantity orders, simplified): SUM(ol_amount) of
    small-quantity order lines whose item has a small i_im_id."""
    result = QueryResult("Q17")
    item = db.table("item")
    orderline = db.table("orderline")
    olap.snapshot(item, ts, result.timing)
    olap.snapshot(orderline, ts, result.timing)
    item_rows = item.region_rows()
    ol_rows = orderline.region_rows()
    item_filter = olap.filter(
        item, "i_im_id", Condition("le", _Q17_IM_CUTOFF), result.timing, item_rows
    )
    build = olap.hash_scan(item, "i_id", result.timing, item_rows)
    probe = olap.hash_scan(orderline, "ol_i_id", result.timing, ol_rows)
    join = olap.join(build, probe, result.timing, build_masks=item_filter.masks)
    small_qty = olap.filter(
        orderline, "ol_quantity", Condition("le", _Q17_QTY_MAX), result.timing, ol_rows
    )
    masks = {
        row_slice: join.probe_masks[row_slice] & small_qty.masks[row_slice]
        for row_slice in small_qty.masks
    }
    total = olap.aggregate(
        orderline, "ol_amount", qplan.masks_to_indices(masks), 1, result.timing, ol_rows
    )
    result.rows["revenue"] = int(total[0])
    return result


#: Query registry by name.
QUERIES = {"Q1": q1, "Q4": q4, "Q6": q6, "Q9": q9, "Q12": q12, "Q14": q14, "Q17": q17}


def run_query(name: str, olap: OLAPEngine, db: Database, ts: int) -> QueryResult:
    """Run a registered query by name."""
    try:
        fn = QUERIES[name]
    except KeyError:
        raise KeyError(f"unknown executable query {name!r} (have {sorted(QUERIES)})")
    return fn(olap, db, ts)
