"""The OLAP engine: PIM operators, plans, queries, predicates, costs.

Import submodules directly (``repro.olap.engine``, ``repro.olap.queries``,
``repro.olap.predicates``, ...). The package initializer stays empty to
avoid a cycle with :mod:`repro.core.table`, which the engine modules
import.
"""
