"""Row-store and column-store baseline format models (Fig. 3a).

These are the conventional formats PUSHtap's unified format is compared
against in §7.3.1. They do not align rows/columns to the ADE/IDE
dimensions, so:

* **row-store** — ideal for OLTP: one row access touches
  ``ceil(row_bytes / cache_line)`` lines; column scans must stream the
  whole table through the CPU.
* **column-store** — ideal for PIM column scans (columns are compact) but
  a row access touches one cache line per column, and rows are not
  ADE-aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import DeviceGeometry
from repro.errors import SchemaError
from repro.format.schema import TableSchema
from repro.units import ceil_div

__all__ = ["RowStoreFormat", "ColumnStoreFormat"]


@dataclass(frozen=True)
class RowStoreFormat:
    """Conventional row-store layout of one table."""

    schema: TableSchema

    def lines_per_row_access(
        self, geometry: DeviceGeometry, columns: Optional[Sequence[str]] = None
    ) -> int:
        """Cache lines touched when accessing a row.

        Row-store keeps a row contiguous, so even a partial-column access
        reads the row's span (columns are adjacent).
        """
        del columns  # the whole row span is fetched either way
        return ceil_div(self.schema.row_bytes, geometry.cache_line_bytes)

    def cpu_effective_bandwidth(self, geometry: DeviceGeometry) -> float:
        """Useful fraction of a full-row access."""
        lines = self.lines_per_row_access(geometry)
        return self.schema.row_bytes / (lines * geometry.cache_line_bytes)

    def pim_scan_efficiency(self, column: str) -> Optional[float]:
        """Row-store columns are not IDE-aligned — no PIM scan possible."""
        self.schema.column(column)
        return None

    def column_scan_bytes(self, column: str, num_rows: int) -> int:
        """Bytes the CPU must stream to scan one column (whole table)."""
        self.schema.column(column)
        return self.schema.row_bytes * num_rows


@dataclass(frozen=True)
class ColumnStoreFormat:
    """Conventional column-store layout of one table."""

    schema: TableSchema

    def lines_per_row_access(
        self, geometry: DeviceGeometry, columns: Optional[Sequence[str]] = None
    ) -> int:
        """Cache lines touched when accessing a row.

        Every column lives in its own region, so each accessed column
        costs one cache line (§7.3.1: reconstructing rows is what makes
        CS transactions 28 % slower).
        """
        names = list(columns) if columns is not None else self.schema.column_names
        for name in names:
            if not self.schema.has_column(name):
                raise SchemaError(f"unknown column {name!r}")
        return max(1, len(names))

    def cpu_effective_bandwidth(self, geometry: DeviceGeometry) -> float:
        """Useful fraction of a full-row access."""
        lines = self.lines_per_row_access(geometry)
        return self.schema.row_bytes / (lines * geometry.cache_line_bytes)

    def pim_scan_efficiency(self, column: str) -> Optional[float]:
        """Columns are compact: a dedicated-instance PIM scan is 100 % useful."""
        self.schema.column(column)
        return 1.0

    def column_scan_bytes(self, column: str, num_rows: int) -> int:
        """Bytes streamed to scan one column (just the column)."""
        return self.schema.column(column).width * num_rows
