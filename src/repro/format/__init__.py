"""The unified data storage format (§4): schemas, layouts, placement."""

from repro.format.schema import Column, TableSchema
from repro.format.layout import UnifiedLayout, TablePart, DeviceSlot, FieldPlacement
from repro.format.binpack import compact_aligned_layout, compact_aligned_layout_with_report
from repro.format.naive import naive_aligned_layout
from repro.format.circulant import BlockCirculantPlacement
from repro.format.bandwidth import (
    cpu_effective_bandwidth,
    cpu_lines_per_row,
    pim_column_efficiency,
    pim_effective_bandwidth,
    storage_breakdown,
)

__all__ = [
    "Column",
    "TableSchema",
    "UnifiedLayout",
    "TablePart",
    "DeviceSlot",
    "FieldPlacement",
    "compact_aligned_layout",
    "compact_aligned_layout_with_report",
    "naive_aligned_layout",
    "BlockCirculantPlacement",
    "cpu_effective_bandwidth",
    "cpu_lines_per_row",
    "pim_column_efficiency",
    "pim_effective_bandwidth",
    "storage_breakdown",
]
