"""Table schemas with fixed per-column byte widths.

HTAP tables in PUSHtap use fixed-width column encodings (the paper handles
variable-width columns with conventional length-prefix techniques and does
not optimize them, §4.1.2). A :class:`Column` therefore carries an explicit
byte ``width``; integer columns of width ≤ 8 round-trip through
little-endian encoding, wider columns are treated as opaque byte strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import SchemaError

__all__ = ["Column", "TableSchema", "Value"]

#: A column value: integers for numeric columns, bytes for opaque columns.
Value = Union[int, bytes]


@dataclass(frozen=True)
class Column:
    """One fixed-width column of a table.

    ``kind`` is ``"int"`` for little-endian unsigned integers (width ≤ 8)
    or ``"bytes"`` for opaque fixed-width byte strings of any width.
    """

    name: str
    width: int
    kind: str = "int"

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.width <= 0:
            raise SchemaError(f"column {self.name!r} width must be positive")
        if self.kind not in ("int", "bytes"):
            raise SchemaError(f"column {self.name!r} has unknown kind {self.kind!r}")
        if self.kind == "int" and self.width > 8:
            raise SchemaError(
                f"int column {self.name!r} width {self.width} exceeds 8 bytes; "
                "use kind='bytes'"
            )

    @property
    def max_int(self) -> int:
        """Largest integer representable in this column (int kind only)."""
        if self.kind != "int":
            raise SchemaError(f"column {self.name!r} is not an int column")
        return (1 << (8 * self.width)) - 1

    def encode(self, value: Value) -> bytes:
        """Encode one value to exactly ``width`` bytes."""
        if self.kind == "int":
            if not isinstance(value, int):
                raise SchemaError(
                    f"column {self.name!r} expects int, got {type(value).__name__}"
                )
            if value < 0 or value > self.max_int:
                raise SchemaError(
                    f"value {value} out of range for column {self.name!r} "
                    f"(width {self.width})"
                )
            return value.to_bytes(self.width, "little")
        if not isinstance(value, (bytes, bytearray)):
            raise SchemaError(
                f"column {self.name!r} expects bytes, got {type(value).__name__}"
            )
        if len(value) > self.width:
            raise SchemaError(
                f"value of {len(value)} bytes too long for column {self.name!r} "
                f"(width {self.width})"
            )
        return bytes(value).ljust(self.width, b"\x00")

    def decode(self, raw: bytes) -> Value:
        """Decode ``width`` bytes back to a value."""
        if len(raw) != self.width:
            raise SchemaError(
                f"column {self.name!r} expects {self.width} bytes, got {len(raw)}"
            )
        if self.kind == "int":
            return int.from_bytes(raw, "little")
        return bytes(raw)


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of uniquely named columns."""

    name: str
    columns: Tuple[Column, ...]
    _by_name: Dict[str, Column] = field(init=False, repr=False, compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        by_name: Dict[str, Column] = {}
        for col in self.columns:
            if col.name in by_name:
                raise SchemaError(f"duplicate column {col.name!r} in table {self.name!r}")
            by_name[col.name] = col
        object.__setattr__(self, "_by_name", by_name)

    @classmethod
    def of(cls, name: str, columns: Sequence[Column]) -> "TableSchema":
        """Build a schema from any column sequence."""
        return cls(name, tuple(columns))

    @property
    def column_names(self) -> List[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    @property
    def row_bytes(self) -> int:
        """Total useful bytes of one row (no padding)."""
        return sum(c.width for c in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """Whether a column named ``name`` exists."""
        return name in self._by_name

    def encode_row(self, values: Dict[str, Value]) -> Dict[str, bytes]:
        """Encode a full row dict to per-column byte strings."""
        missing = [c.name for c in self.columns if c.name not in values]
        if missing:
            raise SchemaError(f"row for table {self.name!r} missing columns {missing}")
        return {c.name: c.encode(values[c.name]) for c in self.columns}

    def decode_row(self, raw: Dict[str, bytes]) -> Dict[str, Value]:
        """Decode per-column byte strings back to a row dict."""
        return {c.name: c.decode(raw[c.name]) for c in self.columns}

    def __iter__(self):
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)
