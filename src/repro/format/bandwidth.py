"""Effective-bandwidth models for CPU (ADE) and PIM (IDE) access (§4, §7.2).

*Effective bandwidth* is the fraction of transferred bytes that carry
useful data. For the CPU it is driven by how many interleaved cache lines
a row access touches; for a PIM unit it is the ratio of the scanned key
column's width to the row width of the part holding it (a streamed scan at
8 B granularity must read the whole per-row footprint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.config import DeviceGeometry
from repro.errors import LayoutError
from repro.format.layout import UnifiedLayout
from repro.units import ceil_div

__all__ = [
    "cpu_lines_per_row",
    "cpu_effective_bandwidth",
    "pim_column_efficiency",
    "pim_effective_bandwidth",
    "StorageBreakdown",
    "storage_breakdown",
]


def cpu_lines_per_row(layout: UnifiedLayout, geometry: DeviceGeometry) -> int:
    """Interleaved bursts (cache lines) one full-row CPU access touches.

    Each part contributes ``ceil(W / g)`` bursts of ``g · d`` bytes, where
    ``W`` is the part's row width and ``g`` the interleave granularity.
    """
    g = geometry.interleave_granularity
    return sum(ceil_div(part.row_width, g) for part in layout.parts)


def cpu_effective_bandwidth(layout: UnifiedLayout, geometry: DeviceGeometry) -> float:
    """Useful fraction of bytes moved when the CPU reads one row."""
    lines = cpu_lines_per_row(layout, geometry)
    transferred = lines * geometry.cache_line_bytes
    if transferred == 0:
        return 0.0
    return layout.useful_bytes_per_row() / transferred


def pim_column_efficiency(layout: UnifiedLayout, column: str) -> float:
    """Useful fraction of bytes a PIM unit streams when scanning a key column."""
    run = layout.key_column_location(column)
    part = layout.parts[run.part_index]
    return layout.schema.column(column).width / part.row_width


def pim_effective_bandwidth(
    layout: UnifiedLayout, column_weights: Mapping[str, float]
) -> float:
    """Scan-frequency-weighted average PIM efficiency over key columns.

    ``column_weights`` maps key column name → how often analytical queries
    scan it (e.g. the number of TPC-H queries touching it). Columns with
    zero or missing weight do not contribute.
    """
    total_weight = 0.0
    weighted = 0.0
    for name, weight in column_weights.items():
        if weight <= 0:
            continue
        if name not in layout.key_columns:
            raise LayoutError(
                f"weighted column {name!r} is not a key column of the layout"
            )
        weighted += weight * pim_column_efficiency(layout, name)
        total_weight += weight
    if total_weight == 0:
        return 0.0
    return weighted / total_weight


@dataclass(frozen=True)
class StorageBreakdown:
    """Memory-storage breakdown of one laid-out table (Fig. 8b)."""

    data_bytes: int
    padding_bytes: int
    bitmap_bytes: int

    @property
    def total_bytes(self) -> int:
        """Total stored bytes."""
        return self.data_bytes + self.padding_bytes + self.bitmap_bytes

    @property
    def padding_fraction(self) -> float:
        """Padding share of total storage."""
        return self.padding_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def bitmap_fraction(self) -> float:
        """Snapshot-bitmap share of total storage."""
        return self.bitmap_bytes / self.total_bytes if self.total_bytes else 0.0

    def merge(self, other: "StorageBreakdown") -> "StorageBreakdown":
        """Sum two breakdowns (for multi-table totals)."""
        return StorageBreakdown(
            self.data_bytes + other.data_bytes,
            self.padding_bytes + other.padding_bytes,
            self.bitmap_bytes + other.bitmap_bytes,
        )


def storage_breakdown(
    layout: UnifiedLayout,
    num_rows: int,
    delta_fraction: float = 0.1,
) -> StorageBreakdown:
    """Compute the storage breakdown of a table under ``layout``.

    The delta region is sized as ``delta_fraction`` of the data region.
    Snapshot bitmaps hold one bit per data row and one per delta row, and
    every device of the rank keeps a copy (§5.2), so the bitmap costs
    ``d`` bits per region row.
    """
    if num_rows < 0:
        raise LayoutError("num_rows must be non-negative")
    if not 0.0 <= delta_fraction:
        raise LayoutError("delta_fraction must be non-negative")
    delta_rows = int(num_rows * delta_fraction)
    region_rows = num_rows + delta_rows
    data = region_rows * layout.useful_bytes_per_row()
    padding = region_rows * layout.padding_bytes_per_row()
    bitmap_bits = region_rows * layout.num_devices
    return StorageBreakdown(data, padding, ceil_div(bitmap_bits, 8))
