"""Block-circulant data placement (§4.2, Fig. 5).

Rows are grouped into blocks of ``block_rows`` (B = 1024 in the paper).
Within block ``b`` the device slots of every part are rotated by ``b mod
d``: slot ``i`` of a row in block ``b`` is stored on device ``(i + b) mod
d``. Every column is thereby spread evenly over all devices, so scanning
any single column keeps every PIM unit busy instead of hammering one
"hotspot" device (Fig. 5a vs. 5b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LayoutError
from repro.units import ceil_div

__all__ = ["BlockCirculantPlacement"]


@dataclass(frozen=True)
class BlockCirculantPlacement:
    """Maps (row, slot) to a physical device with per-block rotation.

    ``block_rows`` should at least cover a DRAM row buffer so scans keep a
    high row-hit rate (§4.2); the paper uses 1024.
    """

    num_devices: int
    block_rows: int = 1024
    #: Disable to get the naive placement of Fig. 5a (each column pinned
    #: to one device) — the ablation baseline.
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise LayoutError("num_devices must be positive")
        if self.block_rows <= 0:
            raise LayoutError("block_rows must be positive")

    def block_of(self, row: int) -> int:
        """Block index containing ``row``."""
        self._check_row(row)
        return row // self.block_rows

    def rotation(self, row: int) -> int:
        """Rotation applied to the row's block."""
        return self.rotation_of_block(self.block_of(row))

    def rotation_of_block(self, block: int) -> int:
        """Rotation applied to a block index (0 when disabled)."""
        if block < 0:
            raise LayoutError(f"negative block {block}")
        return block % self.num_devices if self.enabled else 0

    def device_for(self, row: int, slot_index: int) -> int:
        """Physical device storing slot ``slot_index`` of ``row``."""
        self._check_slot(slot_index)
        return (slot_index + self.rotation(row)) % self.num_devices

    def slot_for(self, row: int, device: int) -> int:
        """Inverse of :meth:`device_for`."""
        self._check_slot(device)
        return (device - self.rotation(row)) % self.num_devices

    def row_in_block(self, row: int) -> int:
        """Offset of ``row`` within its block."""
        self._check_row(row)
        return row % self.block_rows

    def scan_parallelism(self, num_rows: int) -> float:
        """Fraction of devices kept busy when scanning one column.

        Without rotation a column lives on one device (1/d); with
        block-circulant placement a scan over ``num_rows`` rows touches
        ``min(d, num_blocks)`` devices.
        """
        if num_rows <= 0:
            return 0.0
        if not self.enabled:
            return 1.0 / self.num_devices
        blocks = ceil_div(num_rows, self.block_rows)
        return min(self.num_devices, blocks) / self.num_devices

    def _check_row(self, row: int) -> None:
        if row < 0:
            raise LayoutError(f"negative row {row}")

    def _check_slot(self, index: int) -> None:
        if index < 0 or index >= self.num_devices:
            raise LayoutError(
                f"slot/device index {index} out of range [0, {self.num_devices})"
            )
