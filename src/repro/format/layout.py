"""Layout descriptors for the unified data storage format.

A layout (Fig. 3c) divides a table into *parts*. Each part spans all ``d``
devices of a rank; within a part every device holds one *slot* of
``row_width`` bytes per row, so a row occupies ``d × row_width`` bytes per
part, aligned to the ADE dimension. Columns are placed into slots as
:class:`FieldPlacement` byte runs:

* **key columns** (scanned by analytical queries) are indivisible — the
  whole column occupies one contiguous run in one slot, so a PIM unit can
  stream it;
* **normal columns** may be split byte-wise across slots and parts
  (observation 2 of §4.1.2).

:class:`UnifiedLayout` validates the invariants and implements row
packing/unpacking — the "data re-layout" function of §6.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import LayoutError
from repro.format.schema import TableSchema, Value

__all__ = ["FieldPlacement", "DeviceSlot", "TablePart", "UnifiedLayout", "ColumnRun"]


@dataclass(frozen=True)
class FieldPlacement:
    """A run of ``length`` bytes of ``column`` placed inside a slot.

    ``col_offset`` is the first byte of the column covered by this run;
    ``slot_offset`` is where the run starts within the device slot.
    """

    column: str
    col_offset: int
    slot_offset: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise LayoutError(f"placement of {self.column!r} has non-positive length")
        if self.col_offset < 0 or self.slot_offset < 0:
            raise LayoutError(f"placement of {self.column!r} has negative offset")


@dataclass(frozen=True)
class DeviceSlot:
    """One device's per-row byte slot within a part."""

    slot_index: int
    fields: Tuple[FieldPlacement, ...] = ()

    def used_bytes(self) -> int:
        """Number of data bytes (non-padding) in this slot."""
        return sum(f.length for f in self.fields)


@dataclass(frozen=True)
class TablePart:
    """A part of the table: ``d`` slots of ``row_width`` bytes each."""

    index: int
    row_width: int
    slots: Tuple[DeviceSlot, ...]

    def __post_init__(self) -> None:
        if self.row_width <= 0:
            raise LayoutError(f"part {self.index} row_width must be positive")
        for slot in self.slots:
            end = max((f.slot_offset + f.length for f in slot.fields), default=0)
            if end > self.row_width:
                raise LayoutError(
                    f"part {self.index} slot {slot.slot_index} overflows "
                    f"row_width {self.row_width}"
                )
            occupied = bytearray(self.row_width)
            for f in slot.fields:
                for b in range(f.slot_offset, f.slot_offset + f.length):
                    if occupied[b]:
                        raise LayoutError(
                            f"part {self.index} slot {slot.slot_index} has "
                            f"overlapping placements at byte {b}"
                        )
                    occupied[b] = 1

    @property
    def num_slots(self) -> int:
        """Number of device slots (equals devices per rank)."""
        return len(self.slots)

    def used_bytes(self) -> int:
        """Data bytes (non-padding) per row in this part."""
        return sum(s.used_bytes() for s in self.slots)

    def padding_bytes(self) -> int:
        """Padding bytes per row in this part."""
        return self.num_slots * self.row_width - self.used_bytes()

    def bytes_per_row(self) -> int:
        """Total stored bytes per row in this part (incl. padding)."""
        return self.num_slots * self.row_width


@dataclass(frozen=True)
class ColumnRun:
    """Where one byte-run of a column lives: ``(part, slot, placement)``."""

    part_index: int
    slot_index: int
    placement: FieldPlacement


class UnifiedLayout:
    """A complete unified-format layout of one table.

    Validates that every byte of every column is placed exactly once and
    that key columns are contiguous within a single slot, then provides
    packing (row dict → per-part device slot bytes) and unpacking.
    """

    def __init__(
        self,
        schema: TableSchema,
        parts: Sequence[TablePart],
        key_columns: Sequence[str],
        num_devices: int,
    ) -> None:
        self.schema = schema
        self.parts: Tuple[TablePart, ...] = tuple(parts)
        self.key_columns: Tuple[str, ...] = tuple(key_columns)
        self.num_devices = num_devices
        self._runs: Dict[str, List[ColumnRun]] = {c.name: [] for c in schema}
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for key in self.key_columns:
            if not self.schema.has_column(key):
                raise LayoutError(f"key column {key!r} not in schema {self.schema.name!r}")
        for part in self.parts:
            if part.num_slots != self.num_devices:
                raise LayoutError(
                    f"part {part.index} has {part.num_slots} slots, "
                    f"expected {self.num_devices}"
                )
            for slot in part.slots:
                for placement in slot.fields:
                    if not self.schema.has_column(placement.column):
                        raise LayoutError(
                            f"placement references unknown column {placement.column!r}"
                        )
                    self._runs[placement.column].append(
                        ColumnRun(part.index, slot.slot_index, placement)
                    )
        for col in self.schema:
            runs = self._runs[col.name]
            covered = bytearray(col.width)
            for run in runs:
                p = run.placement
                if p.col_offset + p.length > col.width:
                    raise LayoutError(
                        f"placement of {col.name!r} exceeds column width {col.width}"
                    )
                for b in range(p.col_offset, p.col_offset + p.length):
                    if covered[b]:
                        raise LayoutError(f"column {col.name!r} byte {b} placed twice")
                    covered[b] = 1
            if not all(covered):
                missing = [b for b in range(col.width) if not covered[b]]
                raise LayoutError(f"column {col.name!r} bytes {missing} unplaced")
        for key in self.key_columns:
            runs = self._runs[key]
            if len(runs) != 1:
                raise LayoutError(
                    f"key column {key!r} must be one contiguous run, got {len(runs)}"
                )
        # Runs are immutable after validation; sort them once so the hot
        # per-row read path doesn't re-sort on every column_runs() call.
        for runs in self._runs.values():
            runs.sort(key=lambda r: r.placement.col_offset)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def column_runs(self, name: str) -> List[ColumnRun]:
        """All byte-runs of a column, in column-offset order.

        The returned list is the layout's cached copy — treat it as
        read-only.
        """
        runs = self._runs.get(name)
        if runs is None:
            raise LayoutError(f"unknown column {name!r}")
        return runs

    def key_column_location(self, name: str) -> ColumnRun:
        """The single run of a key column."""
        if name not in self.key_columns:
            raise LayoutError(f"{name!r} is not a key column")
        return self.column_runs(name)[0]

    def part_of_key_column(self, name: str) -> TablePart:
        """The part holding a key column."""
        return self.parts[self.key_column_location(name).part_index]

    @property
    def num_parts(self) -> int:
        """Number of parts in the layout."""
        return len(self.parts)

    def bytes_per_row(self) -> int:
        """Total stored bytes per row, including padding."""
        return sum(p.bytes_per_row() for p in self.parts)

    def useful_bytes_per_row(self) -> int:
        """Data bytes per row (equals the schema row size)."""
        return self.schema.row_bytes

    def padding_bytes_per_row(self) -> int:
        """Padding bytes per row across all parts."""
        return self.bytes_per_row() - self.useful_bytes_per_row()

    def padding_fraction(self) -> float:
        """Padding bytes as a fraction of stored bytes."""
        stored = self.bytes_per_row()
        return self.padding_bytes_per_row() / stored if stored else 0.0

    # ------------------------------------------------------------------
    # Packing / unpacking (the data re-layout function, §6.3)
    # ------------------------------------------------------------------
    def pack_row(self, values: Dict[str, Value]) -> List[List[np.ndarray]]:
        """Pack a row dict into per-part, per-slot byte arrays.

        Returns ``out[part][slot]`` — an array of ``row_width`` bytes for
        every device slot, padding bytes zeroed.
        """
        encoded = self.schema.encode_row(values)
        out: List[List[np.ndarray]] = []
        for part in self.parts:
            slots: List[np.ndarray] = []
            for slot in part.slots:
                buf = np.zeros(part.row_width, dtype=np.uint8)
                for f in slot.fields:
                    chunk = encoded[f.column][f.col_offset : f.col_offset + f.length]
                    buf[f.slot_offset : f.slot_offset + f.length] = np.frombuffer(
                        chunk, dtype=np.uint8
                    )
                slots.append(buf)
            out.append(slots)
        return out

    def unpack_row(self, packed: Sequence[Sequence[np.ndarray]]) -> Dict[str, Value]:
        """Inverse of :meth:`pack_row`."""
        if len(packed) != self.num_parts:
            raise LayoutError(
                f"expected {self.num_parts} parts, got {len(packed)}"
            )
        raw: Dict[str, bytearray] = {
            c.name: bytearray(c.width) for c in self.schema
        }
        for part, slots in zip(self.parts, packed):
            if len(slots) != part.num_slots:
                raise LayoutError(
                    f"part {part.index}: expected {part.num_slots} slots, "
                    f"got {len(slots)}"
                )
            for slot, buf in zip(part.slots, slots):
                arr = np.asarray(buf, dtype=np.uint8)
                if len(arr) != part.row_width:
                    raise LayoutError(
                        f"part {part.index} slot {slot.slot_index}: expected "
                        f"{part.row_width} bytes, got {len(arr)}"
                    )
                for f in slot.fields:
                    raw[f.column][f.col_offset : f.col_offset + f.length] = arr[
                        f.slot_offset : f.slot_offset + f.length
                    ].tobytes()
        return {
            c.name: c.decode(bytes(raw[c.name])) for c in self.schema
        }

    def describe(self) -> Dict:
        """Structured description of the layout (for tooling/inspection).

        Returns a plain-dict tree: per part, per slot, the placed byte
        runs — the same information Fig. 3c/Fig. 4 draw.
        """
        return {
            "table": self.schema.name,
            "num_devices": self.num_devices,
            "key_columns": list(self.key_columns),
            "bytes_per_row": self.bytes_per_row(),
            "padding_bytes_per_row": self.padding_bytes_per_row(),
            "parts": [
                {
                    "index": part.index,
                    "row_width": part.row_width,
                    "slots": [
                        {
                            "slot": slot.slot_index,
                            "fields": [
                                {
                                    "column": f.column,
                                    "col_offset": f.col_offset,
                                    "slot_offset": f.slot_offset,
                                    "length": f.length,
                                }
                                for f in slot.fields
                            ],
                        }
                        for slot in part.slots
                    ],
                }
                for part in self.parts
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        widths = [p.row_width for p in self.parts]
        return (
            f"UnifiedLayout(table={self.schema.name!r}, parts={widths}, "
            f"keys={len(self.key_columns)})"
        )
