"""Naïve aligned format (§4.1.1, Fig. 3b).

Columns are grouped in schema order into parts of ``d`` columns (one column
per device slot); every slot of a part is padded to the width of the part's
widest column. All rows and columns are hardware-aligned, but padding
wastes both capacity and CPU/PIM bandwidth — the problem the compact
aligned format (``repro.format.binpack``) solves.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import LayoutError
from repro.format.layout import DeviceSlot, FieldPlacement, TablePart, UnifiedLayout
from repro.format.schema import TableSchema

__all__ = ["naive_aligned_layout"]


def naive_aligned_layout(
    schema: TableSchema,
    num_devices: int,
    key_columns: Sequence[str] = (),
) -> UnifiedLayout:
    """Generate the naïve aligned format for ``schema``.

    Every column is placed unsplit in its own device slot, in schema
    order, ``num_devices`` columns per part. ``key_columns`` defaults to
    *all* columns (the conservative choice the paper's "ALL" subset
    degrades to); pass a subset to keep the bookkeeping consistent with a
    specific workload.
    """
    if num_devices <= 0:
        raise LayoutError("num_devices must be positive")
    columns = list(schema)
    keys = tuple(key_columns) if key_columns else tuple(schema.column_names)

    parts: List[TablePart] = []
    for part_index, start in enumerate(range(0, len(columns), num_devices)):
        group = columns[start : start + num_devices]
        width = max(c.width for c in group)
        slots: List[DeviceSlot] = []
        for slot_index in range(num_devices):
            if slot_index < len(group):
                col = group[slot_index]
                slots.append(
                    DeviceSlot(slot_index, (FieldPlacement(col.name, 0, 0, col.width),))
                )
            else:
                slots.append(DeviceSlot(slot_index))
        parts.append(TablePart(part_index, width, tuple(slots)))
    return UnifiedLayout(schema, parts, keys, num_devices)
