"""Compact aligned format generation — the bin-packing strategy of Fig. 4.

The generator builds the table's parts iteratively:

1. Start a new part with the widest remaining *key column*; its width
   becomes the part's ``row_width`` W.
2. Pack further device slots with remaining key columns whose width is at
   least ``th · W`` (the threshold trade-off of §4.1.2) — narrower keys
   wait for a later, narrower part rather than waste PIM bandwidth. A
   slot may hold several key columns when they fit (each stays
   contiguous, so PIM scans stream them at ``width / W`` efficiency).
3. Fill every remaining byte (empty slots and slot tails) with *normal
   column* bytes, which may be split arbitrarily.
4. If normal bytes run out while slots still have free space, remaining
   key columns that fit are pulled in regardless of ``th``: storing a
   narrow key at reduced PIM efficiency beats storing zeros — this is why
   the paper reports *negligible* padding (Fig. 8b) yet 97.4 % rather
   than 100 % PIM bandwidth at th = 0.6.

Once all key columns are placed, leftover normal bytes are packed into
dense normal-only parts. Normal columns are kept in maximal contiguous
runs so the CPU re-layout stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import LayoutError
from repro.format.layout import DeviceSlot, FieldPlacement, TablePart, UnifiedLayout
from repro.format.schema import Column, TableSchema
from repro.units import ceil_div

__all__ = ["compact_aligned_layout", "compact_aligned_layout_with_report", "BinPackReport"]

#: Cap on the row width of normal-only parts. CPU cost per row is
#: ``ceil(W / 8)`` interleaved bursts either way, so wide normal parts
#: cost the CPU the same as several 8 B parts while keeping the part
#: count (and per-part bookkeeping) low; they also give defragmentation
#: its wide-row regime (§5.3's Eq. 3 favours PIM movement above ~16 B;
#: §7.4 reports part widths "from 2 bytes to over 20 bytes").
_MAX_NORMAL_PART_WIDTH = 32


@dataclass
class _Segment:
    """A not-yet-placed contiguous byte run of a normal column."""

    column: str
    col_offset: int
    length: int


@dataclass
class _SlotBuilder:
    """Mutable slot under construction."""

    slot_index: int
    width: int
    fields: List[FieldPlacement]
    offset: int = 0

    @property
    def free(self) -> int:
        return self.width - self.offset

    def place_key(self, key: Column) -> None:
        self.fields.append(FieldPlacement(key.name, 0, self.offset, key.width))
        self.offset += key.width

    def build(self) -> DeviceSlot:
        return DeviceSlot(self.slot_index, tuple(self.fields))


@dataclass(frozen=True)
class BinPackReport:
    """Statistics describing a generated compact aligned layout."""

    th: float
    num_parts: int
    key_parts: int
    normal_parts: int
    padding_bytes_per_row: int
    stored_bytes_per_row: int
    relaxed_keys: Tuple[str, ...] = ()

    @property
    def padding_fraction(self) -> float:
        """Padding as a fraction of stored bytes."""
        if self.stored_bytes_per_row == 0:
            return 0.0
        return self.padding_bytes_per_row / self.stored_bytes_per_row


def compact_aligned_layout(
    schema: TableSchema,
    key_columns: Sequence[str],
    num_devices: int,
    th: float,
    leftover: str = "pad",
) -> UnifiedLayout:
    """Generate the compact aligned format for ``schema``.

    ``key_columns`` are the columns scanned by the analytical workload
    (they stay indivisible and contiguous within one slot); ``th`` ∈
    [0, 1] is the width-ratio threshold controlling the PIM/CPU
    bandwidth trade-off. ``leftover`` picks the step-4 policy: ``"pad"``
    (default) keeps the th guarantee and zero-pads unfillable slots, as
    the paper's own Fig. 4 example does; ``"absorb"`` pulls remaining key
    columns into leftover space regardless of th, trading PIM efficiency
    for storage (the Fig. 8b padding-minimizing variant).
    """
    layout, _ = compact_aligned_layout_with_report(
        schema, key_columns, num_devices, th, leftover
    )
    return layout


def compact_aligned_layout_with_report(
    schema: TableSchema,
    key_columns: Sequence[str],
    num_devices: int,
    th: float,
    leftover: str = "pad",
) -> Tuple[UnifiedLayout, BinPackReport]:
    """Like :func:`compact_aligned_layout`, also returning statistics."""
    if leftover not in ("pad", "absorb"):
        raise LayoutError(f"unknown leftover policy {leftover!r}")
    if not 0.0 <= th <= 1.0:
        raise LayoutError(f"threshold th must be in [0, 1], got {th}")
    if num_devices <= 0:
        raise LayoutError("num_devices must be positive")
    key_set = set(key_columns)
    unknown = key_set - set(schema.column_names)
    if unknown:
        raise LayoutError(f"unknown key columns {sorted(unknown)}")

    # Widest-first, ties broken by schema order for determinism.
    order = {c.name: i for i, c in enumerate(schema)}
    keys: List[Column] = sorted(
        (schema.column(n) for n in dict.fromkeys(key_columns)),
        key=lambda c: (-c.width, order[c.name]),
    )
    segments: List[_Segment] = [
        _Segment(c.name, 0, c.width) for c in schema if c.name not in key_set
    ]

    parts: List[TablePart] = []
    key_parts = 0
    relaxed: List[str] = []
    while keys:
        parts.append(
            _build_key_part(
                len(parts), keys, segments, num_devices, th, relaxed, leftover
            )
        )
        key_parts += 1
    while segments:
        parts.append(_build_normal_part(len(parts), segments, num_devices))

    layout = UnifiedLayout(schema, parts, tuple(dict.fromkeys(key_columns)), num_devices)
    report = BinPackReport(
        th=th,
        num_parts=len(parts),
        key_parts=key_parts,
        normal_parts=len(parts) - key_parts,
        padding_bytes_per_row=layout.padding_bytes_per_row(),
        stored_bytes_per_row=layout.bytes_per_row(),
        relaxed_keys=tuple(relaxed),
    )
    return layout, report


def _build_key_part(
    part_index: int,
    keys: List[Column],
    segments: List[_Segment],
    num_devices: int,
    th: float,
    relaxed: List[str],
    leftover: str = "pad",
) -> TablePart:
    """Build one part anchored on the widest remaining key column."""
    anchor = keys.pop(0)
    width = anchor.width
    builders = [_SlotBuilder(i, width, []) for i in range(num_devices)]
    builders[0].place_key(anchor)
    # Step 2: pack qualifying key columns densely into the slots.
    for builder in builders:
        while True:
            key = _pop_key(keys, builder.free, min_width=th * width)
            if key is None:
                break
            builder.place_key(key)
    # Step 3: fill remaining bytes with normal column bytes.
    for builder in builders:
        if builder.free > 0 and segments:
            taken = _take_segments(segments, builder.free, builder.offset)
            builder.fields.extend(taken)
            builder.offset += sum(f.length for f in taken)
    # Step 4 (optional policy): normals exhausted — absorb leftover keys
    # rather than pad, forfeiting the th guarantee for those keys.
    if leftover == "absorb" and not segments:
        for builder in builders:
            while builder.free > 0:
                key = _pop_key(keys, builder.free, min_width=0.0)
                if key is None:
                    break
                relaxed.append(key.name)
                builder.place_key(key)
    return TablePart(part_index, width, tuple(b.build() for b in builders))


def _build_normal_part(
    part_index: int, segments: List[_Segment], num_devices: int
) -> TablePart:
    """Build a dense part holding only normal-column bytes."""
    remaining = sum(s.length for s in segments)
    width = min(_MAX_NORMAL_PART_WIDTH, max(1, ceil_div(remaining, num_devices)))
    slots: List[DeviceSlot] = []
    for slot_index in range(num_devices):
        fields = _take_segments(segments, width, base_offset=0)
        slots.append(DeviceSlot(slot_index, tuple(fields)))
    return TablePart(part_index, width, tuple(slots))


def _pop_key(keys: List[Column], free: int, min_width: float) -> Optional[Column]:
    """Pop the widest key that fits in ``free`` bytes and meets ``min_width``."""
    for i, key in enumerate(keys):
        if key.width <= free and key.width >= min_width:
            return keys.pop(i)
    return None


def _take_segments(
    segments: List[_Segment], free: int, base_offset: int
) -> List[FieldPlacement]:
    """Consume up to ``free`` bytes of normal-column segments.

    Segments are consumed front-to-back, splitting the last one if it does
    not fit, so each column stays in as few runs as possible.
    """
    placements: List[FieldPlacement] = []
    offset = base_offset
    while free > 0 and segments:
        seg = segments[0]
        take = min(seg.length, free)
        placements.append(FieldPlacement(seg.column, seg.col_offset, offset, take))
        offset += take
        free -= take
        if take == seg.length:
            segments.pop(0)
        else:
            seg.col_offset += take
            seg.length -= take
    return placements
