"""Plain-text table rendering for benchmark/experiment output.

Benchmarks print the same rows/series the paper's figures report;
:func:`format_table` keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_percent", "format_time_ns"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an aligned ASCII table with a header rule."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    rule = "  ".join("-" * w for w in widths)
    return "\n".join([line(list(headers)), rule] + [line(row) for row in materialized])


def format_percent(fraction: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{fraction * 100:.{digits}f}%"


def format_time_ns(time_ns: float) -> str:
    """Format a nanosecond duration with an adaptive unit."""
    if time_ns >= 1e9:
        return f"{time_ns / 1e9:.3f} s"
    if time_ns >= 1e6:
        return f"{time_ns / 1e6:.3f} ms"
    if time_ns >= 1e3:
        return f"{time_ns / 1e3:.3f} us"
    return f"{time_ns:.1f} ns"
