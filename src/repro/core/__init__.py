"""PUSHtap core: configuration, engine, snapshotting, defragmentation."""
