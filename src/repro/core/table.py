"""Per-table runtime bundle: layout + storage + MVCC + snapshots.

A :class:`TableRuntime` is the unit both engines operate on. OLTP reads
and writes rows through MVCC refs; OLAP scans regions under the current
snapshot. The bundle also exposes the row-count bookkeeping operators
need (:meth:`TableRuntime.region_rows`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

from repro import perf
from repro.core.snapshot import SnapshotManager
from repro.core.storage import TableStorage
from repro.errors import TransactionError
from repro.format.layout import UnifiedLayout
from repro.format.schema import TableSchema, Value
from repro.mvcc.manager import MVCCManager
from repro.mvcc.metadata import RowRef
from repro.olap.operators import RegionRows

__all__ = ["TableRuntime"]


@dataclass
class TableRuntime:
    """Everything one table needs at runtime.

    ``units`` are the PIM units of the rank holding this table (set by
    the engine; None means "use the OLAP engine's default rank"), and
    ``rank_index`` records which simulated rank that is.
    """

    name: str
    schema: TableSchema
    layout: UnifiedLayout
    storage: TableStorage
    mvcc: MVCCManager
    snapshots: SnapshotManager
    units: Optional[Dict] = None
    rank_index: int = 0

    @property
    def num_rows(self) -> int:
        """Live logical rows (including inserts)."""
        return self.mvcc.num_rows

    def region_rows(self) -> RegionRows:
        """Row extents OLAP scans must cover."""
        return RegionRows(
            data_rows=self.mvcc.num_rows,
            delta_rows=self.mvcc.delta.high_water_rows,
        )

    # ------------------------------------------------------------------
    # Row access through MVCC
    # ------------------------------------------------------------------
    def read_row(
        self, row_id: int, ts: int, columns: Optional[Sequence[str]] = None
    ) -> Dict[str, Value]:
        """Read the version of ``row_id`` visible at ``ts``.

        With ``columns``, only those columns are read and decoded (the
        storage layer's partial-read fast path).
        """
        return self.storage.read_row(self.mvcc.read(row_id, ts), columns)

    def read_rows(
        self, row_ids: Sequence[int], ts: int, columns: Optional[Sequence[str]] = None
    ) -> list:
        """Read the versions of many rows visible at ``ts`` (batched).

        Equivalent to calling :meth:`read_row` per id in order; the MVCC
        visibility of the whole batch is array-resolved in one packed
        index pass (:meth:`~repro.mvcc.manager.MVCCManager.read_many`).
        """
        return [
            self.storage.read_row(ref, columns)
            for ref in self.mvcc.read_many(row_ids, ts)
        ]

    def update_row(self, row_id: int, ts: int, changes: Dict[str, Value]) -> RowRef:
        """Install a new version of ``row_id`` with ``changes`` applied.

        The vectorized fast path copies the newest version's raw bytes to
        the new delta row (same rotation by construction) and rewrites
        only the changed columns' byte runs — bit-identical device bytes
        to the naive decode-merge-reencode, since padding is already
        zeroed and unchanged columns round-trip exactly. Failure ordering
        matches the naive path: unknown columns raise before the MVCC
        install, encode errors after it.
        """
        if not perf.vectorized():
            current = self.storage.read_row(self.mvcc.newest_ref(row_id))
            unknown = [c for c in changes if not self.schema.has_column(c)]
            if unknown:
                raise TransactionError(f"table {self.name!r} has no columns {unknown}")
            current.update(changes)
            ref = self.mvcc.update(row_id, ts)
            self.storage.write_row(ref, current)
            return ref
        src = self.mvcc.newest_ref(row_id)
        unknown = [c for c in changes if not self.schema.has_column(c)]
        if unknown:
            raise TransactionError(f"table {self.name!r} has no columns {unknown}")
        ref = self.mvcc.update(row_id, ts)
        if ref != src:
            self.storage.copy_row(src, ref)
        self.storage.write_columns(ref, changes)
        return ref

    def insert_row(self, ts: int, values: Dict[str, Value]) -> int:
        """Append a new row; returns its row id."""
        row_id, ref = self.mvcc.insert(ts)
        self.storage.write_row(ref, values)
        return row_id

    def load_rows(self, rows: Iterable[Dict[str, Value]]) -> int:
        """Bulk-load initial rows into the data region (pre-MVCC).

        Rows must already be accounted in the MVCC manager's
        ``initial_rows``; this writes their bytes in order.
        """
        count = 0
        for row_id, values in enumerate(rows):
            self.storage.write_row(RowRef("data", row_id), values)
            count += 1
        if count > self.mvcc.num_rows:
            raise TransactionError(
                f"loaded {count} rows but table was sized for {self.mvcc.num_rows}"
            )
        return count
