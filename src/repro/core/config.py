"""System configuration — the reproduction of the paper's Table 1.

Every experiment instantiates a :class:`SystemConfig`, usually via the
factory functions :func:`dimm_system` (the paper's default DIMM-based PIM
server) or :func:`hbm_system` (the HBM-based comparison system from
Section 7.3). All timing values come verbatim from Table 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.units import KIB, US, gb_per_s

__all__ = [
    "DRAMTimings",
    "DeviceGeometry",
    "PIMUnitConfig",
    "CPUConfig",
    "SystemConfig",
    "AreaModel",
    "DDR5_3200_TIMINGS",
    "HBM3_TIMINGS",
    "LPDDR5X_8533_TIMINGS",
    "dimm_system",
    "hbm_system",
    "lpddr5x_system",
]


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class DRAMTimings:
    """DRAM timing parameters in nanoseconds (Table 1).

    Attribute names follow the JEDEC-style parameter names used in the
    paper: ``tBURST`` is the data-burst time of one access, ``tRCD`` the
    activate-to-read delay, ``tCL`` the CAS latency, and so on.
    """

    tBURST: float
    tRCD: float
    tCL: float
    tRP: float
    tRAS: float
    tRRD: float
    tRFC: float
    tWR: float
    tWTR: float
    tRTP: float
    tRTW: float
    tCS: float
    tREFI: float

    def __post_init__(self) -> None:
        for name in (
            "tBURST", "tRCD", "tCL", "tRP", "tRAS", "tRRD", "tRFC",
            "tWR", "tWTR", "tRTP", "tRTW", "tCS", "tREFI",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")
        # These two appear as divisors/steps in the analytic model and
        # would produce zero-time streams or a divide-by-zero refresh
        # penalty if allowed to be zero.
        if self.tBURST <= 0:
            raise ConfigError(f"tBURST must be positive, got {self.tBURST}")
        if self.tREFI <= 0:
            raise ConfigError(f"tREFI must be positive, got {self.tREFI}")

    def row_hit_read_latency(self) -> float:
        """Latency of a read that hits the open row buffer."""
        return self.tCL + self.tBURST

    def row_miss_read_latency(self) -> float:
        """Latency of a read to a closed bank (activate + read)."""
        return self.tRCD + self.tCL + self.tBURST

    def row_conflict_read_latency(self) -> float:
        """Latency of a read that must close another open row first."""
        return self.tRP + self.tRCD + self.tCL + self.tBURST

    def refresh_utilization_penalty(self) -> float:
        """Fraction of time the DRAM is unavailable due to refresh."""
        return self.tRFC / self.tREFI


#: DDR5-3200 timings from Table 1 (DIMM-based PIM system).
DDR5_3200_TIMINGS = DRAMTimings(
    tBURST=2.5,
    tRCD=7.5,
    tCL=7.5,
    tRP=7.5,
    tRAS=16.3,
    tRRD=2.5,
    tRFC=121.9,
    tWR=15.0,
    tWTR=11.2,
    tRTP=3.75,
    tRTW=4.4,
    tCS=4.4,
    tREFI=3_900.0,
)

#: HBM3-2Gbps timings from Table 1 (HBM-based comparison system).
HBM3_TIMINGS = DRAMTimings(
    tBURST=2.0,
    tRCD=3.5,
    tCL=3.5,
    tRP=3.5,
    tRAS=8.5,
    tRRD=2.0,
    tRFC=175.0,
    tWR=4.0,
    tWTR=1.5,
    tRTP=1.0,
    tRTW=1.5,
    tCS=1.5,
    tREFI=2_000.0,
)

#: LPDDR5X-8533 timings for a mobile-class PIM stack, per the LP5X-PIM
#: Sim tech note (PAPERS.md). LPDDR5X trades latency for pin bandwidth
#: and power: BL32 on a x16 device gives a long burst, activate/precharge
#: are roughly 2x DDR5, and all-bank refresh is amortised over the
#: standard 3.9 us interval.
LPDDR5X_8533_TIMINGS = DRAMTimings(
    tBURST=3.75,
    tRCD=18.0,
    tCL=17.0,
    tRP=18.0,
    tRAS=42.0,
    tRRD=7.5,
    tRFC=210.0,
    tWR=34.0,
    tWTR=12.0,
    tRTP=7.5,
    tRTW=4.0,
    tCS=2.0,
    tREFI=3_906.0,
)


@dataclass(frozen=True)
class DeviceGeometry:
    """Geometry of one memory rank and its sub-modules.

    ``devices_per_rank`` is the number of DRAM chips in a rank (the ADE
    dimension the CPU interleaves across); ``interleave_granularity`` is
    the number of bytes each device contributes to one interleaved burst
    (8 B for DIMM per the DDR protocol, 64 B for HBM per Section 8).
    """

    devices_per_rank: int = 8
    banks_per_device: int = 8
    rows_per_bank: int = 131_072
    columns_per_row: int = 1024
    interleave_granularity: int = 8
    row_buffer_bytes: int = 1024

    def __post_init__(self) -> None:
        if self.devices_per_rank <= 0:
            raise ConfigError("devices_per_rank must be positive")
        if self.banks_per_device <= 0:
            raise ConfigError("banks_per_device must be positive")
        if self.rows_per_bank <= 0:
            raise ConfigError("rows_per_bank must be positive")
        if self.columns_per_row <= 0:
            raise ConfigError("columns_per_row must be positive")
        # Address interleaving and row-buffer indexing both use these as
        # power-of-two strides (byte_address // row_buffer_bytes etc.).
        if not _is_power_of_two(self.interleave_granularity):
            raise ConfigError(
                "interleave_granularity must be a positive power of two, "
                f"got {self.interleave_granularity}"
            )
        if not _is_power_of_two(self.row_buffer_bytes):
            raise ConfigError(
                "row_buffer_bytes must be a positive power of two, "
                f"got {self.row_buffer_bytes}"
            )

    @property
    def cache_line_bytes(self) -> int:
        """Bytes delivered by one interleaved burst across the rank."""
        return self.devices_per_rank * self.interleave_granularity

    @property
    def device_bytes(self) -> int:
        """Capacity of one device (chip)."""
        return self.banks_per_device * self.rows_per_bank * self.columns_per_row

    @property
    def rank_bytes(self) -> int:
        """Capacity of one rank."""
        return self.device_bytes * self.devices_per_rank


@dataclass(frozen=True)
class PIMUnitConfig:
    """Configuration of one PIM unit (Table 1, PIM Units block)."""

    frequency_mhz: float = 500.0
    tasklets: int = 16
    dram_bandwidth: float = gb_per_s(1.0)
    wram_bytes: int = 64 * KIB
    wire_width_bits: int = 64
    units_per_rank: int = 64

    def __post_init__(self) -> None:
        if self.wram_bytes <= 0:
            raise ConfigError("wram_bytes must be positive")
        if self.tasklets <= 0:
            raise ConfigError("tasklets must be positive")

    @property
    def cycle_ns(self) -> float:
        """Duration of one PIM clock cycle in nanoseconds."""
        return 1_000.0 / self.frequency_mhz

    @property
    def load_buffer_bytes(self) -> int:
        """WRAM bytes available for staged data (half of WRAM, §6.2)."""
        return self.wram_bytes // 2

    @property
    def access_granularity(self) -> int:
        """Minimum DRAM access size of a PIM unit (64-bit wire → 8 B)."""
        return self.wire_width_bits // 8


@dataclass(frozen=True)
class CPUConfig:
    """Host CPU configuration (Table 1, Host CPU block)."""

    cores: int = 16
    frequency_ghz: float = 3.2
    l1i_bytes: int = 32 * KIB
    l1d_bytes: int = 32 * KIB
    l2_bytes: int = 1 * KIB * KIB
    l3_bytes: int = 22 * KIB * KIB
    cache_line_bytes: int = 64

    @property
    def cycle_ns(self) -> float:
        """Duration of one CPU clock cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz


@dataclass(frozen=True)
class SystemConfig:
    """Full system configuration tying the pieces together.

    ``pim_channels``/``pim_ranks_per_channel`` describe the PIM-enabled
    memory; a matching amount of conventional DRAM backs the CPU-only
    space (Table 1, System Configuration block).
    """

    name: str = "dimm"
    memory_kind: str = "dimm"
    timings: DRAMTimings = DDR5_3200_TIMINGS
    geometry: DeviceGeometry = field(default_factory=DeviceGeometry)
    pim: PIMUnitConfig = field(default_factory=PIMUnitConfig)
    cpu: CPUConfig = field(default_factory=CPUConfig)
    channels: int = 4
    ranks_per_channel: int = 4
    #: Latency of handing over bank access control, per rank (§7.1).
    mode_switch_latency: float = 0.2 * US
    #: Per-PIM-unit invoke/poll message cost on the original architecture
    #: (thousands of units → tens of microseconds per offload, §2.1).
    unit_message_latency: float = 0.02 * US
    #: Latency of one launch/poll disguised memory access (PUSHtap, §6.1).
    controller_request_latency: float = 0.05 * US
    #: Peak CPU-side memory bandwidth per channel, bytes/ns.
    cpu_channel_bandwidth: float = gb_per_s(25.6)

    def __post_init__(self) -> None:
        if self.memory_kind not in ("dimm", "hbm", "lpddr5x"):
            raise ConfigError(f"unknown memory kind {self.memory_kind!r}")
        if self.channels <= 0 or self.ranks_per_channel <= 0:
            raise ConfigError("channels and ranks_per_channel must be positive")

    @property
    def total_ranks(self) -> int:
        """Number of PIM-enabled ranks in the system."""
        return self.channels * self.ranks_per_channel

    @property
    def total_pim_units(self) -> int:
        """Total PIM units across the system."""
        return self.total_ranks * self.pim.units_per_rank

    @property
    def total_pim_bandwidth(self) -> float:
        """Aggregate internal bandwidth of all PIM units, bytes/ns."""
        return self.total_pim_units * self.pim.dram_bandwidth

    @property
    def total_cpu_bandwidth(self) -> float:
        """Aggregate CPU-side memory bandwidth, bytes/ns."""
        return self.channels * self.cpu_channel_bandwidth

    def with_wram(self, wram_bytes: int) -> "SystemConfig":
        """Return a copy with a different WRAM size (Fig. 12b sweep)."""
        return replace(self, pim=replace(self.pim, wram_bytes=wram_bytes))


@dataclass(frozen=True)
class AreaModel:
    """Area overhead constants recorded from Section 7.6 of the paper.

    These come from the authors' Synopsys DC synthesis (TSMC 90 nm,
    2.4 GHz); we record them rather than re-derive them.
    """

    scheduler_mm2: float = 0.112
    polling_module_mm2: float = 0.003
    memory_controller_mm2: float = 13.0

    @property
    def total_added_mm2(self) -> float:
        """Total added area of the two new modules."""
        return self.scheduler_mm2 + self.polling_module_mm2

    @property
    def overhead_fraction(self) -> float:
        """Added area relative to the whole memory controller."""
        return self.total_added_mm2 / self.memory_controller_mm2


def dimm_system(**overrides) -> SystemConfig:
    """The paper's default DIMM-based PIM system (Table 1)."""
    return replace(SystemConfig(), **overrides) if overrides else SystemConfig()


def hbm_system(**overrides) -> SystemConfig:
    """The HBM-based comparison system (Table 1, HBM block).

    Only the PIM DRAM changes relative to the DIMM system: 32 channels of
    HBM3 with a 64 B interleave granularity (Section 8 discusses why the
    coarser granularity hurts small-column access). PIM units and the CPU
    side stay identical, and the total bank count matches the DIMM system.
    """
    geometry = DeviceGeometry(
        devices_per_rank=8,
        banks_per_device=8,
        rows_per_bank=32_768,
        columns_per_row=64,
        interleave_granularity=64,
        row_buffer_bytes=1024,
    )
    config = SystemConfig(
        name="hbm",
        memory_kind="hbm",
        timings=HBM3_TIMINGS,
        geometry=geometry,
        channels=32,
        ranks_per_channel=1,
        # Keep the total bank (= PIM unit) count equal to the DIMM system
        # (§7.1): 32 channels x 32 banks = 1024 units.
        pim=PIMUnitConfig(units_per_rank=32),
        cpu_channel_bandwidth=gb_per_s(51.2),
    )
    return replace(config, **overrides) if overrides else config


def lpddr5x_system(**overrides) -> SystemConfig:
    """A mobile-class LPDDR5X-PIM system (LP5X-PIM Sim tech note).

    LPDDR5X packages use fewer, wider devices (x16) with more banks per
    device; a 16 B interleave granularity matches the BL32 burst on the
    narrow channel. Fewer channels and a lower per-channel CPU bandwidth
    reflect the mobile memory subsystem. The total bank (= PIM unit)
    count per rank matches the DIMM system: 4 devices x 16 banks = 64.
    """
    geometry = DeviceGeometry(
        devices_per_rank=4,
        banks_per_device=16,
        rows_per_bank=65_536,
        columns_per_row=1024,
        interleave_granularity=16,
        row_buffer_bytes=2048,
    )
    config = SystemConfig(
        name="lpddr5x",
        memory_kind="lpddr5x",
        timings=LPDDR5X_8533_TIMINGS,
        geometry=geometry,
        channels=8,
        ranks_per_channel=2,
        pim=PIMUnitConfig(units_per_rank=64),
        cpu_channel_bandwidth=gb_per_s(17.1),
    )
    return replace(config, **overrides) if overrides else config
