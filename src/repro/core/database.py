"""Database bundle: tables, indexes, and the timestamp oracle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.table import TableRuntime
from repro.errors import SchemaError
from repro.mvcc.timestamps import TimestampOracle
from repro.oltp.index import HashIndex

__all__ = ["Database"]


@dataclass
class Database:
    """All runtime state of one database instance."""

    tables: Dict[str, TableRuntime] = field(default_factory=dict)
    indexes: Dict[str, HashIndex] = field(default_factory=dict)
    oracle: TimestampOracle = field(default_factory=TimestampOracle)

    def table(self, name: str) -> TableRuntime:
        """Look up a table runtime."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"database has no table {name!r}") from None

    def index(self, name: str) -> HashIndex:
        """Look up an index by name."""
        try:
            return self.indexes[name]
        except KeyError:
            raise SchemaError(f"database has no index {name!r}") from None

    def add_table(self, runtime: TableRuntime) -> None:
        """Register a table and create its primary-key index shell."""
        if runtime.name in self.tables:
            raise SchemaError(f"duplicate table {runtime.name!r}")
        self.tables[runtime.name] = runtime

    def add_index(self, index: HashIndex) -> None:
        """Register an index."""
        if index.name in self.indexes:
            raise SchemaError(f"duplicate index {index.name!r}")
        self.indexes[index.name] = index

    @property
    def total_rows(self) -> int:
        """Live rows across all tables."""
        return sum(t.num_rows for t in self.tables.values())
