"""Bitmap snapshotting (§5.2, Fig. 6c).

Before an analytical query, the CPU replays the MVCC update log committed
since the last snapshot into two per-bank visibility bitmaps (data region
and delta region), one bit per row, with a copy on every device so each
PIM unit can consult visibility locally. Bit ``1`` means the row is
visible in the snapshot.

The snapshot is **incremental**: only records in ``(last_ts, query_ts]``
are applied (large-scale databases update rather than rebuild, §2.3), and
transactions issued after the query's timestamp are skipped — exactly the
T1–T5 walk-through of Fig. 6c.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.storage import TableStorage
from repro.errors import SnapshotError
from repro.mvcc.manager import MVCCManager
from repro.mvcc.metadata import METADATA_BYTES, Region
from repro.units import ceil_div

__all__ = ["SnapshotCost", "SnapshotManager"]


@dataclass(frozen=True)
class SnapshotCost:
    """Work done by one incremental snapshot update.

    ``metadata_bytes`` is CPU traffic reading version metadata;
    ``bitmap_bytes`` is CPU traffic updating the (ADE-aligned, hence
    simultaneously written) bitmap copies.
    """

    records: int
    bits_flipped: int
    metadata_bytes: int
    bitmap_bytes: int

    @property
    def total_cpu_bytes(self) -> int:
        """All CPU memory traffic of the update."""
        return self.metadata_bytes + self.bitmap_bytes

    def merge(self, other: "SnapshotCost") -> "SnapshotCost":
        """Sum two costs."""
        return SnapshotCost(
            self.records + other.records,
            self.bits_flipped + other.bits_flipped,
            self.metadata_bytes + other.metadata_bytes,
            self.bitmap_bytes + other.bitmap_bytes,
        )


class SnapshotManager:
    """Maintains one table's snapshot bitmaps against its MVCC log."""

    def __init__(self, storage: TableStorage, mvcc: MVCCManager) -> None:
        self.storage = storage
        self.mvcc = mvcc
        self.last_snapshot_ts = 0
        self._data_bits = np.zeros(storage.capacity_rows, dtype=bool)
        self._data_bits[: mvcc.num_rows] = True
        self._delta_bits = np.zeros(storage.delta_capacity_rows, dtype=bool)
        self._flush()

    # ------------------------------------------------------------------
    # Incremental update
    # ------------------------------------------------------------------
    def update_to(self, ts: int) -> SnapshotCost:
        """Apply committed records up to ``ts``; flush bitmap copies."""
        if ts < self.last_snapshot_ts:
            raise SnapshotError(
                f"snapshot timestamp {ts} precedes last snapshot "
                f"{self.last_snapshot_ts}"
            )
        if ts == self.last_snapshot_ts:
            # Already at this horizon — repeated calls are idempotent
            # no-ops rather than a log walk plus a fresh cost object.
            return SnapshotCost(records=0, bits_flipped=0, metadata_bytes=0, bitmap_bytes=0)
        records = 0
        bits = 0
        touched_granules = set()
        for record in self.mvcc.log_between(self.last_snapshot_ts, ts):
            records += 1
            if record.kind == "update":
                bits += self._set(record.prev_ref, False, touched_granules)
                bits += self._set(record.new_ref, True, touched_granules)
            elif record.kind == "insert":
                bits += self._set(record.new_ref, True, touched_granules)
            elif record.kind == "delete":
                bits += self._set(record.prev_ref, False, touched_granules)
            else:  # pragma: no cover - log kinds are closed
                raise SnapshotError(f"unknown log record kind {record.kind!r}")
        self.last_snapshot_ts = ts
        if records:
            self._flush()
        line = self.storage.rank.geometry.cache_line_bytes
        return SnapshotCost(
            records=records,
            bits_flipped=bits,
            metadata_bytes=records * METADATA_BYTES,
            bitmap_bytes=len(touched_granules) * line,
        )

    def _set(self, ref, value: bool, touched: set) -> int:
        if ref is None:
            raise SnapshotError("log record missing a row reference")
        bits = self._data_bits if ref.region == Region.DATA else self._delta_bits
        if ref.index >= len(bits):
            raise SnapshotError(f"{ref.region} bitmap row {ref.index} out of range")
        if bits[ref.index] == value:
            return 0
        bits[ref.index] = value
        # Group by the unit the cost model charges: one cache line of
        # packed bitmap covers 8 * cache_line_bytes rows. (Grouping by
        # the per-device interleave granularity instead would overcount
        # touched lines whenever granularity != cache_line_bytes.)
        line = self.storage.rank.geometry.cache_line_bytes
        touched.add((ref.region, ref.index // (8 * line)))
        return 1

    def _flush(self) -> None:
        self.storage.write_bitmap(Region.DATA, self._packed(self._data_bits))
        self.storage.write_bitmap(Region.DELTA, self._packed(self._delta_bits))

    @staticmethod
    def _packed(bits: np.ndarray) -> np.ndarray:
        nbytes = max(1, ceil_div(len(bits), 8))
        packed = np.packbits(bits.astype(np.uint8), bitorder="little")
        out = np.zeros(nbytes, dtype=np.uint8)
        out[: len(packed)] = packed
        return out

    # ------------------------------------------------------------------
    # Introspection / defragmentation hook
    # ------------------------------------------------------------------
    def visible_data_rows(self) -> np.ndarray:
        """Boolean visibility of data-region rows."""
        return self._data_bits.copy()

    def visible_delta_rows(self) -> np.ndarray:
        """Boolean visibility of delta-region rows."""
        return self._delta_bits.copy()

    def visible_count(self) -> int:
        """Total visible rows across both regions."""
        return int(self._data_bits.sum() + self._delta_bits.sum())

    def rebuild_after_defrag(self, ts: int, live_rows: int, tombstoned) -> None:
        """Reset bitmaps after defragmentation folded the delta region.

        All live data rows become visible, tombstoned rows invisible, and
        the delta region empties. ``ts`` becomes the new snapshot horizon
        (OLTP is paused during defragmentation, §5.3, so nothing is
        in-flight).
        """
        self._data_bits[:] = False
        self._data_bits[:live_rows] = True
        tombstoned = np.asarray(list(tombstoned), dtype=np.intp)
        if tombstoned.size:
            self._data_bits[tombstoned] = False
        self._delta_bits[:] = False
        self.last_snapshot_ts = ts
        self._flush()
