"""The PUSHtap engine: single-instance HTAP on a simulated PIM rank.

:class:`PushTapEngine` assembles the whole stack of Fig. 2d / Fig. 7a:

* one simulated PIM :class:`~repro.pim.memory.Rank` holding every table in
  the unified compact-aligned format with block-circulant placement;
* per-bank PIM units plus a memory controller (PUSHtap's scheduler +
  polling module by default, or the original architecture for the
  Fig. 12b comparison);
* the OLTP engine (MVCC transactions over the same instance) and the OLAP
  engine (snapshot-consistent PIM scans);
* periodic defragmentation every ``defrag_period`` transactions (§7.4
  chooses 10k at full scale — scaled runs pick proportionally smaller
  periods).

Build one with :meth:`PushTapEngine.build`; see ``examples/quickstart.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig, dimm_system
from repro.core.database import Database
from repro.core.defrag import DefragExecutor, DefragResult, Strategy
from repro.core.snapshot import SnapshotManager
from repro.core.storage import RankAllocator, TableStorage
from repro.core.table import TableRuntime
from repro.errors import ConfigError, QueryError
from repro.faults import injector as faults
from repro.faults import plan as fault_plan
from repro.format.binpack import compact_aligned_layout
from repro.format.layout import UnifiedLayout
from repro.format.schema import TableSchema
from repro.mvcc.manager import MVCCManager
from repro.mvcc.metadata import Region, RowRef
from repro.olap.engine import OLAPEngine
from repro.olap.queries import QueryResult, run_query
from repro.oltp.engine import CostParams, OLTPEngine, TxnContext, TxnResult
from repro.oltp.formats import UnifiedFormatModel
from repro.oltp.index import HashIndex
from repro.oltp.tpcc import INDEX_NAMES, TPCCDriver
from repro.pim.controller import OriginalController, PushTapController, _ControllerBase
from repro.pim.memory import Rank
from repro.pim.pim_unit import PIMUnit
from repro.telemetry import registry as telemetry
from repro.units import KIB, ceil_div, round_up
from repro.workloads.chbench import all_queries, ch_schema, key_columns_for, row_counts
from repro.workloads.tpcc_gen import generate_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ivm.manager import IVMManager
    from repro.wal.manager import DurabilityManager

__all__ = ["PushTapEngine", "EngineStats", "OLAPBatchResult"]


@dataclass
class OLAPBatchResult:
    """Queries executed under one mode batch, plus the switch cost."""

    results: List[QueryResult]
    switch_time: float = 0.0

    @property
    def total_time(self) -> float:
        """Batch wall time: the one mode switch plus every query."""
        return self.switch_time + sum(r.total_time for r in self.results)

#: Index keys matching the deterministic data generator's assignment.
_INDEX_KEY_FNS: Dict[str, Callable[[Dict], Tuple[str, object]]] = {
    "warehouse": lambda r: ("warehouse_pk", r["w_id"]),
    "district": lambda r: ("district_pk", (r["d_w_id"], r["d_id"])),
    "customer": lambda r: ("customer_pk", (r["c_w_id"], r["c_d_id"], r["c_id"])),
    "item": lambda r: ("item_pk", r["i_id"]),
    "stock": lambda r: ("stock_pk", (r["s_w_id"], r["s_i_id"])),
    "order": lambda r: ("order_pk", r["o_id"]),
    "neworder": lambda r: ("neworder_pk", r["no_o_id"]),
    "orderline": lambda r: ("orderline_pk", (r["ol_o_id"], r["ol_number"])),
}


@dataclass
class EngineStats:
    """Aggregate counters of one engine instance."""

    transactions: int = 0
    queries: int = 0
    defrag_runs: int = 0
    oltp_time: float = 0.0
    olap_time: float = 0.0
    defrag_time: float = 0.0


class PushTapEngine:
    """Single-instance PIM-based HTAP engine (the paper's contribution)."""

    def __init__(
        self,
        config: SystemConfig,
        rank: Rank,
        db: Database,
        layouts: Dict[str, UnifiedLayout],
        controller: _ControllerBase,
        units: Dict[Tuple[int, int], PIMUnit],
        oltp: OLTPEngine,
        olap: OLAPEngine,
        defrag_period: int,
    ) -> None:
        self.config = config
        self.rank = rank
        self.db = db
        self.layouts = layouts
        self.controller = controller
        self.units = units
        self.oltp = oltp
        self.olap = olap
        self.defrag_period = defrag_period
        #: All simulated ranks (build() extends these for ranks > 1).
        self.ranks: List[Rank] = [rank]
        self.rank_units: List[Dict[Tuple[int, int], PIMUnit]] = [units]
        self.stats = EngineStats()
        #: Optional incremental-view layer (see :meth:`enable_ivm`).
        self.ivm = None
        #: Optional durability layer (see :meth:`enable_durability`).
        self.durability = None
        self._txns_since_defrag = 0
        self._defrag_executors: Dict[str, DefragExecutor] = {
            name: DefragExecutor(
                runtime.storage,
                runtime.mvcc,
                runtime.snapshots,
                bdw_cpu=config.total_cpu_bandwidth,
                bdw_pim=config.total_pim_bandwidth,
            )
            for name, runtime in db.tables.items()
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        config: Optional[SystemConfig] = None,
        scale: float = 1e-4,
        th: float = 0.6,
        queries: Optional[Sequence[str]] = None,
        tables: Optional[Sequence[str]] = None,
        seed: int = 7,
        controller_kind: str = "pushtap",
        defrag_period: int = 1_000,
        block_rows: int = 1024,
        insert_headroom: float = 2.0,
        extra_rows: int = 0,
        updates_per_txn_estimate: int = 12,
        circulant: bool = True,
        ranks: int = 1,
        cost: Optional[CostParams] = None,
        counts: Optional[Dict[str, int]] = None,
        row_filter: Optional[Callable[[str, Dict], bool]] = None,
    ) -> "PushTapEngine":
        """Build a loaded engine over the CH-benCHmark database.

        ``scale`` scales the paper's row counts (§7.1); ``th`` is the
        compact-aligned threshold (§4.1.2, the paper picks 0.6);
        ``queries`` determines the key-column set (default: all 22);
        ``extra_rows`` adds absolute insert capacity per table on top of
        the multiplicative ``insert_headroom`` (long transaction streams
        append many ORDERLINE/HISTORY rows); ``circulant=False`` disables
        the block-circulant rotation (the Fig. 5a ablation baseline);
        ``ranks`` simulates more than one PIM rank — the paper's third
        access dimension (§1) — with tables assigned round-robin by
        footprint, each scanned by its own rank's PIM units.

        ``counts`` overrides the per-table row counts derived from
        ``scale`` (the cluster layer uses this to pin the warehouse
        count independently of the data volume); ``row_filter`` keeps
        only the generated rows it accepts — a shard engine loads the
        same deterministic global stream but retains only its partition,
        with capacities and MVCC sized to the retained rows.
        """
        config = config or dimm_system()
        query_set = list(queries) if queries is not None else all_queries()
        schemas = ch_schema()
        names = list(tables) if tables is not None else list(schemas)
        counts = dict(counts) if counts is not None else row_counts(scale)

        layouts: Dict[str, UnifiedLayout] = {}
        for name in names:
            keys = key_columns_for(query_set, name)
            layouts[name] = compact_aligned_layout(
                schemas[name], keys, config.geometry.devices_per_rank, th
            )

        if row_filter is None:
            rows_by_table = None
            effective_counts = counts
        else:
            rows_by_table = {
                name: [
                    values
                    for values in generate_table(name, counts, seed)
                    if row_filter(name, values)
                ]
                for name in names
            }
            effective_counts = {
                name: len(rows_by_table[name]) for name in names
            }

        capacities = {
            name: round_up(
                max(int(effective_counts[name] * insert_headroom), block_rows)
                + extra_rows,
                8,
            )
            for name in names
        }
        delta_rows = cls._delta_rows(
            defrag_period, updates_per_txn_estimate, block_rows, config
        )
        engine = cls._assemble(
            config=config,
            schemas={n: schemas[n] for n in names},
            layouts=layouts,
            capacities=capacities,
            initial_counts={n: effective_counts[n] for n in names},
            delta_rows=delta_rows,
            block_rows=block_rows,
            circulant=circulant,
            ranks=ranks,
            controller_kind=controller_kind,
            defrag_period=defrag_period,
            cost=cost,
        )
        for index_name in INDEX_NAMES:
            engine.db.add_index(HashIndex(index_name))
        if rows_by_table is None:
            cls._load_data(engine.db, names, counts, seed)
        else:
            cls._load_rows(engine.db, rows_by_table)
        return engine

    @classmethod
    def build_custom(
        cls,
        schemas: Dict[str, "TableSchema"],
        key_columns: Dict[str, Sequence[str]],
        initial_rows: Dict[str, Sequence[Dict]],
        config: Optional[SystemConfig] = None,
        th: float = 0.6,
        index_keys: Optional[Dict[str, Tuple[str, Callable[[Dict], object]]]] = None,
        defrag_period: int = 1_000,
        block_rows: int = 1024,
        insert_headroom: float = 2.0,
        extra_rows: int = 0,
        updates_per_txn_estimate: int = 12,
        circulant: bool = True,
        ranks: int = 1,
        controller_kind: str = "pushtap",
        cost: Optional[CostParams] = None,
    ) -> "PushTapEngine":
        """Build an engine over *arbitrary* schemas (not CH-benCHmark).

        ``schemas`` maps table name → :class:`TableSchema`;
        ``key_columns`` lists each table's analytically scanned columns
        (§4.1.2); ``initial_rows`` supplies the bulk-loaded rows;
        ``index_keys`` optionally maps a table to ``(index_name, key_fn)``
        to build a unique hash index over the loaded rows. TPC-C helpers
        (:meth:`make_driver`, :meth:`run_transactions`) only apply to the
        CH build — use :meth:`PushTapEngine.oltp` / :meth:`query` plumbing
        directly, or the generic OLAP operators.
        """
        config = config or dimm_system()
        names = list(schemas)
        layouts = {
            name: compact_aligned_layout(
                schemas[name],
                list(key_columns.get(name, ())),
                config.geometry.devices_per_rank,
                th,
            )
            for name in names
        }
        counts = {name: len(initial_rows.get(name, ())) for name in names}
        capacities = {
            name: round_up(
                max(int(counts[name] * insert_headroom), block_rows) + extra_rows, 8
            )
            for name in names
        }
        delta_rows = cls._delta_rows(
            defrag_period, updates_per_txn_estimate, block_rows, config
        )
        engine = cls._assemble(
            config=config,
            schemas=schemas,
            layouts=layouts,
            capacities=capacities,
            initial_counts=counts,
            delta_rows=delta_rows,
            block_rows=block_rows,
            circulant=circulant,
            ranks=ranks,
            controller_kind=controller_kind,
            defrag_period=defrag_period,
            cost=cost,
        )
        index_keys = index_keys or {}
        for table_name, (index_name, _) in index_keys.items():
            if table_name not in schemas:
                raise ConfigError(f"index over unknown table {table_name!r}")
            engine.db.add_index(HashIndex(index_name))
        for name in names:
            runtime = engine.db.table(name)
            spec = index_keys.get(name)
            for row_id, values in enumerate(initial_rows.get(name, ())):
                runtime.storage.write_row(RowRef(Region.DATA, row_id), values)
                if spec is not None:
                    index_name, key_fn = spec
                    engine.db.index(index_name).insert(key_fn(values), row_id)
        return engine

    @classmethod
    def _assemble(
        cls,
        config: SystemConfig,
        schemas: Dict[str, "TableSchema"],
        layouts: Dict[str, UnifiedLayout],
        capacities: Dict[str, int],
        initial_counts: Dict[str, int],
        delta_rows: int,
        block_rows: int,
        circulant: bool,
        ranks: int,
        controller_kind: str,
        defrag_period: int,
        cost: Optional[CostParams],
    ) -> "PushTapEngine":
        """Shared assembly: ranks, storage, MVCC, controllers, engines."""
        names = list(schemas)
        if ranks < 1:
            raise ConfigError("ranks must be >= 1")
        assignment = cls._assign_ranks(names, layouts, capacities, ranks)
        rank_objects: List[Rank] = []
        allocators: List[RankAllocator] = []
        rank_units: List[Dict[Tuple[int, int], PIMUnit]] = []
        for rank_index in range(ranks):
            members = [n for n in names if assignment[n] == rank_index]
            device_bytes = cls._device_bytes(
                {n: layouts[n] for n in members} or layouts,
                capacities,
                delta_rows,
                block_rows,
                config,
            )
            rank_obj = Rank(config.geometry, device_bytes)
            rank_objects.append(rank_obj)
            allocators.append(RankAllocator(rank_obj))
            rank_units.append(cls._build_units(config, rank_obj))

        db = Database()
        for name in names:
            rank_index = assignment[name]
            rank_obj = rank_objects[rank_index]
            storage = TableStorage(
                rank_obj,
                allocators[rank_index],
                layouts[name],
                capacities[name],
                delta_rows,
                block_rows,
                circulant=circulant,
            )
            mvcc = MVCCManager(
                initial_rows=initial_counts[name],
                capacity_rows=capacities[name],
                block_rows=block_rows,
                num_devices=rank_obj.num_devices,
                delta_capacity_blocks=ceil_div(delta_rows, block_rows),
            )
            runtime = TableRuntime(
                name,
                schemas[name],
                layouts[name],
                storage,
                mvcc,
                SnapshotManager(storage, mvcc),
                units=rank_units[rank_index],
                rank_index=rank_index,
            )
            db.add_table(runtime)

        all_units = [u for units in rank_units for u in units.values()]
        controller = cls._build_controller_from_list(
            config, all_units, controller_kind
        )
        oltp = OLTPEngine(
            db,
            UnifiedFormatModel(layouts, config.geometry),
            config,
            cost or CostParams(),
        )
        olap = OLAPEngine(config, controller, rank_units[0])
        engine = cls(
            config,
            rank_objects[0],
            db,
            layouts,
            controller,
            rank_units[0],
            oltp,
            olap,
            defrag_period,
        )
        engine.ranks = rank_objects
        engine.rank_units = rank_units
        return engine

    @staticmethod
    def _assign_ranks(
        names: Sequence[str],
        layouts: Dict[str, UnifiedLayout],
        capacities: Dict[str, int],
        ranks: int,
    ) -> Dict[str, int]:
        """Balance tables over ranks: biggest footprint first, onto the
        currently lightest rank."""
        loads = [0] * ranks
        assignment: Dict[str, int] = {}
        by_size = sorted(
            names,
            key=lambda n: layouts[n].bytes_per_row() * capacities[n],
            reverse=True,
        )
        for name in by_size:
            target = loads.index(min(loads))
            assignment[name] = target
            loads[target] += layouts[name].bytes_per_row() * capacities[name]
        return assignment

    @staticmethod
    def _delta_rows(
        defrag_period: int, updates_per_txn: int, block_rows: int, config: SystemConfig
    ) -> int:
        d = config.geometry.devices_per_rank
        # Delta blocks materialize round-robin over rotations, but a small
        # table's updates all carry few rotations — in the worst case only
        # 1/d of materialized blocks are usable, hence the ×d headroom.
        expected = max(defrag_period, 1_000) * updates_per_txn * d
        blocks = max(2 * d, ceil_div(expected, block_rows) + d)
        return blocks * block_rows

    @staticmethod
    def _device_bytes(
        layouts: Dict[str, UnifiedLayout],
        capacities: Dict[str, int],
        delta_rows: int,
        block_rows: int,
        config: SystemConfig,
    ) -> int:
        total = 0
        for name, layout in layouts.items():
            data_blocks = ceil_div(max(capacities[name], 1), block_rows)
            delta_blocks = ceil_div(max(delta_rows, 1), block_rows)
            for part in layout.parts:
                block_bytes = block_rows * part.row_width
                total += (data_blocks + delta_blocks) * block_bytes
            total += 2 * (max(capacities[name], delta_rows) // 8 + block_rows)
        banks = config.geometry.banks_per_device
        padded = int(total * 1.4) + 512 * KIB
        return round_up(padded, banks * 8 * block_rows)

    @staticmethod
    def _load_data(
        db: Database, names: Sequence[str], counts: Dict[str, int], seed: int
    ) -> None:
        for name in names:
            runtime = db.table(name)
            key_fn = _INDEX_KEY_FNS.get(name)
            for row_id, values in enumerate(generate_table(name, counts, seed)):
                runtime.storage.write_row(RowRef(Region.DATA, row_id), values)
                if key_fn is not None:
                    index_name, key = key_fn(values)
                    db.index(index_name).insert(key, row_id)

    @staticmethod
    def _load_rows(db: Database, rows_by_table: Dict[str, List[Dict]]) -> None:
        """Bulk-load pre-filtered rows (the shard-partition build path)."""
        for name, rows in rows_by_table.items():
            runtime = db.table(name)
            key_fn = _INDEX_KEY_FNS.get(name)
            for row_id, values in enumerate(rows):
                runtime.storage.write_row(RowRef(Region.DATA, row_id), values)
                if key_fn is not None:
                    index_name, key = key_fn(values)
                    db.index(index_name).insert(key, row_id)

    @staticmethod
    def _build_units(
        config: SystemConfig, rank: Rank
    ) -> Dict[Tuple[int, int], PIMUnit]:
        units: Dict[Tuple[int, int], PIMUnit] = {}
        unit_id = 0
        for device in rank.devices:
            for bank in device.banks:
                units[(device.index, bank.index)] = PIMUnit(
                    unit_id, bank, config.pim, config.timings, config.geometry
                )
                unit_id += 1
        return units

    @staticmethod
    def _build_controller(
        config: SystemConfig,
        units: Dict[Tuple[int, int], PIMUnit],
        kind: str,
    ) -> _ControllerBase:
        ordered = [units[k] for k in sorted(units)]
        return PushTapEngine._build_controller_from_list(config, ordered, kind)

    @staticmethod
    def _build_controller_from_list(
        config: SystemConfig, units: List[PIMUnit], kind: str
    ) -> _ControllerBase:
        if kind == "pushtap":
            return PushTapController(config, units)
        if kind == "original":
            return OriginalController(config, units)
        raise ConfigError(f"unknown controller kind {kind!r}")

    # ------------------------------------------------------------------
    # OLTP path
    # ------------------------------------------------------------------
    def execute_transaction(
        self, txn: Callable[[TxnContext], None], auto_defrag: bool = True
    ) -> TxnResult:
        """Run one transaction; defragments when the period elapses or a
        delta region nears capacity.

        ``auto_defrag=False`` defers the defragmentation decision to the
        caller (the serve loop schedules defrag as its own work item via
        :meth:`defrag_due` / :meth:`defragment`, so it can account the
        pause separately from transaction latency).
        """
        if auto_defrag and self.defrag_due():
            self.defragment()
        result = self.oltp.execute(txn)
        self.stats.oltp_time += result.total_time
        # Committed transactions only: aborted txns roll back all their
        # writes, so they neither count toward throughput (the PR-2 tpmC
        # fix) nor age the delta regions toward defragmentation. The
        # serve loop mirrors exactly this accounting.
        if not result.aborted:
            self.stats.transactions += 1
            self._txns_since_defrag += 1
        return result

    def run_transactions(
        self, count: int, driver: Optional[TPCCDriver] = None
    ) -> List[TxnResult]:
        """Run ``count`` transactions from a driver (created if omitted)."""
        driver = driver or self.make_driver()
        return [
            self.execute_transaction(driver.next_transaction()) for _ in range(count)
        ]

    def make_driver(
        self,
        seed: int = 11,
        payment_fraction: float = 0.5,
        delivery_fraction: float = 0.0,
        o_id_offset: int = 0,
        o_id_stride: int = 1,
        remote_fraction: float = 1.0,
    ) -> TPCCDriver:
        """Create a TPC-C parameter driver consistent with the loaded data.

        All mix fractions pass through the driver's constructor so its
        validation applies (``payment + delivery`` must not exceed 1,
        ``remote_fraction`` must keep the scaled remote rates in range).
        ``o_id_offset``/``o_id_stride`` give several drivers over the
        same engine (one per serving tenant) disjoint order-id spaces.
        """
        counts = {name: t.num_rows for name, t in self.db.tables.items()}
        return TPCCDriver(
            counts,
            seed=seed,
            payment_fraction=payment_fraction,
            delivery_fraction=delivery_fraction,
            o_id_offset=o_id_offset,
            o_id_stride=o_id_stride,
            remote_fraction=remote_fraction,
        )

    def defrag_due(self) -> bool:
        """Whether defragmentation should run before the next transaction."""
        if self.defrag_period and self._txns_since_defrag >= self.defrag_period:
            return True
        for runtime in self.db.tables.values():
            delta = runtime.mvcc.delta
            if delta.high_water_rows >= 0.8 * delta.capacity_rows:
                return True
        return False

    #: Backwards-compatible alias (pre-serve name).
    _defrag_due = defrag_due

    # ------------------------------------------------------------------
    # Defragmentation
    # ------------------------------------------------------------------
    def defragment(self, strategy: str = Strategy.HYBRID) -> Dict[str, DefragResult]:
        """Defragment every table (OLTP paused, §5.3)."""
        ts = self.db.oracle.read_timestamp()
        results: Dict[str, DefragResult] = {}
        first = True
        for name, executor in self._defrag_executors.items():
            runtime = self.db.table(name)
            results[name] = executor.run(
                ts,
                strategy,
                tombstoned=runtime.mvcc.tombstoned_rows(),
                include_fixed=first,
            )
            first = False
            self.stats.defrag_time += results[name].total_time
        self.stats.defrag_runs += 1
        self._txns_since_defrag = 0
        if self.ivm is not None:
            # Compaction cleared the update logs and released superseded
            # delta versions — views must resync from the new horizon.
            self.ivm.on_defrag(ts)
        return results

    # ------------------------------------------------------------------
    # OLAP path
    # ------------------------------------------------------------------
    def query(self, name: str) -> QueryResult:
        """Run an analytical query at the current read timestamp."""
        inj = faults.active()
        if inj.enabled and inj.fire(fault_plan.DEFRAG_MID_QUERY):
            # Defragmentation triggers in the middle of the query interval
            # (e.g. a delta region crossing its high-water mark right as
            # the query scheduler fires); the query then runs against the
            # freshly rebuilt snapshot, which must stay consistent.
            inj.detect(fault_plan.DEFRAG_MID_QUERY)
            self.defragment()
        ts = self.db.oracle.read_timestamp()
        tel = telemetry.active()
        # The query wrapper must start *after* any fault-injected defrag
        # above — defrag time is accounted separately, not in the query.
        t0 = tel.sim_time if tel.enabled else 0.0
        result = run_query(name, self.olap, self.db, ts)
        self.stats.queries += 1
        self.stats.olap_time += result.total_time
        if tel.enabled:
            tel.counter("olap.queries").inc()
            tel.histogram(f"olap.query.{name}.latency_ns").observe(result.total_time)
            # Sub-spans (snapshots, operator scans) advanced the cursor by
            # the PIM-side time; the remainder of the query's total is CPU
            # glue (harvest, merges, bucket exchange), recorded as its own
            # serial span so the wrapper's window covers the whole query.
            tel.record_gap_span("olap.cpu", result.total_time, t0, {"query": name})
            tel.record_window_span("olap.query", t0, {"query": name})
        return result

    def enable_ivm(self, queries: Sequence[str] = ("Q1", "Q6", "Q9")) -> "IVMManager":
        """Attach (or extend) the incremental-view layer.

        Registers one materialized view per named query; already
        registered views are kept. Returns the manager.
        """
        from repro.ivm.manager import IVMManager

        if self.ivm is None:
            self.ivm = IVMManager(self)
        for name in queries:
            self.ivm.register(name)
        return self.ivm

    def enable_durability(
        self, path: str, checkpoint_every: int = 0, sync: bool = True
    ) -> "DurabilityManager":
        """Attach a write-ahead log (plus leveled checkpoint store) at ``path``.

        Every subsequently committed transaction appends a redo record to
        ``<path>/wal.log`` before it is counted committed; with
        ``checkpoint_every > 0``, every that-many commits the accumulated
        redo state is folded and spilled into the on-disk leveled store
        and the WAL rotated. Append/fsync and spill costs are charged
        through the §6.3 flush model into the committing transaction.
        Returns the manager (also kept as ``self.durability``).
        """
        from repro.wal.manager import DurabilityManager

        if self.durability is not None:
            raise ConfigError("durability is already enabled on this engine")
        manager = DurabilityManager(
            self, path, checkpoint_every=checkpoint_every, sync=sync
        )
        self.durability = manager
        self.oltp.durability = manager
        return manager

    def query_ivm(self, name: str) -> QueryResult:
        """Answer a registered view incrementally at the current read ts.

        Counterpart of :meth:`query`: same result rows and engine-stats
        accounting, but served from maintained view state — the cost is
        CPU-side delta folding, with no PIM launch and no mode switch.
        """
        if self.ivm is None:
            raise QueryError("incremental views are not enabled on this engine")
        ts = self.db.oracle.read_timestamp()
        result = self.ivm.answer(name, ts)
        self.stats.queries += 1
        self.stats.olap_time += result.total_time
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("olap.queries").inc()
            tel.counter("olap.ivm.queries").inc()
            tel.histogram(f"olap.query.{name}.latency_ns").observe(result.total_time)
            if result.total_time > 1e-9:
                tel.record_span("olap.ivm", result.total_time, {"query": name})
        return result

    def query_batch(
        self, names: Sequence[str], use_ivm: bool = False
    ) -> "OLAPBatchResult":
        """Run several analytical queries under one bank mode switch.

        The controller's mode-batch hook holds the banks in PIM mode for
        the whole batch, so every query's ``LS`` launches skip their
        per-launch handover — the amortisation PUSHtap's cheap mode
        switches make worthwhile only when launches are batched (§1, and
        the UPMEM launch-overhead observation). The switch cost itself is
        charged to OLAP time but to no individual query.

        With ``use_ivm`` the batch is answered from the incremental-view
        layer instead: no mode switch is needed at all (delta folding is
        pure CPU work), so ``switch_time`` is zero.
        """
        if use_ivm:
            return OLAPBatchResult(
                results=[self.query_ivm(name) for name in names], switch_time=0.0
            )
        switch_time = self.olap.begin_mode_batch()
        try:
            results = [self.query(name) for name in names]
        finally:
            switch_time += self.olap.end_mode_batch()
        self.stats.olap_time += switch_time
        return OLAPBatchResult(results=results, switch_time=switch_time)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def table(self, name: str) -> TableRuntime:
        """Access one table's runtime."""
        return self.db.table(name)

    @property
    def num_units(self) -> int:
        """PIM units across all simulated ranks."""
        return sum(len(units) for units in self.rank_units)

    def publish_rowbuffer_telemetry(self) -> None:
        """Drain row-buffer shadow stats into per-lane telemetry counters.

        Each PIM unit's bank lane becomes ``pim.rowbuffer.rR.devDD.bankBB.*``
        and each OLTP table ``oltp.rowbuffer.<table>.*`` with hits /
        misses / conflicts / bytes counters. Stats accumulate only while
        the registry's ``roofline`` flag is on; draining resets the
        shadows so repeated publishes never double-count.
        """
        tel = telemetry.active()
        if not tel.enabled:
            return
        from repro.pim.timing import AccessStats

        def _publish(lane: str, stats: AccessStats) -> None:
            tel.counter(f"{lane}.hits").inc(stats.hits)
            tel.counter(f"{lane}.misses").inc(stats.misses)
            tel.counter(f"{lane}.conflicts").inc(stats.conflicts)
            tel.counter(f"{lane}.bytes").inc(stats.bytes_transferred)

        for rank_idx, units in enumerate(self.rank_units):
            for (dev, bank), unit in sorted(units.items()):
                model = unit.rowbuffer
                if model is None or model.stats.accesses == 0:
                    continue
                _publish(f"pim.rowbuffer.r{rank_idx}.dev{dev:02d}.bank{bank:02d}",
                         model.stats)
                model.stats = AccessStats()
        for table, model in sorted(self.oltp.rowbuffers.items()):
            if model.stats.accesses == 0:
                continue
            _publish(f"oltp.rowbuffer.{table}", model.stats)
            model.stats = AccessStats()

    def report(self) -> Dict[str, object]:
        """Summary of the engine's state and accumulated work."""
        return {
            "config": self.config.name,
            "ranks": len(self.ranks),
            "pim_units": self.num_units,
            "tables": {
                name: {
                    "rows": t.num_rows,
                    "rank": t.rank_index,
                    "parts": t.layout.num_parts,
                    "delta_high_water": t.mvcc.delta.high_water_rows,
                    "stale_versions": t.mvcc.stale_version_count(),
                }
                for name, t in self.db.tables.items()
            },
            "transactions": self.stats.transactions,
            "queries": self.stats.queries,
            "defrag_runs": self.stats.defrag_runs,
            "mean_txn_time_ns": self.oltp.mean_txn_time,
            "oltp_time_ns": self.stats.oltp_time,
            "olap_time_ns": self.stats.olap_time,
            "defrag_time_ns": self.stats.defrag_time,
        }
