"""Physical table storage: layouts bound to devices (§4, §5.1, Fig. 6a).

:class:`TableStorage` places one table's unified-format parts into the
devices of a :class:`~repro.pim.memory.Rank`:

* every part gets per-device regions for its **data** and **delta** rows,
  allocated block-by-block so no block straddles a bank boundary (a PIM
  unit must reach its whole block bank-locally);
* all devices allocate in lockstep, so a row's slots live at the *same
  local address* on every device — the ADE alignment the CPU's interleaved
  access needs;
* the block-circulant placement decides *which* device holds *which* slot
  of each row (§4.2);
* per-device copies of the snapshot bitmaps (data + delta region) occupy a
  dedicated, ADE-aligned region (§5.2, Fig. 6a).

The same class serves both functional byte movement (``write_row`` /
``read_row``) and scan planning for the OLAP operators
(:meth:`TableStorage.column_scan_plan`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro import perf
from repro.errors import LayoutError, MemoryError_
from repro.format.circulant import BlockCirculantPlacement
from repro.format.layout import UnifiedLayout
from repro.format.schema import Value
from repro.mvcc.metadata import Region, RowRef
from repro.pim.memory import Rank
from repro.units import ceil_div

__all__ = ["RankAllocator", "BlockScan", "TableStorage"]


class RankAllocator:
    """Lockstep allocator for per-device regions of a rank.

    All devices have identical layouts, so a single cursor serves the
    whole rank. :meth:`alloc_block` guarantees the returned range stays
    within one bank (advancing to the next bank when needed).
    """

    def __init__(self, rank: Rank) -> None:
        self.rank = rank
        self.bank_size = rank.devices[0].bank_size
        self.device_size = rank.devices[0].size
        self._cursor = 0

    @property
    def used_bytes(self) -> int:
        """Bytes allocated so far (per device)."""
        return self._cursor

    def alloc_block(self, nbytes: int, align: int = 8) -> int:
        """Allocate ``nbytes`` that must not straddle a bank boundary."""
        if nbytes <= 0:
            raise MemoryError_(f"allocation size must be positive, got {nbytes}")
        if nbytes > self.bank_size:
            raise MemoryError_(
                f"block of {nbytes} B exceeds bank size {self.bank_size} B"
            )
        cursor = ceil_div(self._cursor, align) * align
        if cursor // self.bank_size != (cursor + nbytes - 1) // self.bank_size:
            cursor = (cursor // self.bank_size + 1) * self.bank_size
        if cursor + nbytes > self.device_size:
            raise MemoryError_(
                f"device memory exhausted: need {nbytes} B at {cursor}, "
                f"device size {self.device_size} B"
            )
        self._cursor = cursor + nbytes
        return cursor


@dataclass(frozen=True)
class BlockScan:
    """One block's worth of column-scan work for one PIM unit.

    ``device`` identifies the unit (via its bank); ``dram_addr`` is the
    bank-local address of the first row's column bytes; rows advance by
    ``stride`` (the part row width) and each row contributes ``chunk``
    useful bytes.
    """

    block: int
    base_row: int
    num_rows: int
    device: int
    bank: int
    dram_addr: int
    stride: int
    chunk: int


class TableStorage:
    """One table's bytes, regions, and bitmaps inside a rank."""

    def __init__(
        self,
        rank: Rank,
        allocator: RankAllocator,
        layout: UnifiedLayout,
        capacity_rows: int,
        delta_capacity_rows: int,
        block_rows: int = 1024,
        circulant: bool = True,
    ) -> None:
        if layout.num_devices != rank.num_devices:
            raise LayoutError(
                f"layout expects {layout.num_devices} devices, rank has "
                f"{rank.num_devices}"
            )
        self.rank = rank
        self.layout = layout
        self.placement = BlockCirculantPlacement(
            rank.num_devices, block_rows, enabled=circulant
        )
        self.block_rows = block_rows
        self.capacity_rows = capacity_rows
        self.delta_capacity_rows = delta_capacity_rows
        data_blocks = ceil_div(max(capacity_rows, 1), block_rows)
        delta_blocks = ceil_div(max(delta_capacity_rows, 1), block_rows)
        # Per part: local base address of every data / delta block.
        self._data_blocks: List[List[int]] = []
        self._delta_blocks: List[List[int]] = []
        for part in layout.parts:
            block_bytes = block_rows * part.row_width
            self._data_blocks.append(
                [allocator.alloc_block(block_bytes) for _ in range(data_blocks)]
            )
            self._delta_blocks.append(
                [allocator.alloc_block(block_bytes) for _ in range(delta_blocks)]
            )
        # Bitmap copies: one bit per region row, every device stores one.
        self.data_bitmap_addr = allocator.alloc_block(
            max(1, ceil_div(capacity_rows, 8)), align=self._bitmap_align()
        )
        self.delta_bitmap_addr = allocator.alloc_block(
            max(1, ceil_div(delta_capacity_rows, 8)), align=self._bitmap_align()
        )
        # Per-column read plans for the OLTP partial-read hot path: the
        # (column, cached sorted runs) pair is immutable once the layout
        # validates, so resolve each name's schema/run lookups once and
        # reuse them on every row (populated lazily, hits only).
        self._read_plans: Dict[str, tuple] = {}
        # Schema columns in declaration order, for write_columns' encode
        # pass (iterating the schema object per update re-resolves it).
        self._schema_columns = tuple(layout.schema)

    def _bitmap_align(self) -> int:
        # Blocks are block_rows bits = block_rows/8 bytes; aligning the
        # bitmap base to that keeps per-block bitmap slices byte-aligned.
        return max(8, self.block_rows // 8)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def _region_blocks(self, region: str, part_index: int) -> List[int]:
        return (
            self._data_blocks[part_index]
            if region == Region.DATA
            else self._delta_blocks[part_index]
        )

    def _region_capacity(self, region: str) -> int:
        return self.capacity_rows if region == Region.DATA else self.delta_capacity_rows

    def row_addr(self, region: str, part_index: int, row: int) -> int:
        """Bank-local address of a row's slot bytes in one part.

        Identical on every device — which device holds which slot is the
        placement's business.
        """
        if row < 0 or row >= self._region_capacity(region):
            raise MemoryError_(
                f"{region} row {row} out of range [0, {self._region_capacity(region)})"
            )
        part = self.layout.parts[part_index]
        block = row // self.block_rows
        within = row % self.block_rows
        return self._region_blocks(region, part_index)[block] + within * part.row_width

    def device_of_slot(self, region: str, row: int, slot_index: int) -> int:
        """Physical device holding ``slot_index`` of a row (circulant)."""
        block = row // self.block_rows
        rotation = self.placement.rotation_of_block(block)
        return (slot_index + rotation) % self.rank.num_devices

    def rotation_of(self, region: str, row: int) -> int:
        """Rotation of the row's block."""
        return self.placement.rotation_of_block(row // self.block_rows)

    # ------------------------------------------------------------------
    # Row I/O (functional)
    # ------------------------------------------------------------------
    def write_row(self, ref: RowRef, values: Dict[str, Value]) -> None:
        """Pack and store a full row at ``ref``."""
        packed = self.layout.pack_row(values)
        num_devices = self.rank.num_devices
        rotation = self.rotation_of(ref.region, ref.index)
        for part in self.layout.parts:
            addr = self.row_addr(ref.region, part.index, ref.index)
            for slot in part.slots:
                device = (slot.slot_index + rotation) % num_devices
                self.rank.device_write(device, addr, packed[part.index][slot.slot_index])

    def read_row(
        self, ref: RowRef, columns: Optional[Sequence[str]] = None
    ) -> Dict[str, Value]:
        """Read and unpack a row from ``ref``.

        With ``columns`` given, only the byte runs of those columns are
        read and decoded — the OLTP fast path for partial reads, which
        skips the other slots' device traffic and per-field unpacking.
        """
        if columns is not None:
            return self._read_columns(ref, columns)
        num_devices = self.rank.num_devices
        rotation = self.rotation_of(ref.region, ref.index)
        packed: List[List[np.ndarray]] = []
        for part in self.layout.parts:
            addr = self.row_addr(ref.region, part.index, ref.index)
            slots: List[np.ndarray] = []
            for slot in part.slots:
                device = (slot.slot_index + rotation) % num_devices
                slots.append(self.rank.device_read(device, addr, part.row_width))
            packed.append(slots)
        return self.layout.unpack_row(packed)

    def _read_columns(self, ref: RowRef, columns: Sequence[str]) -> Dict[str, Value]:
        """Read and decode just ``columns`` of the row at ``ref``."""
        plans = self._read_plans
        num_devices = self.rank.num_devices
        rotation = self.rotation_of(ref.region, ref.index)
        out: Dict[str, Value] = {}
        for name in columns:
            plan = plans.get(name)
            if plan is None:
                # First touch of this column: resolve (and validate) its
                # schema entry and cached sorted runs once. Unknown
                # columns raise here, identically to the uncached path.
                plan = plans[name] = (
                    self.layout.schema.column(name),
                    self.layout.column_runs(name),
                )
            col, runs = plan
            if len(runs) == 1:
                # Common case: the column is one contiguous run (all key
                # columns and most normal columns) — a single device read.
                run = runs[0]
                p = run.placement
                addr = self.row_addr(ref.region, run.part_index, ref.index)
                device = (run.slot_index + rotation) % num_devices
                raw = self.rank.device_read(
                    device, addr + p.slot_offset, p.length
                ).tobytes()
            else:
                buf = bytearray(col.width)
                for run in runs:
                    p = run.placement
                    addr = self.row_addr(ref.region, run.part_index, ref.index)
                    device = (run.slot_index + rotation) % num_devices
                    buf[p.col_offset : p.col_offset + p.length] = self.rank.device_read(
                        device, addr + p.slot_offset, p.length
                    ).tobytes()
                raw = bytes(buf)
            out[name] = col.decode(raw)
        return out

    def write_columns(self, ref: RowRef, values: Dict[str, Value]) -> None:
        """Encode and store just ``values``'s columns of the row at ``ref``.

        The update fast path: the row's other bytes (including zeroed
        padding) are already in place — typically via :meth:`copy_row`
        from the previous version — so only the changed columns' byte
        runs move. Values are encoded in schema declaration order, the
        same order :meth:`~repro.format.layout.UnifiedLayout.pack_row`
        validates them, so encode errors surface identically to a full
        :meth:`write_row`.
        """
        encoded = {
            col.name: col.encode(values[col.name])
            for col in self._schema_columns
            if col.name in values
        }
        num_devices = self.rank.num_devices
        rotation = self.rotation_of(ref.region, ref.index)
        for name, raw in encoded.items():
            for run in self.layout.column_runs(name):
                p = run.placement
                addr = self.row_addr(ref.region, run.part_index, ref.index)
                device = (run.slot_index + rotation) % num_devices
                self.rank.device_write(
                    device,
                    addr + p.slot_offset,
                    np.frombuffer(raw, dtype=np.uint8)[
                        p.col_offset : p.col_offset + p.length
                    ],
                )

    def copy_row(self, src: RowRef, dst: RowRef) -> None:
        """Copy a row's bytes between refs **of the same rotation**.

        This is the device-local move defragmentation relies on: because
        delta rows share their origin's rotation, each device copies its
        own slot without inter-device traffic.
        """
        if self.rotation_of(src.region, src.index) != self.rotation_of(
            dst.region, dst.index
        ):
            raise LayoutError(
                "copy_row requires matching rotations (delta rows are "
                "allocated rotation-aligned for this reason)"
            )
        for part in self.layout.parts:
            src_addr = self.row_addr(src.region, part.index, src.index)
            dst_addr = self.row_addr(dst.region, part.index, dst.index)
            for device in range(self.rank.num_devices):
                data = self.rank.device_read(device, src_addr, part.row_width)
                self.rank.device_write(device, dst_addr, data)

    # ------------------------------------------------------------------
    # Snapshot bitmaps (functional, per-device copies)
    # ------------------------------------------------------------------
    def bitmap_addr(self, region: str) -> int:
        """Local base address of a region's bitmap."""
        return self.data_bitmap_addr if region == Region.DATA else self.delta_bitmap_addr

    def write_bitmap(self, region: str, bitmap: np.ndarray) -> None:
        """Store a full bitmap (packed little-endian bits) to all devices."""
        base = self.bitmap_addr(region)
        data = np.asarray(bitmap, dtype=np.uint8)
        expected = max(1, ceil_div(self._region_capacity(region), 8))
        if len(data) != expected:
            raise LayoutError(f"bitmap must be {expected} bytes, got {len(data)}")
        for device in range(self.rank.num_devices):
            self.rank.device_write(device, base, data)

    def read_bitmap(self, region: str, device: int = 0) -> np.ndarray:
        """Read one device's bitmap copy."""
        base = self.bitmap_addr(region)
        nbytes = max(1, ceil_div(self._region_capacity(region), 8))
        return self.rank.device_read(device, base, nbytes)

    def set_bitmap_bit(self, region: str, row: int, value: bool) -> None:
        """Flip one visibility bit on every device copy."""
        if row < 0 or row >= self._region_capacity(region):
            raise MemoryError_(f"{region} bitmap row {row} out of range")
        addr = self.bitmap_addr(region) + row // 8
        mask = 1 << (row % 8)
        for device in range(self.rank.num_devices):
            byte = int(self.rank.device_read(device, addr, 1)[0])
            byte = (byte | mask) if value else (byte & ~mask)
            self.rank.device_write(device, addr, np.array([byte], dtype=np.uint8))

    def bitmap_block_slice_addr(self, region: str, block: int) -> int:
        """Local address of the bitmap bytes covering one block's rows."""
        return self.bitmap_addr(region) + block * (self.block_rows // 8)

    def read_column_values(self, region: str, column: str, num_rows: int) -> List:
        """Gather one column's decoded values for rows ``0..num_rows``.

        Works for *any* column — including normal columns split across
        parts — by assembling each row's byte runs. This is the CPU
        fallback path of §4.1.2 (analytical queries on normal columns run
        through the CPU at reduced efficiency); PIM scans use
        :meth:`column_scan_plan` instead.
        """
        if not perf.vectorized():
            return self._read_column_values_reference(region, column, num_rows)
        col = self.layout.schema.column(column)
        runs = self.layout.column_runs(column)
        capacity = self._region_capacity(region)
        if num_rows > capacity:
            raise MemoryError_(
                f"{region} row {capacity} out of range [0, {capacity})"
            )
        if num_rows <= 0:
            return []
        # Gather block-at-a-time: within a block the rotation (hence the
        # device per run) is fixed, so each run is one strided 2-D fancy
        # index into that device's flat byte array.
        raw = np.zeros((num_rows, col.width), dtype=np.uint8)
        num_devices = self.rank.num_devices
        for run in runs:
            p = run.placement
            part = self.layout.parts[run.part_index]
            blocks = self._region_blocks(region, run.part_index)
            lanes = np.arange(p.length, dtype=np.intp)[None, :]
            for block_index in range(ceil_div(num_rows, self.block_rows)):
                base_row = block_index * self.block_rows
                rows = min(self.block_rows, num_rows - base_row)
                rotation = self.placement.rotation_of_block(block_index)
                device = (run.slot_index + rotation) % num_devices
                base = blocks[block_index] + p.slot_offset
                addrs = (
                    base
                    + np.arange(rows, dtype=np.intp)[:, None] * part.row_width
                    + lanes
                )
                raw[
                    base_row : base_row + rows,
                    p.col_offset : p.col_offset + p.length,
                ] = self.rank.devices[device].data[addrs]
        if col.kind == "int":
            padded = np.zeros((num_rows, 8), dtype=np.uint8)
            padded[:, : col.width] = raw
            return padded.view("<u8").ravel().tolist()
        flat = raw.tobytes()
        width = col.width
        return [flat[i * width : (i + 1) * width] for i in range(num_rows)]

    def _read_column_values_reference(
        self, region: str, column: str, num_rows: int
    ) -> List:
        """Naive row-at-a-time gather (kept for equivalence testing)."""
        col = self.layout.schema.column(column)
        runs = self.layout.column_runs(column)
        num_devices = self.rank.num_devices
        values = []
        for row in range(num_rows):
            rotation = self.rotation_of(region, row)
            raw = bytearray(col.width)
            for run in runs:
                p = run.placement
                addr = self.row_addr(region, run.part_index, row) + p.slot_offset
                device = (run.slot_index + rotation) % num_devices
                raw[p.col_offset : p.col_offset + p.length] = self.rank.device_read(
                    device, addr, p.length
                ).tobytes()
            values.append(col.decode(bytes(raw)))
        return values

    def cpu_scan_bytes(self, column: str, num_rows: int) -> int:
        """CPU bus traffic to scan a column sequentially (§4.1.2 fallback).

        The CPU must stream every part containing any byte of the column:
        each touched part costs ``W × d`` bytes per row.
        """
        parts = {run.part_index for run in self.layout.column_runs(column)}
        per_row = sum(
            self.layout.parts[p].row_width * self.rank.num_devices for p in parts
        )
        return per_row * num_rows

    # ------------------------------------------------------------------
    # Scan planning (for the OLAP operators)
    # ------------------------------------------------------------------
    def column_scan_plan(
        self, column: str, region: str, num_rows: int
    ) -> Iterator[BlockScan]:
        """Yield per-block scan work for a key column.

        ``num_rows`` bounds the scan (data region: the table's live rows;
        delta region: the materialized high-water mark).
        """
        run = self.layout.key_column_location(column)
        part = self.layout.parts[run.part_index]
        placement = run.placement
        blocks = self._region_blocks(region, run.part_index)
        bank_size = self.rank.devices[0].bank_size
        remaining = num_rows
        for block_index, block_base in enumerate(blocks):
            if remaining <= 0:
                break
            rows = min(self.block_rows, remaining)
            remaining -= rows
            rotation = self.placement.rotation_of_block(block_index)
            device = (run.slot_index + rotation) % self.rank.num_devices
            addr = block_base + placement.slot_offset
            yield BlockScan(
                block=block_index,
                base_row=block_index * self.block_rows,
                num_rows=rows,
                device=device,
                bank=block_base // bank_size,
                dram_addr=addr,
                stride=part.row_width,
                chunk=placement.length,
            )
