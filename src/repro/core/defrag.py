"""Defragmentation (§5.3): CPU, PIM, and hybrid strategies with Eq. 1–3.

After many transactions the data region accumulates superseded rows and
the delta region fills up. Defragmentation copies each updated row's
newest delta version back over its origin data row (rotations match by
construction, so every PIM unit can copy device-locally), truncates the
version chains, and empties the delta region. OLTP is paused meanwhile.

Two movement strategies exist; their communication costs are the paper's
Eq. 1 and Eq. 2, and Eq. 3 gives the row-width break-even point. The
*hybrid* strategy picks per table part (parts have different row widths,
§7.4/Fig. 12a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.snapshot import SnapshotManager
from repro.core.storage import TableStorage
from repro.errors import DefragError
from repro.mvcc.manager import MVCCManager
from repro.mvcc.metadata import METADATA_BYTES, Region, RowRef
from repro.telemetry import registry as telemetry
from repro.units import US

__all__ = [
    "Strategy",
    "comm_cpu_time",
    "comm_pim_time",
    "pim_breakeven_width",
    "DefragBreakdown",
    "DefragResult",
    "DefragExecutor",
]


class Strategy:
    """Defragmentation data-movement strategies."""

    CPU = "cpu"
    PIM = "pim"
    HYBRID = "hybrid"

    ALL = (CPU, PIM, HYBRID)


def comm_cpu_time(
    m: int, n: int, p: float, d: int, w: int, bdw_cpu: float
) -> float:
    """Eq. 1 — CPU-moved defragmentation communication time (ns).

    ``m`` metadata bytes, ``n`` delta rows, ``p`` the newest-version
    fraction, ``d`` devices, ``w`` row width (per device),
    ``bdw_cpu`` in bytes/ns.
    """
    _check_args(m, n, p, d, w)
    return (m * n + 2 * n * p * d * w) / bdw_cpu


def comm_pim_time(
    m: int, n: int, p: float, d: int, w: int, bdw_cpu: float, bdw_pim: float
) -> float:
    """Eq. 2 — PIM-moved defragmentation communication time (ns)."""
    _check_args(m, n, p, d, w)
    return (m * n + d * m * n) / bdw_cpu + (d * m * n + 2 * n * p * d * w) / bdw_pim


def pim_breakeven_width(m: int, p: float, bdw_cpu: float, bdw_pim: float) -> float:
    """Eq. 3 — row width above which the PIM strategy wins."""
    if bdw_pim <= bdw_cpu:
        raise DefragError("Eq. 3 requires bdw_pim > bdw_cpu")
    if p <= 0:
        raise DefragError("newest-version fraction p must be positive")
    return (bdw_pim + bdw_cpu) / (2 * p * (bdw_pim - bdw_cpu)) * m


def _check_args(m: int, n: int, p: float, d: int, w: int) -> None:
    if min(m, n, d, w) < 0 or not 0.0 <= p <= 1.0:
        raise DefragError(
            f"invalid defrag cost arguments m={m} n={n} p={p} d={d} w={w}"
        )


@dataclass
class DefragBreakdown:
    """Time breakdown of one defragmentation run (Fig. 11d)."""

    fixed: float = 0.0
    chain_traversal: float = 0.0
    metadata_read: float = 0.0
    broadcast: float = 0.0
    copy_cpu: float = 0.0
    copy_pim: float = 0.0

    @property
    def total(self) -> float:
        """Total defragmentation time."""
        return (
            self.fixed
            + self.chain_traversal
            + self.metadata_read
            + self.broadcast
            + self.copy_cpu
            + self.copy_pim
        )


@dataclass
class DefragResult:
    """Outcome of one defragmentation run."""

    strategy: str
    moved_rows: int
    delta_rows: int
    part_strategies: Dict[int, str]
    breakdown: DefragBreakdown

    @property
    def total_time(self) -> float:
        """Total defragmentation time in ns."""
        return self.breakdown.total


class DefragExecutor:
    """Performs defragmentation functionally and models its cost."""

    #: Fixed overhead per run: thread creation + PIM unit activation
    #: (amortized away above ~10k transactions, §7.4).
    DEFAULT_FIXED_OVERHEAD = 50.0 * US
    #: Modelled CPU cost of traversing one version chain entry.
    CHAIN_ENTRY_COST = 20.0

    def __init__(
        self,
        storage: TableStorage,
        mvcc: MVCCManager,
        snapshots: SnapshotManager,
        bdw_cpu: float,
        bdw_pim: float,
        fixed_overhead: float = DEFAULT_FIXED_OVERHEAD,
    ) -> None:
        self.storage = storage
        self.mvcc = mvcc
        self.snapshots = snapshots
        self.bdw_cpu = bdw_cpu
        self.bdw_pim = bdw_pim
        self.fixed_overhead = fixed_overhead

    # ------------------------------------------------------------------
    # Strategy planning
    # ------------------------------------------------------------------
    def plan(self, strategy: str, p: float) -> Dict[int, str]:
        """Assign a movement strategy to every table part.

        For :data:`Strategy.HYBRID`, parts wider than the Eq. 3 break-even
        width move via PIM units; narrower parts via the CPU.
        """
        if strategy not in Strategy.ALL:
            raise DefragError(f"unknown strategy {strategy!r}")
        if strategy != Strategy.HYBRID:
            return {part.index: strategy for part in self.storage.layout.parts}
        if self.bdw_pim > self.bdw_cpu:
            threshold = pim_breakeven_width(
                METADATA_BYTES, max(p, 1e-9), self.bdw_cpu, self.bdw_pim
            )
        else:
            # No crossover (Eq. 3): CPU movement always wins.
            threshold = float("inf")
        return {
            part.index: Strategy.PIM if part.row_width > threshold else Strategy.CPU
            for part in self.storage.layout.parts
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        ts: int,
        strategy: str = Strategy.HYBRID,
        tombstoned: Optional[Iterable[int]] = None,
        include_fixed: bool = True,
    ) -> DefragResult:
        """Defragment the table: move rows, truncate chains, reset bitmaps.

        ``ts`` is the quiesced timestamp (all transactions up to it are
        committed; OLTP is paused). Returns the modelled cost.
        ``tombstoned`` defaults to the MVCC manager's own deleted-row set;
        it must be captured *before* ``compact()`` folds pending
        tombstones into the permanent dead-row set and clears the log.
        ``include_fixed`` charges the per-pass fixed overhead (thread
        creation + PIM activation); a multi-table pass pays it once.
        """
        if tombstoned is None:
            tombstoned = self.mvcc.tombstoned_rows()
        else:
            tombstoned = list(tombstoned)
        n = self.mvcc.delta.high_water_rows
        chain_entries = self.mvcc.stale_version_count() + len(self.mvcc.updated_chains())
        moves: List[Tuple[int, RowRef]] = self.mvcc.compact()
        for row_id, delta_ref in moves:
            self.storage.copy_row(delta_ref, RowRef(Region.DATA, row_id))
        self.snapshots.rebuild_after_defrag(ts, self.mvcc.num_rows, tombstoned)

        p = len(moves) / n if n else 0.0
        part_plan = self.plan(strategy, p)
        breakdown = self._cost(n, p, part_plan, chain_entries)
        if not include_fixed:
            breakdown.fixed = 0.0
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("defrag.runs").inc()
            tel.counter("defrag.rows_moved").inc(len(moves))
            tel.counter("defrag.delta_rows_reclaimed").inc(n)
            tel.histogram("defrag.latency_ns").observe(breakdown.total)
            tel.record_span(
                "defrag.run",
                breakdown.total,
                {"strategy": strategy, "moved_rows": len(moves)},
            )
        return DefragResult(
            strategy=strategy,
            moved_rows=len(moves),
            delta_rows=n,
            part_strategies=part_plan,
            breakdown=breakdown,
        )

    def estimate(self, n: int, p: float, strategy: str = Strategy.HYBRID) -> DefragBreakdown:
        """Cost model only (no data movement) — used by sweeps."""
        part_plan = self.plan(strategy, p)
        chain_entries = int(n * p * 2)
        return self._cost(n, p, part_plan, chain_entries)

    def _cost(
        self, n: int, p: float, part_plan: Dict[int, str], chain_entries: int
    ) -> DefragBreakdown:
        """Sum the per-part Eq. 1 / Eq. 2 costs.

        Each part's movement pays its own metadata read (and, for the PIM
        strategy, its own broadcast) exactly as the equations are stated,
        which keeps the per-part Eq. 3 decision exact: the hybrid plan is
        never worse than either pure strategy.
        """
        breakdown = DefragBreakdown(fixed=self.fixed_overhead)
        if n == 0:
            return breakdown
        d = self.storage.rank.num_devices
        m = METADATA_BYTES
        breakdown.chain_traversal = chain_entries * self.CHAIN_ENTRY_COST
        for part in self.storage.layout.parts:
            w = part.row_width
            if part_plan[part.index] == Strategy.PIM:
                breakdown.metadata_read += m * n / self.bdw_cpu
                breakdown.broadcast += d * m * n / self.bdw_cpu + d * m * n / self.bdw_pim
                breakdown.copy_pim += 2 * n * p * d * w / self.bdw_pim
            else:
                breakdown.metadata_read += m * n / self.bdw_cpu
                breakdown.copy_cpu += 2 * n * p * d * w / self.bdw_cpu
        return breakdown
