"""Materialized views over the CH-bench query shapes (Q1, Q6, Q9).

Each view mirrors one query in :mod:`repro.olap.queries` — same
predicate constants (imported, not duplicated), same output ``rows``
dict — but keeps its aggregate state materialized so committed writes
fold in as weighted deltas. Q1 is a grouped linear aggregate, Q6 a
filtered linear aggregate, and Q9 a join view maintained via the chain
rule: each side keeps its own Z-set state and the joined aggregates are
recomposed on read (both sides are tiny keyed dicts, so recomposition
is a dictionary walk, not a table scan).

All arithmetic is on decoded Python ints, so view state is independent
of the :mod:`repro.perf` execution mode by construction.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import QueryError
from repro.ivm.zset import ZSet
from repro.olap.queries import (
    _Q1_DELIVERY_CUTOFF,
    _Q6_DELIVERY_HI,
    _Q6_DELIVERY_LO,
    _Q6_QTY_HI,
    _Q6_QTY_LO,
    _Q9_IM_CUTOFF,
)

__all__ = ["MaterializedView", "Q1View", "Q6View", "Q9View", "VIEW_FACTORIES", "make_view"]


class MaterializedView:
    """Base class: a named view folding weighted row deltas.

    ``columns`` maps each source table to the column tuple the view
    needs; :meth:`apply` receives rows as value tuples in exactly that
    column order.
    """

    #: Query name, matching the :data:`repro.olap.queries.QUERIES` key.
    name: str = ""
    #: table → columns (in ``apply`` row order) the view reads.
    columns: Mapping[str, Tuple[str, ...]] = {}

    def clear(self) -> None:
        """Reset to the empty-table state."""
        raise NotImplementedError

    def apply(self, table: str, row: Sequence[int], weight: int) -> None:
        """Fold one weighted row of ``table`` into the view state."""
        raise NotImplementedError

    def rows(self) -> Dict:
        """The query answer, bit-identical to the full-rescan ``rows``.

        Returns freshly built dicts — callers may hold the result across
        later folds without it mutating under them.
        """
        raise NotImplementedError


class Q1View(MaterializedView):
    """Q1: sums and counts of delivered orderlines grouped by ol_number."""

    name = "Q1"
    columns = {"orderline": ("ol_number", "ol_quantity", "ol_amount", "ol_delivery_d")}

    def __init__(self) -> None:
        # ol_number → [sum_qty, sum_amount, count]
        self._groups: Dict[int, list] = {}

    def clear(self) -> None:
        self._groups.clear()

    def apply(self, table: str, row: Sequence[int], weight: int) -> None:
        number, quantity, amount, delivery_d = row
        if delivery_d <= _Q1_DELIVERY_CUTOFF:
            return
        group = self._groups.get(number)
        if group is None:
            group = self._groups[number] = [0, 0, 0]
        group[0] += weight * quantity
        group[1] += weight * amount
        group[2] += weight
        if not (group[0] or group[1] or group[2]):
            del self._groups[number]

    def rows(self) -> Dict:
        # The rescan only emits groups with a non-zero count; a linear
        # aggregate can only reach count == 0 with both sums zero too
        # (every contribution was retracted), so dropping on count is
        # exactly the scan's behaviour.
        return {
            number: {"sum_qty": group[0], "sum_amount": group[1], "count": group[2]}
            for number, group in sorted(self._groups.items())
            if group[2]
        }


class Q6View(MaterializedView):
    """Q6: revenue over a delivery-date band and quantity band."""

    name = "Q6"
    columns = {"orderline": ("ol_delivery_d", "ol_quantity", "ol_amount")}

    def __init__(self) -> None:
        self._revenue = 0

    def clear(self) -> None:
        self._revenue = 0

    def apply(self, table: str, row: Sequence[int], weight: int) -> None:
        delivery_d, quantity, amount = row
        if (
            _Q6_DELIVERY_LO <= delivery_d < _Q6_DELIVERY_HI
            and _Q6_QTY_LO <= quantity <= _Q6_QTY_HI
        ):
            self._revenue += weight * amount

    def rows(self) -> Dict:
        return {"revenue": self._revenue}


class Q9View(MaterializedView):
    """Q9: orderline ⋈ item (low i_im_id) revenue, via the chain rule.

    The item side keeps a Z-set of qualifying item ids (weights track
    duplicates so retractions are exact, but membership is *distinct* —
    the hash join stages build keys in a set); the orderline side keeps
    per-item-id [sum_amount, count] over *all* visible orderlines. The
    joined answer recombines the two keyed states on read.
    """

    name = "Q9"
    columns = {
        "item": ("i_id", "i_im_id"),
        "orderline": ("ol_i_id", "ol_amount"),
    }

    def __init__(self) -> None:
        self._items = ZSet()  # i_id → multiplicity of qualifying items
        self._lines: Dict[int, list] = {}  # ol_i_id → [sum_amount, count]

    def clear(self) -> None:
        self._items.clear()
        self._lines.clear()

    def apply(self, table: str, row: Sequence[int], weight: int) -> None:
        if table == "item":
            i_id, i_im_id = row
            if i_im_id <= _Q9_IM_CUTOFF:
                self._items.add(i_id, weight)
            return
        ol_i_id, ol_amount = row
        line = self._lines.get(ol_i_id)
        if line is None:
            line = self._lines[ol_i_id] = [0, 0]
        line[0] += weight * ol_amount
        line[1] += weight
        if not (line[0] or line[1]):
            del self._lines[ol_i_id]

    def rows(self) -> Dict:
        revenue = 0
        matches = 0
        for key, (sum_amount, count) in self._lines.items():
            if self._items.weight(key):
                revenue += sum_amount
                matches += count
        return {"revenue": revenue, "matches": matches}


VIEW_FACTORIES = {view.name: view for view in (Q1View, Q6View, Q9View)}


def make_view(name: str) -> MaterializedView:
    """Instantiate the view for ``name`` (raises QueryError if unknown)."""
    try:
        factory = VIEW_FACTORIES[name]
    except KeyError:
        raise QueryError(f"no incremental view registered for query {name!r}") from None
    return factory()
