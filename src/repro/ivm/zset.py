"""Z-set primitives: weighted multisets and MVCC record deltas.

A Z-set maps values to signed integer weights; a weight of zero
annihilates the entry. Committed writes translate into weighted row
deltas (the DBSP change-stream encoding):

* insert → ``(new_row, +1)``
* delete → ``(old_row, -1)``
* update → ``(old_row, -1), (new_row, +1)``

Linear view operators fold these pairs directly into their state; the
join view composes two linear halves via the chain rule.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterator, Sequence, Tuple

from repro.errors import QueryError
from repro.mvcc.manager import UpdateRecord

__all__ = ["ZSet", "record_deltas"]

#: Decoded row, as a tuple of column values in the view's column order.
Row = Tuple[int, ...]

#: Reads the named columns of one row version (``RowRef`` → values).
RowReader = Callable[[object], Sequence[int]]


class ZSet:
    """A weighted multiset over hashable values.

    Only non-zero weights are stored: adding an opposite weight removes
    the entry entirely, so a fully retracted value leaves no residue
    (important for bit-identical comparison against rescans).
    """

    __slots__ = ("_weights",)

    def __init__(self) -> None:
        self._weights: Dict[Hashable, int] = {}

    def add(self, value: Hashable, weight: int = 1) -> None:
        """Fold ``weight`` into ``value``'s entry (zero annihilates)."""
        total = self._weights.get(value, 0) + weight
        if total:
            self._weights[value] = total
        else:
            self._weights.pop(value, None)

    def weight(self, value: Hashable) -> int:
        """The current weight of ``value`` (0 when absent)."""
        return self._weights.get(value, 0)

    def items(self) -> Iterator[Tuple[Hashable, int]]:
        """All (value, weight) pairs with non-zero weight."""
        return iter(self._weights.items())

    def clear(self) -> None:
        """Drop all entries."""
        self._weights.clear()

    def __contains__(self, value: Hashable) -> bool:
        return value in self._weights

    def __len__(self) -> int:
        return len(self._weights)


def record_deltas(
    record: UpdateRecord, read: RowReader
) -> Iterator[Tuple[Sequence[int], int]]:
    """The weighted row deltas of one committed MVCC log record.

    ``read`` resolves a :class:`~repro.mvcc.manager.RowRef` to the view's
    column values. Old versions stay readable until defragmentation
    compacts the delta region, and defrag marks every view for a full
    resync before that happens, so both sides of an update are always
    materializable here.
    """
    if record.kind == "update":
        yield read(record.prev_ref), -1
        yield read(record.new_ref), +1
    elif record.kind == "insert":
        yield read(record.new_ref), +1
    elif record.kind == "delete":
        yield read(record.prev_ref), -1
    else:  # pragma: no cover - the log only ever holds the three kinds
        raise QueryError(f"unknown update-log record kind: {record.kind!r}")
