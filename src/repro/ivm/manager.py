"""The IVM manager: registered views, delta folding, and resync.

One :class:`IVMManager` serves one engine. Each registered view carries
a *view timestamp* — the snapshot its state reflects. Answering a query
first refreshes the view to the query timestamp:

* normally by folding ``log_between(view_ts, ts)`` into weighted row
  deltas (reading only the touched versions' view columns), charged to
  the simulated CPU per byte moved plus a small per-delta apply cost;
* after defragmentation by a full resync from the MVCC visibility
  bitmaps at the new horizon — ``compact()`` drops the update log and
  releases superseded delta versions, so the change feed can no longer
  bridge the gap.

Refresh cost accounting goes through the same
:meth:`~repro.olap.engine.QueryTiming.add_cpu_bytes` channel as a
rescan's CPU glue, so incremental and rescan answers are directly
comparable in simulated time. All state is decoded-int arithmetic —
independent of the :mod:`repro.perf` mode by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.errors import QueryError
from repro.ivm.views import MaterializedView, make_view
from repro.ivm.zset import record_deltas
from repro.mvcc.metadata import METADATA_BYTES, Region, RowRef
from repro.olap.engine import QueryTiming
from repro.olap.queries import QueryResult
from repro.telemetry import registry as telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import PushTapEngine

__all__ = ["IVMManager", "ViewStats"]

#: CPU nanoseconds to fold one weighted row delta into view state
#: (hash-map update; same order as the engine's per-element merge cost).
_APPLY_NS_PER_DELTA = 0.5


@dataclass
class ViewStats:
    """Lifetime maintenance counters of one registered view."""

    applied_records: int = 0
    folded_rows: int = 0
    recomputes: int = 0


class IVMManager:
    """Registers and incrementally maintains materialized views."""

    def __init__(self, engine: "PushTapEngine") -> None:
        self.engine = engine
        self.views: Dict[str, MaterializedView] = {}
        self._view_ts: Dict[str, int] = {}
        self._dirty: Dict[str, bool] = {}
        self._stats: Dict[str, ViewStats] = {}
        # Per-(view, table) cached column widths (bytes per folded row).
        self._widths: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str) -> MaterializedView:
        """Register (and initially populate) the view for query ``name``.

        The initial population reads the current snapshot but is not
        charged — it is load-time work, like the initial table load.
        Registering an already-registered view is a no-op.
        """
        if name in self.views:
            return self.views[name]
        view = make_view(name)
        for table, columns in view.columns.items():
            runtime = self.engine.db.table(table)  # raises on unknown table
            schema = runtime.storage.layout.schema
            self._widths[(name, table)] = sum(
                schema.column(column).width for column in columns
            )
        self.views[name] = view
        self._stats[name] = ViewStats()
        self._dirty[name] = True
        self._view_ts[name] = 0
        self._recompute(name, self.engine.db.oracle.read_timestamp(), timing=None)
        return view

    def covers(self, names: Iterable[str]) -> bool:
        """Whether every query in ``names`` has a registered view."""
        return all(name in self.views for name in names)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def answer(self, name: str, ts: int) -> QueryResult:
        """The view's answer at ``ts``, refreshing its state first.

        Bit-identical to ``run_query(name, ...)`` at the same ``ts``;
        the returned timing carries the refresh cost (zero when the view
        is already at ``ts``).
        """
        if name not in self.views:
            raise QueryError(f"query {name!r} has no registered incremental view")
        result = QueryResult(name)
        self.refresh(name, ts, result.timing)
        result.rows = self.views[name].rows()
        return result

    def refresh(self, name: str, ts: int, timing: QueryTiming) -> None:
        """Bring one view to ``ts``, charging the work to ``timing``."""
        if self._dirty[name]:
            self._recompute(name, ts, timing)
            return
        last = self._view_ts[name]
        if ts == last:
            return
        view = self.views[name]
        stats = self._stats[name]
        bandwidth = self.engine.olap.config.total_cpu_bandwidth
        nbytes = 0
        records = 0
        folded = 0
        for table, columns in view.columns.items():
            runtime = self.engine.db.table(table)
            storage = runtime.storage
            width = self._widths[(name, table)]

            def read(ref: RowRef, _cols=columns, _storage=storage) -> Tuple[int, ...]:
                values = _storage.read_row(ref, _cols)
                return tuple(values[column] for column in _cols)

            for record in runtime.mvcc.log_between(last, ts):
                records += 1
                nbytes += METADATA_BYTES
                for row, weight in record_deltas(record, read):
                    view.apply(table, row, weight)
                    nbytes += width
                    folded += 1
        self._view_ts[name] = ts
        stats.applied_records += records
        stats.folded_rows += folded
        timing.add_cpu_bytes(nbytes, bandwidth)
        timing.cpu_time += folded * _APPLY_NS_PER_DELTA
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("ivm.applied_records").inc(records)
            tel.counter("ivm.folded_rows").inc(folded)

    def on_defrag(self, ts: int) -> None:
        """Mark every view for a full resync.

        Defragmentation compacts the delta region and clears the update
        log, so delta folding cannot cross it; each view recomputes from
        the post-defrag snapshot on its next refresh.
        """
        for name in self.views:
            self._dirty[name] = True
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("ivm.defrag_resyncs").inc(len(self.views))

    def _recompute(self, name: str, ts: int, timing: Optional[QueryTiming]) -> None:
        """Rebuild one view from the MVCC visibility bitmaps at ``ts``."""
        view = self.views[name]
        bandwidth = self.engine.olap.config.total_cpu_bandwidth
        view.clear()
        nbytes = 0
        folded = 0
        for table, columns in view.columns.items():
            runtime = self.engine.db.table(table)
            storage = runtime.storage
            mvcc = runtime.mvcc
            width = self._widths[(name, table)]
            # visible_refs_at never observes reads — recomputing a view
            # must not perturb MVCC read-timestamp metadata.
            data_bits, delta_bits = mvcc.visible_refs_at(ts, mvcc.delta.high_water_rows)
            for region, bits in ((Region.DATA, data_bits), (Region.DELTA, delta_bits)):
                for index in np.nonzero(bits)[0]:
                    values = storage.read_row(RowRef(region, int(index)), columns)
                    view.apply(table, tuple(values[c] for c in columns), 1)
                    nbytes += width
                    folded += 1
        self._view_ts[name] = ts
        self._dirty[name] = False
        self._stats[name].recomputes += 1
        self._stats[name].folded_rows += folded
        if timing is not None:
            timing.add_cpu_bytes(nbytes, bandwidth)
            timing.cpu_time += folded * _APPLY_NS_PER_DELTA
        tel = telemetry.active()
        if tel.enabled:
            tel.counter("ivm.recomputes").inc()

    # ------------------------------------------------------------------
    # Cost estimation / introspection (for the serve scheduler)
    # ------------------------------------------------------------------
    def pending_records(self, upto_ts: Optional[int] = None) -> int:
        """Log records the next refresh of all views would fold.

        Counts per (view, table) — a record feeding two views is work
        twice, exactly as :meth:`refresh` will pay it.
        """
        ts = self.engine.db.oracle.read_timestamp() if upto_ts is None else upto_ts
        total = 0
        for name, view in self.views.items():
            if self._dirty[name]:
                continue
            for table in view.columns:
                mvcc = self.engine.db.table(table).mvcc
                total += mvcc.log_count_between(self._view_ts[name], ts)
        return total

    def estimate_refresh_time(self, upto_ts: Optional[int] = None) -> float:
        """Estimated simulated ns to refresh every view to ``upto_ts``.

        Deterministic and mode-independent: pending record counts times
        a per-record byte bound (metadata plus both versions' view
        columns), over the CPU bandwidth, plus the per-delta apply cost.
        Dirty views are estimated at full-recompute cost (visible rows
        unknown without doing the work, so the live row count bounds it).
        """
        ts = self.engine.db.oracle.read_timestamp() if upto_ts is None else upto_ts
        bandwidth = self.engine.olap.config.total_cpu_bandwidth
        nbytes = 0.0
        deltas = 0.0
        for name, view in self.views.items():
            for table in view.columns:
                mvcc = self.engine.db.table(table).mvcc
                width = self._widths[(name, table)]
                if self._dirty[name]:
                    rows = mvcc.num_rows
                    nbytes += rows * width
                    deltas += rows
                else:
                    pending = mvcc.log_count_between(self._view_ts[name], ts)
                    nbytes += pending * (METADATA_BYTES + 2 * width)
                    deltas += 2 * pending
        return nbytes / bandwidth + deltas * _APPLY_NS_PER_DELTA

    def staleness_txns(self, name: str) -> int:
        """Committed timestamps the view trails the oracle by."""
        return self.engine.db.oracle.read_timestamp() - self._view_ts[name]

    def report(self) -> Dict:
        """Per-view staleness and maintenance counters (JSON-friendly)."""
        views = {}
        for name in sorted(self.views):
            stats = self._stats[name]
            views[name] = {
                "view_ts": self._view_ts[name],
                "staleness_txns": self.staleness_txns(name),
                "applied_records": stats.applied_records,
                "folded_rows": stats.folded_rows,
                "recomputes": stats.recomputes,
            }
        return {
            "views": views,
            "applied_records": sum(s.applied_records for s in self._stats.values()),
            "folded_rows": sum(s.folded_rows for s in self._stats.values()),
            "recomputes": sum(s.recomputes for s in self._stats.values()),
        }
