"""Incremental view maintenance (IVM) over the MVCC change feed.

DBSP-style delta processing: each registered analytical view is a
*linear* (or chain-rule-composed) operator over the table's row
multiset, so the view's materialized state can be updated by folding
the weighted Z-set deltas of committed writes — ``(old, -1)``/
``(new, +1)`` pairs read straight from
:meth:`~repro.mvcc.manager.MVCCManager.log_between` — instead of
rescanning the full table on every analytical flush.

The layer deals only in *logical* rows (decoded column values), so its
results are bit-identical in both :mod:`repro.perf` execution modes;
the cost of reading and folding deltas is charged to the simulated CPU
through :meth:`~repro.olap.engine.QueryTiming.add_cpu_bytes`, exactly
like the CPU glue of a full scan.
"""

from repro.ivm.manager import IVMManager
from repro.ivm.views import VIEW_FACTORIES, MaterializedView, make_view
from repro.ivm.zset import ZSet, record_deltas

__all__ = [
    "IVMManager",
    "MaterializedView",
    "VIEW_FACTORIES",
    "make_view",
    "ZSet",
    "record_deltas",
]
