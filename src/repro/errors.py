"""Exception hierarchy for the PUSHtap reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A system configuration is inconsistent or out of supported range."""


class LayoutError(ReproError):
    """A data layout could not be generated or is used inconsistently."""


class SchemaError(ReproError):
    """A table schema is malformed (duplicate columns, bad widths, ...)."""


class MemoryError_(ReproError):
    """A simulated memory access is out of bounds or misaligned.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`MemoryError`.
    """


class ProtocolError(ReproError):
    """A launch/poll request payload is malformed (Fig. 7b encoding)."""


class TransactionError(ReproError):
    """A transaction could not be executed (conflict, missing row, ...)."""


class TransactionAborted(TransactionError):
    """Raised when concurrency control aborts a transaction."""


class QueryError(ReproError):
    """An analytical query plan is malformed or references unknown data."""


class SnapshotError(ReproError):
    """Snapshot bitmaps are inconsistent with MVCC metadata."""


class DefragError(ReproError):
    """Defragmentation failed or was invoked in an invalid state."""


class InvariantViolation(ReproError):
    """A cross-subsystem consistency invariant failed to hold.

    Raised by the fault-injection harness's invariant checker when an
    injected fault corrupted state instead of being absorbed gracefully.
    """


class WALError(ReproError):
    """The write-ahead log or leveled store is corrupt or inconsistent.

    A torn tail (partial final record after a crash) is *not* an error —
    recovery truncates it. This is raised for corruption that cannot be
    explained by a single interrupted append, e.g. a bad CRC in the
    middle of the log or a manifest referencing a missing segment.
    """


class ParallelExecutionError(ReproError):
    """A parallel shard worker diverged from the coordinator's plan.

    Raised when a worker observes an outcome the plan pass did not
    predict (e.g. a single-shard transaction aborting, or a prepare
    voting no) — the parallel run cannot be merged deterministically
    and must not silently differ from ``jobs=1``.
    """


class SimulatedCrash(ReproError):
    """An injected process crash (fault-harness ``crash_*`` hooks).

    Deliberately derives from :class:`ReproError` but not from
    :class:`TransactionError`: the OLTP engine must *not* treat it as an
    abort and roll back — a crash kills the process with whatever state
    has (or has not) reached the write-ahead log.
    """
