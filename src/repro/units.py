"""Unit conventions and conversion helpers.

The whole library uses a single convention so cost models compose without
conversion mistakes:

* **time** — nanoseconds, stored as ``float``
* **size** — bytes, stored as ``int``
* **bandwidth** — bytes per nanosecond (numerically equal to GB/s)

This module provides named constants and converters so call sites read
naturally (``0.2 * US`` instead of ``200.0``).
"""

from __future__ import annotations

#: One nanosecond (the base time unit).
NS: float = 1.0
#: One microsecond in nanoseconds.
US: float = 1_000.0
#: One millisecond in nanoseconds.
MS: float = 1_000_000.0
#: One second in nanoseconds.
S: float = 1_000_000_000.0

#: One kibibyte in bytes.
KIB: int = 1024
#: One mebibyte in bytes.
MIB: int = 1024 * 1024
#: One gibibyte in bytes.
GIB: int = 1024 * 1024 * 1024


def gb_per_s(value: float) -> float:
    """Convert a bandwidth in GB/s to bytes/ns.

    The two are numerically equal (1 GB/s = 1e9 B / 1e9 ns), so this is an
    identity that exists purely to document intent at call sites.
    """
    return float(value)


def to_us(time_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return time_ns / US


def to_ms(time_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return time_ns / MS


def to_s(time_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return time_ns / S


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div dividend must be non-negative, got {a}")
    return -(-a // b)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple
