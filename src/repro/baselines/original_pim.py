"""The original general-purpose PIM architecture baseline (§7.5).

The original (unmodified UPMEM-like) architecture differs from PUSHtap
only in communication overhead: every offload messages every PIM unit
individually and the DRAM banks stay locked through compute phases. Both
run the same two-phase execution (§6.2), so the comparison isolates the
controller extension (Fig. 12b).

Functionally this baseline is :class:`repro.pim.controller.OriginalController`
(pass ``controller_kind="original"`` to :meth:`PushTapEngine.build`);
analytically it is ``column_scan_cost(..., controller_kind="original")``.
This module provides the sweep helper the Fig. 12b experiment uses.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.config import SystemConfig
from repro.olap.cost import ScanCost, column_scan_cost

__all__ = ["wram_sweep"]


def wram_sweep(
    config: SystemConfig,
    num_rows: int,
    column_width: int,
    wram_sizes: Sequence[int],
    controller_kind: str,
) -> Dict[int, ScanCost]:
    """Scan cost across WRAM sizes for one controller (Fig. 12b).

    Larger WRAM means fewer load phases and hence fewer mode switches —
    which matters enormously for the original architecture and barely for
    PUSHtap.
    """
    return {
        wram: column_scan_cost(
            config,
            num_rows,
            column_width,
            controller_kind=controller_kind,
            wram_bytes=wram,
        )
        for wram in wram_sizes
    }
