"""The *ideal* OLAP baseline (§7.3.2).

Ideal assumes every scanned column is already perfectly compact in PIM
memory: execution time is pure scanning (plus unavoidable two-phase
control), with no consistency work — no snapshot, no rebuild, no
defragmentation, no padding. It lower-bounds every real design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.config import SystemConfig
from repro.olap.cost import ScanCost, column_scan_cost

__all__ = ["IdealOLAPModel"]


@dataclass(frozen=True)
class IdealOLAPModel:
    """Analytic ideal-scan cost for a set of (rows, width) columns."""

    config: SystemConfig

    def column_time(self, num_rows: int, width: int) -> ScanCost:
        """Scan one compact column."""
        return column_scan_cost(self.config, num_rows, width)

    def query_time(self, columns: Sequence[Tuple[int, int]]) -> float:
        """Serial scan time of a query's columns: ``(rows, width)`` pairs.

        Multi-column queries scan columns serially with full PIM
        parallelism per scan (§6.3).
        """
        return sum(self.column_time(rows, width).total_time for rows, width in columns)
