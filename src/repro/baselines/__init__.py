"""Baselines the paper compares against (§7.3): RS/CS formats, the
multi-instance (MI) design, the ideal scan bound, the original PIM
architecture, and the analytic PUSHtap model used for full-scale
extrapolation."""

from repro.baselines.ideal import IdealOLAPModel
from repro.baselines.multi_instance import MultiInstanceModel, RebuildCost
from repro.baselines.original_pim import wram_sweep
from repro.baselines.pushtap_model import PushTapQueryModel

__all__ = [
    "IdealOLAPModel",
    "MultiInstanceModel",
    "RebuildCost",
    "wram_sweep",
    "PushTapQueryModel",
]
