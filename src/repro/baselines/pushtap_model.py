"""Analytic PUSHtap query model for full-scale extrapolation (Fig. 9b/10/11).

Mirrors :class:`repro.baselines.multi_instance.MultiInstanceModel` for the
PUSHtap single-instance design: instead of rebuilding a replica, a query
pays (1) an incremental bitmap **snapshot** over the transactions
committed since the last snapshot, (2) its share of the periodic
**defragmentation**, and (3) a scan slowed by the layout's PIM efficiency
and by **fragmentation** — delta-region rows accumulated since the last
defragmentation are streamed too, because sub-8 B holes cannot be skipped
(§7.4, Fig. 11b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.defrag import comm_cpu_time, comm_pim_time, pim_breakeven_width
from repro.errors import QueryError
from repro.mvcc.metadata import METADATA_BYTES
from repro.olap.cost import column_scan_cost
from repro.units import US

__all__ = ["PushTapQueryModel"]

#: Modelled CPU bytes to update bitmap copies per replayed log record.
_BITMAP_BYTES_PER_RECORD = 16


@dataclass(frozen=True)
class PushTapQueryModel:
    """Analytic PUSHtap OLAP cost at arbitrary scale.

    ``pim_efficiency`` is the layout's effective PIM bandwidth (0.974 at
    th = 0.6, §7.2); ``part_widths`` are the row widths of the scanned
    tables' parts (drives the hybrid defragmentation split);
    ``writes_per_txn``/``avg_row_bytes`` characterize the OLTP mix.
    """

    config: SystemConfig
    pim_efficiency: float = 0.944
    writes_per_txn: float = 5.0
    avg_row_bytes: int = 52
    part_widths: Tuple[int, ...] = (32, 8, 8, 6, 4, 2)
    defrag_period: int = 10_000
    defrag_fixed_overhead: float = 50.0 * US
    #: Per-transaction version metadata the query-time snapshot must still
    #: touch (chains created since the last analytical query) — the slowly
    #: growing consistency component of Fig. 9b.
    lazy_metadata_bytes_per_txn: float = 10.0

    def snapshot_time(self, pending_txns: int) -> float:
        """Incremental snapshot over ``pending_txns`` unreplayed txns."""
        if pending_txns < 0:
            raise QueryError("pending_txns must be non-negative")
        records = pending_txns * self.writes_per_txn
        cpu_bytes = records * (METADATA_BYTES + _BITMAP_BYTES_PER_RECORD)
        return cpu_bytes / self.config.total_cpu_bandwidth

    def defrag_time(self, num_txns: int, strategy: str = "hybrid") -> float:
        """One defragmentation after ``num_txns`` transactions (§5.3)."""
        n = num_txns * self.writes_per_txn
        if n <= 0:
            return self.defrag_fixed_overhead
        p = 0.9  # most delta rows are newest versions at defrag time
        d = self.config.geometry.devices_per_rank
        bdw_cpu = self.config.total_cpu_bandwidth
        bdw_pim = self.config.total_pim_bandwidth
        # When CPU bandwidth exceeds aggregate PIM bandwidth (the HBM
        # system), Eq. 3 has no crossover: CPU movement always wins.
        threshold = (
            pim_breakeven_width(METADATA_BYTES, p, bdw_cpu, bdw_pim)
            if bdw_pim > bdw_cpu
            else float("inf")
        )
        total = self.defrag_fixed_overhead
        share = n / len(self.part_widths)
        for width in self.part_widths:
            use_pim = (
                strategy == "pim"
                or (strategy == "hybrid" and width > threshold)
            )
            if use_pim:
                cost = comm_pim_time(
                    METADATA_BYTES, int(share), p, d, width, bdw_cpu, bdw_pim
                )
            else:
                cost = comm_cpu_time(METADATA_BYTES, int(share), p, d, width, bdw_cpu)
            total += cost
        return total

    def query_consistency(self, num_txns: int) -> float:
        """Consistency work charged to one query after ``num_txns`` (Fig. 9b).

        Periodic defragmentation runs during the OLTP phase (its cost
        lands on transactions, Fig. 11a); the query itself pays the
        incremental snapshot over the pending window (at most one
        defragmentation period), at most one defragmentation, and a
        linearly growing metadata-touch component for the version chains
        accumulated since the last analytical query.
        """
        pending = min(num_txns, self.defrag_period)
        lazy = num_txns * self.lazy_metadata_bytes_per_txn / self.config.total_cpu_bandwidth
        return self.snapshot_time(pending) + self.defrag_time(pending) + lazy

    def amortized_consistency(self, num_txns: int) -> float:
        """Total snapshot + defragmentation over ``num_txns`` transactions.

        Unlike :meth:`query_consistency` this charges *every* periodic
        defragmentation run — the quantity Fig. 11a/b amortize over the
        OLTP stream.
        """
        runs = num_txns // self.defrag_period
        pending = num_txns % self.defrag_period
        return runs * self.defrag_time(self.defrag_period) + self.snapshot_time(pending)

    def scan_time(
        self, columns: Sequence[Tuple[int, int]], delta_fraction: float = 0.0
    ) -> float:
        """Serial column scans at the layout's PIM efficiency.

        ``delta_fraction`` inflates the scan by the un-defragmented delta
        rows that must be streamed alongside live data (Fig. 11b).
        """
        if delta_fraction < 0:
            raise QueryError("delta_fraction must be non-negative")
        total = 0.0
        for rows, width in columns:
            effective_rows = int(rows * (1.0 + delta_fraction))
            footprint = max(width, int(round(width / self.pim_efficiency)))
            total += column_scan_cost(
                self.config, effective_rows, width, part_row_width=footprint
            ).total_time
        return total

    def pending_delta_fraction(self, num_txns: int, base_rows: int) -> float:
        """Un-defragmented delta rows relative to the scanned rows."""
        pending = min(num_txns, self.defrag_period)
        return pending * self.writes_per_txn / max(base_rows, 1)

    def query_time(
        self, columns: Sequence[Tuple[int, int]], num_txns: int
    ) -> float:
        """End-to-end query time after ``num_txns`` transactions."""
        base_rows = max(sum(rows for rows, _ in columns), 1)
        delta_fraction = self.pending_delta_fraction(num_txns, base_rows)
        return self.query_consistency(num_txns) + self.scan_time(
            columns, delta_fraction
        )
