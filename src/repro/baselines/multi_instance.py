"""The multi-instance (MI) PIM-based HTAP baseline (§7.3.2).

MI adapts Polynesia [6] to the same general-purpose DIMM-based PIM
substrate as PUSHtap: a row-store primary instance in CPU memory plus a
column-store replica in PIM memory. Transactions append to a log; before
an analytical query the replica must be **rebuilt** for freshness:

1. the CPU transfers all new-versioned rows and their metadata to the
   DRAM banks holding the replica, then
2. general-purpose PIM units merge the metadata and copy the new-versioned
   data into the columns.

The analytical scan itself then runs at ideal column-store efficiency.
The rebuild is what costs MI its OLAP performance and freshness — the
effect Fig. 9b and Fig. 10 quantify.

``MI (HBM)`` (the paper's comparison against original Polynesia) uses a
dedicated rebuild accelerator; per §7.3.2 the paper estimates its cost
*relative to CPU-based consistency*, which :class:`MultiInstanceModel`
exposes via ``accelerator_speedup``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.config import SystemConfig
from repro.errors import QueryError
from repro.mvcc.metadata import METADATA_BYTES
from repro.olap.cost import column_scan_cost
from repro.units import US

__all__ = ["RebuildCost", "MultiInstanceModel"]


@dataclass(frozen=True)
class RebuildCost:
    """Breakdown of one replica rebuild."""

    fixed: float
    transfer_time: float
    merge_time: float

    @property
    def total(self) -> float:
        """Total rebuild time in ns."""
        return self.fixed + self.transfer_time + self.merge_time


@dataclass(frozen=True)
class MultiInstanceModel:
    """Analytic model of the MI baseline.

    ``avg_row_bytes`` is the average updated-row size;
    ``writes_per_txn`` the average row writes per transaction;
    ``accelerator_speedup`` > 1 models the dedicated rebuild hardware of
    the HBM variant (1.0 = general-purpose PIM units, the DIMM variant).
    """

    config: SystemConfig
    avg_row_bytes: int = 130
    writes_per_txn: float = 5.0
    fixed_overhead: float = 50.0 * US
    accelerator_speedup: float = 1.0

    def rebuild_cost(self, num_txns: int) -> RebuildCost:
        """Rebuild after ``num_txns`` transactions touched the primary."""
        if num_txns < 0:
            raise QueryError("num_txns must be non-negative")
        rows = num_txns * self.writes_per_txn
        payload = rows * (self.avg_row_bytes + METADATA_BYTES)
        transfer = payload / self.config.total_cpu_bandwidth
        merge = rows * (METADATA_BYTES + 2 * self.avg_row_bytes) / (
            self.config.total_pim_bandwidth
        )
        speedup = max(self.accelerator_speedup, 1e-9)
        return RebuildCost(
            fixed=self.fixed_overhead,
            transfer_time=transfer / speedup,
            merge_time=merge / speedup,
        )

    def scan_time(self, columns: Sequence[Tuple[int, int]]) -> float:
        """Replica scan time: columns are compact in the replica."""
        return sum(
            column_scan_cost(self.config, rows, width).total_time
            for rows, width in columns
        )

    def query_time(self, columns: Sequence[Tuple[int, int]], num_txns: int) -> float:
        """Rebuild-then-scan query time after ``num_txns`` transactions."""
        return self.rebuild_cost(num_txns).total + self.scan_time(columns)

    def log_bytes_per_txn(self) -> float:
        """CPU log/replication traffic each transaction adds."""
        return self.writes_per_txn * (self.avg_row_bytes + METADATA_BYTES)
