"""The adaptive HTAP scheduler: when to flip banks into PIM mode.

PUSHtap's cheap bank mode switch (§3) makes OLAP affordable *between*
transactions, but every analytical launch still pays a per-launch
handover unless launches are batched under one switch
(:meth:`~repro.core.engine.PushTapEngine.query_batch`).  The scheduler
decides **when** that flip happens:

* ``naive`` — switch per query: every queued analytical query runs
  immediately through :meth:`~repro.core.engine.PushTapEngine.query`,
  paying the handover on each ``LS`` launch.  Minimum freshness lag,
  maximum switch overhead.
* ``batched`` — accumulate queued OLAP queries until ``batch_threshold``
  of them wait (or the oldest has waited ``max_wait_ns``), then flush
  the whole batch under one mode switch.  The skipped per-launch
  handovers are counted in ``pim.controller.handovers_saved`` — that
  counter *is* the throughput gap against ``naive``.
* ``freshness`` — flush when the OLAP snapshot's staleness (committed
  transactions since the last flush) exceeds ``freshness_sla_txns``,
  bounding how stale analytics may get regardless of queue depth; the
  batch threshold and max-wait still apply as upper bounds.

Transactions always take priority over an un-triggered OLAP queue (OLTP
latency is the tighter SLO); defragmentation preempts both, since a full
delta region blocks the write path entirely.

The :data:`~repro.faults.plan.SCHEDULER_STALL` hook models missed
dispatch ticks: the scheduler sits idle for 1–3 ticks while OLAP backs
up, then recovers — queued queries must drain with accounting intact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.core.engine import PushTapEngine
from repro.errors import ConfigError
from repro.faults import injector as faults
from repro.faults import plan as fault_plan
from repro.mvcc.timestamps import TimestampOracle
from repro.serve.admission import Request
from repro.telemetry import registry as telemetry
from repro.telemetry.metrics import Histogram

__all__ = ["POLICIES", "Action", "FreshnessTracker", "HTAPScheduler", "SchedulerStats"]

POLICIES = ("naive", "batched", "freshness")


class FreshnessTracker:
    """Measures OLAP snapshot lag in committed-transaction timestamps.

    *Staleness* is how many transactions have committed since the last
    analytical flush — the quantity the ``freshness`` policy bounds.
    *Per-query lag* is how many transactions committed while one query
    sat in the queue (horizon at dispatch minus horizon at arrival) —
    the price a query pays for batching.
    *Snapshot lag* is the simulated time between consecutive flush
    completions — how long the analytical horizon trailed the commit
    horizon.  It is the lag axis the incremental-vs-rescan ablation
    compares: unlike staleness-at-flush, it is not deflated when a slow
    rescan backlogs OLAP arrivals into back-to-back flushes.
    """

    def __init__(self, oracle: TimestampOracle) -> None:
        self.oracle = oracle
        self.last_snapshot_ts = oracle.read_timestamp()
        self.lag = Histogram("serve.freshness.lag_txns")
        self.staleness_at_flush = Histogram("serve.freshness.staleness_txns")
        self.max_staleness = 0
        self.last_flush_time = 0.0
        self.flush_gap = Histogram("serve.freshness.flush_gap_ns")

    def staleness(self) -> int:
        """Committed transactions since the last analytical flush."""
        return self.oracle.read_timestamp() - self.last_snapshot_ts

    def note_query(self, arrival_horizon: int) -> int:
        """Record one dispatched query's lag; returns it."""
        lag = self.oracle.read_timestamp() - arrival_horizon
        self.lag.observe(lag)
        return lag

    def note_flush(self, now: float = 0.0) -> None:
        """An analytical flush just completed at simulated time ``now``."""
        staleness = self.staleness()
        self.staleness_at_flush.observe(staleness)
        self.max_staleness = max(self.max_staleness, staleness)
        self.last_snapshot_ts = self.oracle.read_timestamp()
        self.flush_gap.observe(now - self.last_flush_time)
        self.last_flush_time = now
        tel = telemetry.active()
        if tel.enabled:
            tel.gauge("serve.freshness.staleness_txns").set(staleness)

    def report(self) -> Dict[str, object]:
        # A run can end before any analytical flush; the mean staleness
        # is then explicitly 0.0 rather than whatever an empty histogram
        # yields (a NaN would poison the JSON report downstream).
        if self.staleness_at_flush.count:
            mean_staleness = self.staleness_at_flush.mean
        else:
            mean_staleness = 0.0
        return {
            "max_staleness_txns": self.max_staleness,
            "mean_staleness_txns": mean_staleness,
            "max_snapshot_lag_ns": (
                self.flush_gap.max if self.flush_gap.count else 0.0
            ),
            "mean_snapshot_lag_ns": (
                self.flush_gap.mean if self.flush_gap.count else 0.0
            ),
            "lag_txns": {
                "count": self.lag.count,
                "mean": self.lag.mean,
                "p50": self.lag.p50,
                "p95": self.lag.p95,
                "p99": self.lag.p99,
                "max": self.lag.max,
            },
        }


@dataclass
class SchedulerStats:
    """Dispatch counters of one serve run."""

    oltp_dispatched: int = 0
    olap_dispatched: int = 0
    olap_batches: int = 0
    batched_queries: int = 0
    defrag_dispatched: int = 0
    stalls: int = 0
    stall_ticks: int = 0
    #: Flushes answered by folding view deltas vs by full rescan (the
    #: per-flush apply-vs-rescan decision; rescan counts non-naive
    #: flushes even when IVM is disabled).
    ivm_flushes: int = 0
    rescan_flushes: int = 0
    ivm_queries: int = 0


@dataclass
class Action:
    """One scheduling decision for the loop to execute."""

    kind: str  # "oltp" | "olap" | "defrag" | "stall"
    requests: List[Request] = field(default_factory=list)
    ticks: int = 0  # stall only


class HTAPScheduler:
    """Decides the next unit of work: OLTP, OLAP flush, defrag, or idle."""

    def __init__(
        self,
        engine: PushTapEngine,
        num_tenants: int,
        policy: str = "batched",
        batch_threshold: int = 4,
        max_wait_ns: float = 2_000_000.0,
        freshness_sla_txns: int = 64,
        tick_ns: float = 10_000.0,
        ivm: bool = False,
    ) -> None:
        if policy not in POLICIES:
            raise ConfigError(
                f"unknown scheduler policy {policy!r} (choose from {POLICIES})"
            )
        if batch_threshold < 1:
            raise ConfigError("batch_threshold must be >= 1")
        self.engine = engine
        self.policy = policy
        self.batch_threshold = batch_threshold
        self.max_wait_ns = max_wait_ns
        self.freshness_sla_txns = freshness_sla_txns
        self.tick_ns = tick_ns
        self.freshness = FreshnessTracker(engine.db.oracle)
        self.stats = SchedulerStats()
        self.olap_queue: Deque[Request] = deque()
        self._oltp_queues: Dict[int, Deque[Request]] = {
            t: deque() for t in range(num_tenants)
        }
        self._rr_cursor = 0
        self._num_tenants = num_tenants
        #: Dispatch times of queued OLAP requests (set at enqueue).
        self._olap_enqueued_at: Dict[int, float] = {}
        #: Whether flushes may be answered from incremental views.
        self.ivm = ivm
        #: Observed mean per-query rescan time (ns), updated after every
        #: rescan flush; None until the first flush, which therefore
        #: always rescans (a deterministic cold-start calibration).
        self._rescan_query_ns: Optional[float] = None

    # ------------------------------------------------------------------
    # Queue entry points
    # ------------------------------------------------------------------
    def enqueue(self, request: Request, now: float) -> None:
        """Route one admitted request into its queue."""
        if request.kind == "olap":
            self._olap_enqueued_at[request.seq] = now
            self.olap_queue.append(request)
        elif request.kind == "oltp":
            self._oltp_queues[request.tenant].append(request)
        else:
            raise ConfigError(f"unknown request kind {request.kind!r}")

    def has_work(self) -> bool:
        return bool(self.olap_queue) or any(
            self._oltp_queues[t] for t in range(self._num_tenants)
        )

    def pending(self) -> int:
        """Total queued requests (for end-of-run conservation checks)."""
        return len(self.olap_queue) + sum(
            len(q) for q in self._oltp_queues.values()
        )

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def next_action(self, now: float, draining: bool = False) -> Optional[Action]:
        """The next dispatch at simulated time ``now``; None means idle.

        ``draining`` is set once no further arrivals can come — the
        batch trigger is then waived so queued queries flush instead of
        waiting for a threshold that will never be reached.
        """
        if self.engine.defrag_due():
            self.stats.defrag_dispatched += 1
            return Action("defrag")
        if self.olap_queue and (draining or self._olap_triggered(now)):
            inj = faults.active()
            if inj.enabled and inj.fire(fault_plan.SCHEDULER_STALL):
                # The dispatch tick is missed: the scheduler sleeps for
                # 1-3 ticks while OLAP queries back up behind it.
                ticks = inj.draw_int(fault_plan.SCHEDULER_STALL, 1, 3)
                self.stats.stalls += 1
                self.stats.stall_ticks += ticks
                return Action("stall", ticks=ticks)
            return self._pop_olap()
        action = self._pop_oltp()
        if action is not None:
            return action
        return None

    def next_deadline(self, now: float) -> Optional[float]:
        """When the max-wait trigger would fire for the queued OLAP head
        (None if nothing is queued) — lets the loop idle precisely."""
        if not self.olap_queue or self.policy == "naive":
            return None
        head = self.olap_queue[0]
        return self._olap_enqueued_at[head.seq] + self.max_wait_ns

    def _olap_triggered(self, now: float) -> bool:
        if self.policy == "naive":
            return True
        depth = len(self.olap_queue)
        head = self.olap_queue[0]
        waited = now - self._olap_enqueued_at[head.seq]
        if depth >= self.batch_threshold or waited >= self.max_wait_ns:
            return True
        if self.policy == "freshness":
            return self.freshness.staleness() >= self.freshness_sla_txns
        return False

    def _pop_olap(self) -> Action:
        if self.policy == "naive":
            request = self.olap_queue.popleft()
            self._olap_enqueued_at.pop(request.seq, None)
            self.stats.olap_dispatched += 1
            self.stats.olap_batches += 1
            return Action("olap", [request])
        batch = list(self.olap_queue)
        self.olap_queue.clear()
        for request in batch:
            self._olap_enqueued_at.pop(request.seq, None)
        self.stats.olap_dispatched += len(batch)
        self.stats.olap_batches += 1
        self.stats.batched_queries += len(batch)
        return Action("olap", batch)

    # ------------------------------------------------------------------
    # Incremental-vs-rescan flush decision
    # ------------------------------------------------------------------
    def choose_olap_mode(self, names: List[str]) -> str:
        """Per-flush decision: ``"ivm"`` (apply deltas) or ``"rescan"``.

        Applies deltas when the estimated refresh cost — pending log
        records times the per-record fold cost, from
        :meth:`~repro.ivm.manager.IVMManager.estimate_refresh_time` —
        undercuts the observed rescan cost for the batch. The first
        flush always rescans (no observed rescan cost yet), which also
        calibrates the comparison from this run's own workload. Both
        inputs are simulated quantities, so the decision sequence is
        deterministic.
        """
        ivm = self.engine.ivm
        if not self.ivm or ivm is None or not ivm.covers(names):
            mode = "rescan"
        elif self._rescan_query_ns is None:
            mode = "rescan"
        else:
            estimated_ivm = ivm.estimate_refresh_time()
            estimated_rescan = self._rescan_query_ns * len(names)
            mode = "ivm" if estimated_ivm < estimated_rescan else "rescan"
        if mode == "ivm":
            self.stats.ivm_flushes += 1
            self.stats.ivm_queries += len(names)
        else:
            self.stats.rescan_flushes += 1
        tel = telemetry.active()
        if tel.enabled:
            tel.counter(f"serve.scheduler.{mode}_flushes").inc()
        return mode

    def note_rescan(self, total_query_time: float, num_queries: int) -> None:
        """Record a rescan flush's mean per-query time (the cost baseline)."""
        if num_queries > 0:
            self._rescan_query_ns = total_query_time / num_queries

    def _pop_oltp(self) -> Optional[Action]:
        """Round-robin over tenants with queued transactions."""
        for offset in range(self._num_tenants):
            tenant = (self._rr_cursor + offset) % self._num_tenants
            queue = self._oltp_queues[tenant]
            if queue:
                self._rr_cursor = (tenant + 1) % self._num_tenants
                self.stats.oltp_dispatched += 1
                return Action("oltp", [queue.popleft()])
        return None

    def report(self) -> Dict[str, object]:
        controller = self.engine.controller.stats
        ivm_section: Dict[str, object] = {
            "enabled": bool(self.ivm and self.engine.ivm is not None),
            "ivm_flushes": self.stats.ivm_flushes,
            "rescan_flushes": self.stats.rescan_flushes,
            "ivm_queries": self.stats.ivm_queries,
        }
        if ivm_section["enabled"]:
            ivm_section["views"] = self.engine.ivm.report()["views"]
        return {
            "policy": self.policy,
            "ivm": ivm_section,
            "oltp_dispatched": self.stats.oltp_dispatched,
            "olap_dispatched": self.stats.olap_dispatched,
            "olap_batches": self.stats.olap_batches,
            "batched_queries": self.stats.batched_queries,
            "defrag_dispatched": self.stats.defrag_dispatched,
            "stalls": self.stats.stalls,
            "stall_ticks": self.stats.stall_ticks,
            "mode_batches": controller.mode_batches,
            "handovers": controller.handovers,
            "handovers_saved": controller.handovers_saved,
        }
