"""The deterministic simulated-time serving loop.

:class:`ServeLoop` drives N concurrent client sessions against one
:class:`~repro.core.engine.PushTapEngine`.  Time is fully simulated (ns):
arrivals come from seeded per-tenant RNG streams, service times come from
the engine's cost models, and the loop itself is a single serial server —
so two runs with the same :class:`ServeConfig` produce bit-identical
reports, which is what makes the scheduler-policy ablation meaningful.

Arrival models (§7.3.3's workload, reshaped into a serving shape):

* ``open`` — open-loop Poisson: each tenant's arrivals are a Poisson
  process at ``rate_per_tenant`` requests per simulated second,
  independent of service progress.  This is the model that saturates the
  server and exercises admission control.
* ``closed`` — closed-loop think time: each tenant keeps at most one
  request outstanding and draws an exponential think time (mean
  ``think_ns``) after every completion or rejection.

Per-tenant RNG streams are decoupled (CRC-32 seed derivation), so adding
a tenant or changing the scheduler policy never perturbs another
tenant's request sequence — policy comparisons see identical offered
load.

Fault hooks exercised here (under ``fault-sweep --workload serve``):
:data:`~repro.faults.plan.CLIENT_DISCONNECT` (the client vanishes
mid-transaction; its writes roll back via the abort path),
:data:`~repro.faults.plan.QUEUE_OVERFLOW` (admission sheds spuriously),
and :data:`~repro.faults.plan.SCHEDULER_STALL` (missed dispatch ticks).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import perf
from repro.core.engine import PushTapEngine
from repro.errors import ConfigError, TransactionAborted
from repro.faults import injector as faults
from repro.faults import plan as fault_plan
from repro.serve.admission import AdmissionController, Request
from repro.serve.scheduler import Action, HTAPScheduler
from repro.serve.slo import SLOAccounting, SLOTargets
from repro.telemetry import registry as telemetry
from repro.units import S
from repro.workloads.driver import WorkloadSession, _derive_seed

__all__ = ["ServeConfig", "ServeLoop", "ServeResult"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything one serve run depends on (the determinism surface)."""

    tenants: int = 4
    requests_per_tenant: int = 64
    policy: str = "batched"
    seed: int = 7
    #: "open" (Poisson) or "closed" (think time, <=1 outstanding).
    arrival: str = "open"
    #: Open-loop arrival rate per tenant, requests per simulated second.
    rate_per_tenant: float = 50_000.0
    #: Closed-loop mean think time (ns).
    think_ns: float = 20_000.0
    olap_fraction: float = 0.1
    queue_depth: int = 16
    #: Token-bucket rate per tenant (req/s); 0 disables rate limiting.
    bucket_rate: float = 0.0
    bucket_capacity: float = 8.0
    batch_threshold: int = 4
    max_wait_ns: float = 2_000_000.0
    freshness_sla_txns: int = 64
    tick_ns: float = 10_000.0
    #: Maintain incremental views and let the scheduler answer flushes
    #: from them when folding pending deltas beats a full rescan.
    ivm: bool = False
    slo: SLOTargets = field(default_factory=SLOTargets)

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ConfigError("tenants must be >= 1")
        if self.requests_per_tenant < 1:
            raise ConfigError("requests_per_tenant must be >= 1")
        if self.arrival not in ("open", "closed"):
            raise ConfigError("arrival must be 'open' or 'closed'")
        if self.arrival == "open" and self.rate_per_tenant <= 0:
            raise ConfigError("open-loop arrivals need rate_per_tenant > 0")
        if self.arrival == "closed" and self.think_ns < 0:
            raise ConfigError("think_ns must be >= 0")
        if not 0.0 <= self.olap_fraction <= 1.0:
            raise ConfigError("olap_fraction must be within [0, 1]")
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.tick_ns <= 0:
            raise ConfigError("tick_ns must be > 0")
        if self.max_wait_ns < 0:
            raise ConfigError("max_wait_ns must be >= 0")


@dataclass
class ServeResult:
    """Outcome of one serve run (all counters + the SLO report)."""

    config: ServeConfig
    simulated_time_ns: float
    requests: int
    completed: int
    disconnects: int
    slo_errors: List[str]
    report: Dict[str, object]


class ServeLoop:
    """Serial simulated server over N seeded client sessions."""

    def __init__(
        self,
        engine: PushTapEngine,
        config: ServeConfig,
        invariant_checker=None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.invariant_checker = invariant_checker
        self.sessions: Dict[int, WorkloadSession] = {
            t: WorkloadSession(
                engine,
                tenant=t,
                num_tenants=config.tenants,
                seed=config.seed,
                olap_fraction=config.olap_fraction,
            )
            for t in range(config.tenants)
        }
        self._arrival_rngs: Dict[int, np.random.RandomState] = {
            t: np.random.RandomState(
                _derive_seed(config.seed, f"tenant{t}.arrival")
            )
            for t in range(config.tenants)
        }
        self.admission = AdmissionController(
            config.tenants,
            queue_depth=config.queue_depth,
            bucket_rate=config.bucket_rate,
            bucket_capacity=config.bucket_capacity,
        )
        if config.ivm:
            # Registers the CH-bench views the sessions will ask for
            # (initial population is load-time work, before time starts).
            engine.enable_ivm()
        self.scheduler = HTAPScheduler(
            engine,
            config.tenants,
            policy=config.policy,
            batch_threshold=config.batch_threshold,
            max_wait_ns=config.max_wait_ns,
            freshness_sla_txns=config.freshness_sla_txns,
            tick_ns=config.tick_ns,
            ivm=config.ivm,
        )
        self.slo = SLOAccounting(config.tenants, config.slo)
        self.now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, int]] = []  # (time, seq, tenant)
        self._remaining: Dict[int, int] = {
            t: config.requests_per_tenant for t in range(config.tenants)
        }
        self.disconnects = 0

    # ------------------------------------------------------------------
    # Arrival generation
    # ------------------------------------------------------------------
    def _push_arrival(self, tenant: int, at: float) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, tenant))

    def _seed_arrivals(self) -> None:
        cfg = self.config
        if cfg.arrival == "open":
            # The whole Poisson process is known up front: exponential
            # inter-arrivals at the configured rate, per tenant.
            mean_gap = S / cfg.rate_per_tenant
            for t in range(cfg.tenants):
                at = 0.0
                rng = self._arrival_rngs[t]
                for _ in range(cfg.requests_per_tenant):
                    at += rng.exponential(mean_gap)
                    self._push_arrival(t, at)
                self._remaining[t] = 0
        else:
            # Closed loop: one initial arrival each; the next is
            # scheduled when this one finishes (or is shed).
            for t in range(cfg.tenants):
                self._remaining[t] -= 1
                self._push_arrival(t, self._think(t))

    def _think(self, tenant: int) -> float:
        if self.config.think_ns == 0:
            return 0.0
        return float(self._arrival_rngs[tenant].exponential(self.config.think_ns))

    def _next_closed_arrival(self, tenant: int, at: Optional[float] = None) -> None:
        """Schedule the tenant's next closed-loop request, if any remain.

        ``at`` overrides the completion time the think draw starts from
        (the batched OLAP path settles completions after advancing the
        clock past the whole batch, so each request passes its own
        finish time explicitly).
        """
        if self.config.arrival == "closed" and self._remaining[tenant] > 0:
            self._remaining[tenant] -= 1
            base = self.now if at is None else at
            self._push_arrival(tenant, base + self._think(tenant))

    # ------------------------------------------------------------------
    # Arrival processing
    # ------------------------------------------------------------------
    def _drain_arrivals(self) -> None:
        while self._heap and self._heap[0][0] <= self.now:
            at, seq, tenant = heapq.heappop(self._heap)
            kind, payload = self.sessions[tenant].next_request()
            request = Request(
                seq=seq,
                tenant=tenant,
                kind=kind,
                payload=payload,
                submitted_at=at,
                arrival_horizon=self.engine.db.oracle.read_timestamp(),
            )
            self.slo.on_submit(tenant)
            if self.admission.submit(request, at):
                self.scheduler.enqueue(request, at)
            else:
                self.slo.on_reject(tenant)
                # A shed closed-loop client moves on to its next request
                # after thinking; an open-loop client was never waiting.
                self._next_closed_arrival(tenant)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _maybe_check(self, force: bool = False) -> None:
        checker = self.invariant_checker
        if checker is None:
            return
        pending = faults.active().take_pending_checks()
        if pending or force:
            checker.check()

    def _complete(
        self, request: Request, wait_ns: float, aborted: bool
    ) -> None:
        latency = self.now - request.submitted_at
        self.slo.on_complete(
            request.tenant, request.kind, latency, wait_ns, aborted=aborted
        )
        self.admission.release(request.tenant)
        tel = telemetry.active()
        if tel.enabled:
            tel.record_span(
                "serve.request",
                latency,
                {"tenant": request.tenant, "kind": request.kind},
                start=request.submitted_at,
            )
        self._next_closed_arrival(request.tenant)

    def _execute_oltp(self, request: Request) -> None:
        dispatched_at = self.now
        txn = request.payload
        inj = faults.active()
        disconnected = inj.enabled and inj.fire(fault_plan.CLIENT_DISCONNECT)
        if disconnected:
            # The client vanishes after issuing its writes but before
            # commit: the transaction body runs, then the connection
            # teardown aborts it — every write must roll back.
            def _disconnected(ctx, _txn=txn):
                _txn(ctx)
                raise TransactionAborted("client disconnected mid-transaction")

            pending = self.engine.oltp.submit(_disconnected)
        else:
            pending = self.engine.oltp.submit(txn)
        result = pending.step()
        # The engine-level counters normally updated by
        # execute_transaction(); the serve loop drives the non-blocking
        # submit/step API directly so defrag stays a scheduler decision.
        # Committed transactions only, matching execute_transaction():
        # aborted/disconnected txns roll all writes back, so they count
        # toward neither throughput nor the defrag period. Note the
        # transaction's total_time already includes the WAL append cost
        # when durability is enabled, so the simulated clock below
        # advances over the commit-hardening flush too.
        self.engine.stats.oltp_time += result.total_time
        if not result.aborted:
            self.engine.stats.transactions += 1
            self.engine._txns_since_defrag += 1
        self.now += result.total_time
        if result.aborted:
            self.sessions[request.tenant].note_abort(txn)
        if disconnected:
            inj.detect(fault_plan.CLIENT_DISCONNECT)
            self.disconnects += 1
            self.slo.on_disconnect(request.tenant)
            self.admission.release(request.tenant)
            self._next_closed_arrival(request.tenant)
        else:
            self._complete(
                request, dispatched_at - request.submitted_at, result.aborted
            )
        self._maybe_check()

    def _execute_olap(self, batch: List[Request]) -> None:
        dispatched_at = self.now
        freshness = self.scheduler.freshness
        lags = [freshness.note_query(r.arrival_horizon) for r in batch]
        tel = telemetry.active()
        if self.scheduler.policy == "naive":
            # Switch-per-query: each query pays its own handovers.
            for request in batch:
                result = self.engine.query(request.payload)
                self.now += result.total_time
                self._complete(
                    request, dispatched_at - request.submitted_at, False
                )
        else:
            names = [r.payload for r in batch]
            mode = self.scheduler.choose_olap_mode(names)
            result = self.engine.query_batch(names, use_ivm=(mode == "ivm"))
            if mode != "ivm":
                self.scheduler.note_rescan(
                    sum(q.total_time for q in result.results), len(names)
                )
            # Queries inside the batch complete serially after the one
            # shared mode switch; each sees its own completion time.
            self.now += result.switch_time
            if perf.vectorized():
                # The clock still advances request-by-request (each query
                # sees its own finish time), but the SLO bookkeeping for
                # the whole batch settles in one vectorized pass. The
                # remaining per-request side effects (admission release,
                # span, closed-loop think draw) then replay in request
                # order, so seq numbers, RNG draws, and every recorded
                # value match the scalar path exactly.
                ends: List[Tuple[Request, float]] = []
                for request, query in zip(batch, result.results):
                    self.now += query.total_time
                    ends.append((request, self.now))
                self.slo.on_complete_batch(
                    [
                        (
                            r.tenant,
                            r.kind,
                            end - r.submitted_at,
                            dispatched_at - r.submitted_at,
                        )
                        for r, end in ends
                    ]
                )
                for request, end in ends:
                    self.admission.release(request.tenant)
                    if tel.enabled:
                        tel.record_span(
                            "serve.request",
                            end - request.submitted_at,
                            {"tenant": request.tenant, "kind": request.kind},
                            start=request.submitted_at,
                        )
                    self._next_closed_arrival(request.tenant, at=end)
            else:
                for request, query in zip(batch, result.results):
                    self.now += query.total_time
                    self._complete(
                        request, dispatched_at - request.submitted_at, False
                    )
        if tel.enabled:
            for request, lag in zip(batch, lags):
                tel.histogram("serve.freshness.lag_txns").observe(lag)
        freshness.note_flush(self.now)
        self._maybe_check(force=True)

    def _execute(self, action: Action) -> None:
        if action.kind == "oltp":
            self._execute_oltp(action.requests[0])
        elif action.kind == "olap":
            self._execute_olap(action.requests)
        elif action.kind == "defrag":
            results = self.engine.defragment()
            self.now += sum(r.total_time for r in results.values())
            self._maybe_check(force=True)
        elif action.kind == "stall":
            inj = faults.active()
            self.now += action.ticks * self.config.tick_ns
            inj.detect(fault_plan.SCHEDULER_STALL)
        else:  # pragma: no cover - scheduler emits only the kinds above
            raise ConfigError(f"unknown action kind {action.kind!r}")

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> ServeResult:
        """Serve every request; returns the full accounting."""
        self._seed_arrivals()
        tel = telemetry.active()
        while self._heap or self.scheduler.has_work():
            self._drain_arrivals()
            draining = not self._heap
            action = self.scheduler.next_action(self.now, draining=draining)
            if action is None:
                if not self._heap:
                    break  # nothing queued, nothing arriving
                # Idle until the next arrival or the batch max-wait
                # deadline, whichever is sooner.
                target = self._heap[0][0]
                deadline = self.scheduler.next_deadline(self.now)
                if deadline is not None:
                    target = min(target, deadline)
                self.now = max(self.now, target)
                if tel.enabled:
                    tel.advance_to(self.now)
                continue
            self._execute(action)
            if tel.enabled:
                tel.advance_to(self.now)
        self._maybe_check(force=True)
        return self._result()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _result(self) -> ServeResult:
        cfg = self.config
        residual = self.scheduler.pending() + self.admission.total_occupancy
        errors = self.slo.errors(residual_queued=residual)
        completed = sum(s.completed for s in self.slo.tenants.values())
        stats = self.engine.stats
        # stats.transactions counts committed transactions only (aborts
        # and disconnects never increment it), so it *is* the tpmC base.
        committed = stats.transactions
        sim = self.now
        report: Dict[str, object] = {
            "config": {
                "tenants": cfg.tenants,
                "requests_per_tenant": cfg.requests_per_tenant,
                "policy": cfg.policy,
                "seed": cfg.seed,
                "arrival": cfg.arrival,
                "rate_per_tenant": cfg.rate_per_tenant,
                "think_ns": cfg.think_ns,
                "olap_fraction": cfg.olap_fraction,
                "queue_depth": cfg.queue_depth,
                "bucket_rate": cfg.bucket_rate,
                "bucket_capacity": cfg.bucket_capacity,
                "batch_threshold": cfg.batch_threshold,
                "max_wait_ns": cfg.max_wait_ns,
                "tick_ns": cfg.tick_ns,
                "freshness_sla_txns": cfg.freshness_sla_txns,
                "ivm": cfg.ivm,
                "slo_oltp_ns": cfg.slo.oltp_ns,
                "slo_olap_ns": cfg.slo.olap_ns,
            },
            "simulated_time_ns": sim,
            "requests": self.admission.stats.submitted,
            "admission": {
                "submitted": self.admission.stats.submitted,
                "admitted": self.admission.stats.admitted,
                "rejected": self.admission.stats.rejected,
                "rejected_by_reason": dict(
                    self.admission.stats.rejected_by_reason
                ),
            },
            "scheduler": self.scheduler.report(),
            "freshness": self.scheduler.freshness.report(),
            "tenants": self.slo.report(),
            "engine": {
                "transactions": stats.transactions,
                "queries": stats.queries,
                "oltp_time_ns": stats.oltp_time,
                "olap_time_ns": stats.olap_time,
                "defrag_time_ns": stats.defrag_time,
                "defrag_runs": stats.defrag_runs,
            },
            "throughput": {
                "oltp_tpmc": committed / sim * S * 60.0 if sim else 0.0,
                "olap_qphh": stats.queries / sim * S * 3600.0 if sim else 0.0,
                "olap_qphh_busy": (
                    stats.queries / stats.olap_time * S * 3600.0
                    if stats.olap_time
                    else 0.0
                ),
            },
            "disconnects": self.disconnects,
            "slo_errors": errors,
        }
        return ServeResult(
            config=cfg,
            simulated_time_ns=sim,
            requests=self.admission.stats.submitted,
            completed=completed,
            disconnects=self.disconnects,
            slo_errors=errors,
            report=report,
        )
