"""Serve-run and ablation entry points (the ``serve`` experiment).

:func:`run_serve` builds a fresh engine from the seed and drives one
:class:`~repro.serve.loop.ServeLoop`; with identical arguments the JSON
report it returns is bit-for-bit identical across runs (the CI smoke
step diffs two runs).  :func:`run_policy_ablation` sweeps arrival rate ×
scheduler policy over identically built engines, which isolates the
policy: every cell sees the same offered request sequences, so the
``batched``-vs-``naive`` OLAP throughput gap is explained by the
controller's ``handovers_saved`` counter rather than by workload noise.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.engine import PushTapEngine
from repro.serve.loop import ServeConfig, ServeLoop, ServeResult
from repro.serve.scheduler import POLICIES

__all__ = [
    "build_serve_engine",
    "run_serve",
    "run_policy_ablation",
    "run_ivm_ablation",
]


def build_serve_engine(
    seed: int,
    scale: float = 2e-5,
    controller_kind: str = "pushtap",
    defrag_period: int = 400,
) -> PushTapEngine:
    """The engine every serve run / ablation cell starts from."""
    return PushTapEngine.build(
        scale=scale,
        seed=seed,
        controller_kind=controller_kind,
        defrag_period=defrag_period,
        block_rows=256,
    )


def run_serve(
    config: ServeConfig,
    engine: Optional[PushTapEngine] = None,
    scale: float = 2e-5,
    controller_kind: str = "pushtap",
    invariant_checker=None,
) -> ServeResult:
    """One serve run over a freshly built (or supplied) engine."""
    if engine is None:
        engine = build_serve_engine(
            config.seed, scale=scale, controller_kind=controller_kind
        )
    loop = ServeLoop(engine, config, invariant_checker=invariant_checker)
    return loop.run()


def run_policy_ablation(
    seed: int = 7,
    tenants: int = 4,
    requests_per_tenant: int = 48,
    rates: Sequence[float] = (10_000.0, 50_000.0, 200_000.0),
    policies: Sequence[str] = POLICIES,
    olap_fraction: float = 0.25,
    scale: float = 2e-5,
) -> Dict[str, object]:
    """Arrival rate × scheduler policy sweep; returns the report dict.

    Admission limits are effectively disabled (deep queues, no rate
    limiter): the sweep measures *scheduling*, and shedding different
    requests under different policies would make the cells incomparable.
    Every cell rebuilds the engine from ``seed``, so cells differ only
    in policy and offered rate.
    """
    cells = []
    for rate in rates:
        for policy in policies:
            config = ServeConfig(
                tenants=tenants,
                requests_per_tenant=requests_per_tenant,
                policy=policy,
                seed=seed,
                arrival="open",
                rate_per_tenant=rate,
                olap_fraction=olap_fraction,
                queue_depth=1_000_000,
                bucket_rate=0.0,
            )
            result = run_serve(config, scale=scale)
            r = result.report
            cells.append(
                {
                    "rate_per_tenant": rate,
                    "policy": policy,
                    "olap_qphh": r["throughput"]["olap_qphh"],
                    "olap_qphh_busy": r["throughput"]["olap_qphh_busy"],
                    "oltp_tpmc": r["throughput"]["oltp_tpmc"],
                    "olap_time_ns": r["engine"]["olap_time_ns"],
                    "simulated_time_ns": r["simulated_time_ns"],
                    "queries": r["engine"]["queries"],
                    "olap_batches": r["scheduler"]["olap_batches"],
                    "mode_batches": r["scheduler"]["mode_batches"],
                    "handovers": r["scheduler"]["handovers"],
                    "handovers_saved": r["scheduler"]["handovers_saved"],
                    "max_staleness_txns": r["freshness"]["max_staleness_txns"],
                    "slo_errors": r["slo_errors"],
                }
            )
    return {
        "experiment": "serve-policy-ablation",
        "seed": seed,
        "tenants": tenants,
        "requests_per_tenant": requests_per_tenant,
        "olap_fraction": olap_fraction,
        "rates": list(rates),
        "policies": list(policies),
        "cells": cells,
    }


def run_ivm_ablation(
    seed: int = 7,
    tenants: int = 4,
    requests_per_tenant: int = 48,
    rates: Sequence[float] = (10_000.0, 50_000.0, 200_000.0),
    olap_fraction: float = 0.25,
    scale: float = 2e-5,
    policy: str = "freshness",
    freshness_sla_txns: int = 8,
) -> Dict[str, object]:
    """Arrival rate × {rescan, incremental} sweep at one policy.

    Same isolation discipline as :func:`run_policy_ablation`: every cell
    rebuilds the engine from ``seed`` and sees identical offered request
    sequences, so the QphH and snapshot-lag deltas per rate are
    explained entirely by the per-flush apply-deltas-vs-rescan decision.

    The default cell runs the ``freshness`` policy with a deliberately
    tight staleness SLA: the flush trigger is then the staleness bound
    itself, so both modes hold the same max snapshot lag and the sweep
    isolates what incremental maintenance is for — keeping a tight
    freshness bound affordable.  (Under count-driven policies the flush
    cadence is fixed and the lag axis only shows interleaving noise.)
    """
    cells = []
    for rate in rates:
        for ivm in (False, True):
            config = ServeConfig(
                tenants=tenants,
                requests_per_tenant=requests_per_tenant,
                policy=policy,
                seed=seed,
                arrival="open",
                rate_per_tenant=rate,
                olap_fraction=olap_fraction,
                queue_depth=1_000_000,
                bucket_rate=0.0,
                freshness_sla_txns=freshness_sla_txns,
                ivm=ivm,
            )
            result = run_serve(config, scale=scale)
            r = result.report
            cells.append(
                {
                    "rate_per_tenant": rate,
                    "mode": "incremental" if ivm else "rescan",
                    "olap_qphh": r["throughput"]["olap_qphh"],
                    "olap_qphh_busy": r["throughput"]["olap_qphh_busy"],
                    "oltp_tpmc": r["throughput"]["oltp_tpmc"],
                    "olap_time_ns": r["engine"]["olap_time_ns"],
                    "simulated_time_ns": r["simulated_time_ns"],
                    "queries": r["engine"]["queries"],
                    "olap_batches": r["scheduler"]["olap_batches"],
                    "ivm_flushes": r["scheduler"]["ivm"]["ivm_flushes"],
                    "rescan_flushes": r["scheduler"]["ivm"]["rescan_flushes"],
                    "ivm_queries": r["scheduler"]["ivm"]["ivm_queries"],
                    "max_staleness_txns": r["freshness"]["max_staleness_txns"],
                    "mean_staleness_txns": r["freshness"]["mean_staleness_txns"],
                    "max_snapshot_lag_ns": r["freshness"]["max_snapshot_lag_ns"],
                    "mean_snapshot_lag_ns": r["freshness"]["mean_snapshot_lag_ns"],
                    "slo_errors": r["slo_errors"],
                }
            )
    # Per-rate deltas: incremental minus rescan, the ablation's headline.
    deltas = []
    for rate in rates:
        rescan = next(
            c for c in cells
            if c["rate_per_tenant"] == rate and c["mode"] == "rescan"
        )
        incremental = next(
            c for c in cells
            if c["rate_per_tenant"] == rate and c["mode"] == "incremental"
        )
        deltas.append(
            {
                "rate_per_tenant": rate,
                "olap_qphh_delta": incremental["olap_qphh"] - rescan["olap_qphh"],
                "olap_qphh_ratio": (
                    incremental["olap_qphh"] / rescan["olap_qphh"]
                    if rescan["olap_qphh"]
                    else 0.0
                ),
                "oltp_tpmc_delta": incremental["oltp_tpmc"] - rescan["oltp_tpmc"],
                "max_staleness_delta": (
                    incremental["max_staleness_txns"] - rescan["max_staleness_txns"]
                ),
                "max_snapshot_lag_delta_ns": (
                    incremental["max_snapshot_lag_ns"]
                    - rescan["max_snapshot_lag_ns"]
                ),
            }
        )
    return {
        "experiment": "serve-ivm-ablation",
        "seed": seed,
        "tenants": tenants,
        "requests_per_tenant": requests_per_tenant,
        "olap_fraction": olap_fraction,
        "policy": policy,
        "freshness_sla_txns": freshness_sla_txns,
        "rates": list(rates),
        "cells": cells,
        "deltas": deltas,
    }
