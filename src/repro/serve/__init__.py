"""repro.serve — the multi-tenant HTAP serving layer.

Everything above the engine that a *server* needs: seeded client
sessions with open/closed-loop arrivals, admission control that sheds
load instead of stalling, the adaptive scheduler that decides when banks
flip into PIM mode (the ``naive`` / ``batched`` / ``freshness``
policies), and per-tenant SLO accounting over simulated end-to-end
latency.  Entirely deterministic: one seed fixes the whole run.
"""

from repro.serve.admission import AdmissionController, Request, TokenBucket
from repro.serve.loop import ServeConfig, ServeLoop, ServeResult
from repro.serve.runner import run_policy_ablation, run_serve
from repro.serve.scheduler import POLICIES, FreshnessTracker, HTAPScheduler
from repro.serve.slo import SLOAccounting, SLOTargets

__all__ = [
    "AdmissionController",
    "FreshnessTracker",
    "HTAPScheduler",
    "POLICIES",
    "Request",
    "run_policy_ablation",
    "run_serve",
    "ServeConfig",
    "ServeLoop",
    "ServeResult",
    "SLOAccounting",
    "SLOTargets",
    "TokenBucket",
]
