"""Per-tenant SLO accounting for the serving layer.

Every completed request's **end-to-end** latency (queue wait plus
execution, in simulated ns) lands in a per-tenant histogram, split by
request class; violations are counted against per-class latency targets.
The accounting also enforces *conservation*: every submitted request
must be exactly one of rejected, completed, or disconnected, and nothing
may remain queued at the end of a run.  :meth:`SLOAccounting.errors`
returns the broken identities (CI asserts the list is empty), so a
scheduler or admission bug that loses a request is caught structurally
rather than by eyeballing throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro import perf
from repro.errors import ConfigError
from repro.telemetry import registry as telemetry
from repro.telemetry.metrics import Histogram

__all__ = ["SLOTargets", "TenantSLO", "SLOAccounting", "quantiles"]


@dataclass(frozen=True)
class SLOTargets:
    """Per-class end-to-end latency targets (simulated ns)."""

    oltp_ns: float = 200_000.0
    olap_ns: float = 50_000_000.0

    def target_for(self, kind: str) -> float:
        if kind == "oltp":
            return self.oltp_ns
        if kind == "olap":
            return self.olap_ns
        raise ConfigError(f"unknown request kind {kind!r}")


@dataclass
class TenantSLO:
    """One tenant's latency distributions and outcome counters."""

    tenant: int
    oltp_latency: Histogram = field(default=None)  # type: ignore[assignment]
    olap_latency: Histogram = field(default=None)  # type: ignore[assignment]
    queue_wait: Histogram = field(default=None)  # type: ignore[assignment]
    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    disconnected: int = 0
    aborted: int = 0
    violations: Dict[str, int] = field(
        default_factory=lambda: {"oltp": 0, "olap": 0}
    )

    def __post_init__(self) -> None:
        t = self.tenant
        if self.oltp_latency is None:
            self.oltp_latency = Histogram(f"serve.tenant{t}.oltp.latency_ns")
        if self.olap_latency is None:
            self.olap_latency = Histogram(f"serve.tenant{t}.olap.latency_ns")
        if self.queue_wait is None:
            self.queue_wait = Histogram(f"serve.tenant{t}.queue_wait_ns")

    def latency_for(self, kind: str) -> Histogram:
        return self.oltp_latency if kind == "oltp" else self.olap_latency


def quantiles(hist: Histogram) -> Dict[str, float]:
    """Standard summary of a latency histogram (shared report shape)."""
    return {
        "count": hist.count,
        "mean_ns": hist.mean,
        "p50_ns": hist.p50,
        "p95_ns": hist.p95,
        "p99_ns": hist.p99,
        "max_ns": hist.max,
    }


class SLOAccounting:
    """Records request outcomes and checks conservation identities."""

    def __init__(self, num_tenants: int, targets: SLOTargets) -> None:
        self.targets = targets
        self.tenants: Dict[int, TenantSLO] = {
            t: TenantSLO(tenant=t) for t in range(num_tenants)
        }

    # ------------------------------------------------------------------
    # Outcome recording
    # ------------------------------------------------------------------
    def on_submit(self, tenant: int) -> None:
        self.tenants[tenant].submitted += 1

    def on_reject(self, tenant: int) -> None:
        self.tenants[tenant].rejected += 1

    def on_complete(
        self,
        tenant: int,
        kind: str,
        latency_ns: float,
        wait_ns: float,
        aborted: bool = False,
    ) -> None:
        """One request finished; ``latency_ns`` is end-to-end (wait+exec).

        Aborted transactions still count as completions (the server did
        serve them — the client got its abort), but are tallied so abort
        storms are visible next to the latency numbers.
        """
        slo = self.tenants[tenant]
        slo.completed += 1
        if aborted:
            slo.aborted += 1
        slo.latency_for(kind).observe(latency_ns)
        slo.queue_wait.observe(wait_ns)
        violated = latency_ns > self.targets.target_for(kind)
        if violated:
            slo.violations[kind] += 1
        tel = telemetry.active()
        if tel.enabled:
            tel.histogram(f"serve.tenant{tenant}.{kind}.latency_ns").observe(
                latency_ns
            )
            if violated:
                tel.counter(f"serve.slo.violations.{kind}").inc()

    def on_complete_batch(
        self, completions: Sequence[Tuple[int, str, float, float]]
    ) -> None:
        """Record a batch of non-aborted completions (vectorized).

        ``completions`` is ``(tenant, kind, latency_ns, wait_ns)`` per
        request, in completion order. Identical accounting to calling
        :meth:`on_complete` once per item: every histogram observes its
        samples in the same order (decimation-exact), and violations
        come from one array comparison against the per-class targets —
        the same float comparison the scalar path makes. The telemetry
        registry is resolved once per batch instead of per completion.
        """
        if not perf.vectorized():
            for tenant, kind, latency_ns, wait_ns in completions:
                self.on_complete(tenant, kind, latency_ns, wait_ns)
            return
        if not completions:
            return
        n = len(completions)
        targets = {
            "oltp": self.targets.oltp_ns,
            "olap": self.targets.olap_ns,
        }
        lat = np.fromiter((c[2] for c in completions), dtype=np.float64, count=n)
        bound = np.fromiter(
            # Unknown kinds fall through to target_for so they fail with
            # the same ConfigError the scalar path raises.
            (targets.get(c[1]) or self.targets.target_for(c[1]) for c in completions),
            dtype=np.float64,
            count=n,
        )
        violated = lat > bound
        tel = telemetry.active()
        tel_on = tel.enabled
        for (tenant, kind, latency_ns, wait_ns), v in zip(completions, violated):
            slo = self.tenants[tenant]
            slo.completed += 1
            slo.latency_for(kind).observe(latency_ns)
            slo.queue_wait.observe(wait_ns)
            if v:
                slo.violations[kind] += 1
            if tel_on:
                tel.histogram(f"serve.tenant{tenant}.{kind}.latency_ns").observe(
                    latency_ns
                )
                if v:
                    tel.counter(f"serve.slo.violations.{kind}").inc()

    def on_disconnect(self, tenant: int) -> None:
        """The client vanished mid-transaction; no latency to record
        (nobody was waiting for the reply), but the request must still
        balance the books as an admitted-then-gone outcome."""
        self.tenants[tenant].disconnected += 1

    # ------------------------------------------------------------------
    # Conservation + report
    # ------------------------------------------------------------------
    def errors(self, residual_queued: int = 0) -> List[str]:
        """Broken conservation identities (empty means accounting holds)."""
        found: List[str] = []
        for t, slo in sorted(self.tenants.items()):
            admitted = slo.submitted - slo.rejected
            served = slo.completed + slo.disconnected
            if served != admitted:
                found.append(
                    f"tenant {t}: {admitted} admitted but {served} served "
                    f"({slo.completed} completed + {slo.disconnected} "
                    "disconnected)"
                )
            recorded = slo.oltp_latency.count + slo.olap_latency.count
            if recorded != slo.completed:
                found.append(
                    f"tenant {t}: {slo.completed} completions but "
                    f"{recorded} latency samples"
                )
        if residual_queued:
            found.append(
                f"{residual_queued} request(s) still queued at end of run"
            )
        return found

    def report(self) -> Dict[str, object]:
        """JSON-serializable per-tenant SLO summary."""
        out: Dict[str, object] = {}
        for t, slo in sorted(self.tenants.items()):
            out[str(t)] = {
                "submitted": slo.submitted,
                "rejected": slo.rejected,
                "completed": slo.completed,
                "disconnected": slo.disconnected,
                "aborted": slo.aborted,
                "violations": dict(slo.violations),
                "oltp": quantiles(slo.oltp_latency),
                "olap": quantiles(slo.olap_latency),
                "queue_wait": quantiles(slo.queue_wait),
            }
        return out
