"""Admission control for the serving layer: bounded queues + rate limits.

The admission controller is the first thing a request meets.  It enforces
two budgets per tenant and *rejects* rather than stalls when either is
exhausted (load shedding — a shed request costs the server nothing, an
unbounded queue costs everyone):

* a **bounded queue**: at most ``queue_depth`` requests of a tenant may
  be waiting or executing at once;
* a **token bucket**: sustained admission rate is capped at
  ``bucket_rate`` requests per simulated second with ``bucket_capacity``
  of burst headroom.

The :data:`~repro.faults.plan.QUEUE_OVERFLOW` fault hook models a
spurious overflow signal (e.g. a stale occupancy counter): the request
is shed even though capacity exists.  The accounting still balances —
a shed request is a rejection like any other, just with its own reason —
which is exactly what the SLO conservation checks verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigError
from repro.faults import injector as faults
from repro.faults import plan as fault_plan
from repro.telemetry import registry as telemetry
from repro.units import S

__all__ = ["Request", "TokenBucket", "AdmissionController", "AdmissionStats"]

#: Rejection reasons (keys of :attr:`AdmissionStats.rejected_by_reason`).
REASON_QUEUE_FULL = "queue_full"
REASON_RATE_LIMITED = "rate_limited"
REASON_FAULT = "spurious_overflow"


@dataclass
class Request:
    """One client request travelling through the serving layer."""

    seq: int
    tenant: int
    kind: str  # "oltp" | "olap"
    payload: object
    #: Simulated arrival time (ns) — queue wait and end-to-end latency
    #: are measured from here.
    submitted_at: float
    #: Committed-transaction horizon when the request arrived; the
    #: freshness tracker reports OLAP snapshot lag against this.
    arrival_horizon: int = 0


@dataclass
class AdmissionStats:
    """Aggregate admission counters (also kept per tenant)."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    rejected_by_reason: Dict[str, int] = field(default_factory=dict)

    def reject(self, reason: str) -> None:
        self.rejected += 1
        self.rejected_by_reason[reason] = self.rejected_by_reason.get(reason, 0) + 1


class TokenBucket:
    """Token bucket over simulated time.

    ``rate`` is in requests per simulated second; ``capacity`` is the
    burst size.  ``rate=0`` disables the limiter (always admits).
    """

    def __init__(self, rate: float, capacity: float) -> None:
        if rate < 0 or capacity <= 0:
            raise ConfigError("token bucket needs rate >= 0 and capacity > 0")
        self.rate = rate
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self._last_refill = 0.0

    def try_take(self, now: float) -> bool:
        """Admit one request at simulated time ``now`` if a token exists."""
        if self.rate == 0:
            return True
        if now > self._last_refill:
            self.tokens = min(
                self.capacity,
                self.tokens + (now - self._last_refill) * self.rate / S,
            )
            self._last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Per-tenant bounded occupancy + token-bucket rate limiting.

    Occupancy counts requests admitted but not yet completed (queued
    *or* executing), so a slow tenant cannot park unbounded work behind
    the scheduler; the loop calls :meth:`release` when a request
    finishes.
    """

    def __init__(
        self,
        num_tenants: int,
        queue_depth: int = 16,
        bucket_rate: float = 0.0,
        bucket_capacity: float = 8.0,
    ) -> None:
        if num_tenants < 1:
            raise ConfigError("admission needs at least one tenant")
        if queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        self.queue_depth = queue_depth
        self.occupancy: Dict[int, int] = {t: 0 for t in range(num_tenants)}
        self.buckets: Dict[int, TokenBucket] = {
            t: TokenBucket(bucket_rate, bucket_capacity)
            for t in range(num_tenants)
        }
        self.stats = AdmissionStats()
        self.tenant_stats: Dict[int, AdmissionStats] = {
            t: AdmissionStats() for t in range(num_tenants)
        }

    def submit(self, request: Request, now: float) -> bool:
        """Admit or shed ``request``; True means admitted."""
        tenant = request.tenant
        self.stats.submitted += 1
        self.tenant_stats[tenant].submitted += 1
        reason = None
        inj = faults.active()
        if inj.enabled and inj.fire(fault_plan.QUEUE_OVERFLOW):
            # A stale occupancy read reports the queue full; the request
            # is shed spuriously. Shedding is the *graceful* outcome —
            # the conservation checks confirm nothing is lost or stuck.
            inj.detect(fault_plan.QUEUE_OVERFLOW)
            reason = REASON_FAULT
        elif self.occupancy[tenant] >= self.queue_depth:
            reason = REASON_QUEUE_FULL
        elif not self.buckets[tenant].try_take(now):
            reason = REASON_RATE_LIMITED
        tel = telemetry.active()
        if reason is not None:
            self.stats.reject(reason)
            self.tenant_stats[tenant].reject(reason)
            if tel.enabled:
                tel.counter(f"serve.admission.rejected.{reason}").inc()
            return False
        self.occupancy[tenant] += 1
        self.stats.admitted += 1
        self.tenant_stats[tenant].admitted += 1
        if tel.enabled:
            tel.counter("serve.admission.admitted").inc()
        return True

    def release(self, tenant: int) -> None:
        """One of ``tenant``'s admitted requests finished."""
        if self.occupancy[tenant] <= 0:
            raise ConfigError(
                f"release without admission for tenant {tenant} "
                "(accounting bug)"
            )
        self.occupancy[tenant] -= 1

    @property
    def total_occupancy(self) -> int:
        """Admitted-but-unfinished requests across all tenants."""
        return sum(self.occupancy.values())
