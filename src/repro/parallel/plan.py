"""The plan pass: decide every operation without executing any engine.

Replays :meth:`ClusterWorkload.run`'s decision loop — tenant rotation,
driver draws, routing, 2PC fault decisions — advancing the *real*
drivers and the *real* fault plan streams, but never touching a shard
engine. The output is one picklable operation sub-stream per shard
plus a global record list the merge pass walks to reconstruct the
sequential interleaving.

Two invariants make this sound:

* The drivers' draw sequences depend only on their own RNG streams and
  on ``note_abort`` feedback. Under the cluster's fault model every
  abort is a *planned* 2PC abort (single-shard TPC-C transactions
  never abort: no local conflicts exist in a serial engine and the
  OLTP-local hooks are excluded under ``jobs > 1``), so the plan can
  apply ``note_abort`` at decision time, exactly one driver-step ahead
  of where the sequential run applies it — before the driver's next
  draw either way.
* :func:`~repro.cluster.twopc.plan_twopc_decision` consumes the 2PC
  hook streams in the exact order the sequential coordinator would,
  so the fault schedule is identical draw for draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.twopc import TwoPCDecision, plan_twopc_decision

__all__ = [
    "TxnRecord",
    "QueryRecord",
    "CheckRecord",
    "RunPlan",
    "plan_cluster_run",
]


@dataclass(frozen=True)
class TxnRecord:
    """One transaction in the global stream."""

    op_id: int
    home: int
    shards: Tuple[int, ...]
    cross_shard: bool
    #: The planned 2PC fault decision (None for single-shard).
    decision: Optional[TwoPCDecision]


@dataclass(frozen=True)
class QueryRecord:
    """One scatter-gather query in the global stream."""

    op_id: int
    name: str


@dataclass(frozen=True)
class CheckRecord:
    """One invariant-checker sweep across every shard."""

    op_id: int


@dataclass
class RunPlan:
    """The planned run: global records plus per-shard sub-streams."""

    records: List[object]
    #: ``shard_ops[s]`` is shard ``s``'s operation list, each op a
    #: picklable tuple tagged ``"txn" | "part" | "query" | "check"``.
    shard_ops: List[List[tuple]]


def plan_cluster_run(workload, num_queries: int) -> RunPlan:
    """Plan ``num_queries`` intervals of ``workload`` without executing."""
    cluster = workload.cluster
    router = cluster.router
    num_shards = cluster.num_shards
    have_checkers = bool(workload.invariant_checkers)
    records: List[object] = []
    shard_ops: List[List[tuple]] = [[] for _ in range(num_shards)]
    state = {"op_id": 0, "pending": 0}

    def next_op_id() -> int:
        op_id = state["op_id"]
        state["op_id"] = op_id + 1
        return op_id

    def plan_check(force: bool = False) -> None:
        # Mirrors ClusterWorkload._maybe_check: the pending-fault count
        # is drained at *every* safe point (checkers permitting), and a
        # check runs when any fault fired since the last drain (or the
        # point is forced).
        if not have_checkers:
            return
        pending, state["pending"] = state["pending"], 0
        if pending or force:
            op_id = next_op_id()
            records.append(CheckRecord(op_id))
            for ops in shard_ops:
                ops.append(("check", op_id))

    for _ in range(num_queries):
        for _ in range(workload.txns_per_query):
            tenant = workload._txn_cursor % workload.tenants
            workload._txn_cursor += 1
            driver = workload.drivers[tenant]
            txn = driver.next_transaction()
            shards = router.involved_shards(txn)
            op_id = next_op_id()
            if len(shards) == 1:
                home = shards[0]
                records.append(TxnRecord(op_id, home, (home,), False, None))
                shard_ops[home].append(
                    ("txn", op_id, txn.txn_name, txn.params)
                )
            else:
                home = router.home_shard(txn)
                decision = plan_twopc_decision(home, shards)
                state["pending"] += decision.fires
                if not decision.decide_commit:
                    driver.note_abort(txn)
                records.append(
                    TxnRecord(op_id, home, tuple(shards), True, decision)
                )
                resolution = "commit" if decision.decide_commit else "abort"
                for shard in shards:
                    shard_ops[shard].append(
                        (
                            "part",
                            op_id,
                            txn.txn_name,
                            txn.params,
                            decision.statuses[shard],
                            resolution,
                        )
                    )
            plan_check()
        name = workload.queries[workload._query_cursor % len(workload.queries)]
        workload._query_cursor += 1
        op_id = next_op_id()
        records.append(QueryRecord(op_id, name))
        for ops in shard_ops:
            ops.append(("query", op_id, name))
        plan_check(force=True)
    return RunPlan(records=records, shard_ops=shard_ops)
