"""The merge pass: reconstruct the sequential run from shard journals.

Walks the plan's global record list in stream order, replaying each
worker's journaled telemetry segments at the exact position the
sequential interleaving would have produced them, and re-running the
coordinator-side bookkeeping (report accounting, 2PC settlement,
scatter-gather timing) with the same code paths a ``jobs=1`` run
takes — :meth:`TwoPhaseCommit._settle` for cross-shard transactions,
the same float accumulation order everywhere — so the resulting
report, histograms, outcome log, and telemetry export are
byte-identical to the sequential run.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.faults import injector as faults
from repro.faults import plan as fault_plan
from repro.telemetry import registry as telemetry
from repro.telemetry.record import SegmentReplayer

from repro.parallel.plan import CheckRecord, QueryRecord, RunPlan, TxnRecord
from repro.parallel.worker import ShardResult

__all__ = ["merge_cluster_run"]


class _WorkerTxnResult:
    """A participant result reconstructed from a worker journal.

    Only the execution time crosses process boundaries; it is all
    :meth:`TwoPhaseCommit._settle` and the report bookkeeping read.
    """

    __slots__ = ("total_time",)

    def __init__(self, total_time: float) -> None:
        self.total_time = total_time


def merge_cluster_run(
    workload,
    num_queries: int,
    run_plan: RunPlan,
    shard_results: Sequence[ShardResult],
    report,
) -> None:
    """Fill ``report`` from the plan and the per-shard worker journals."""
    cluster = workload.cluster
    num_shards = cluster.num_shards
    tel = telemetry.active()
    inj = faults.active()
    replayer = SegmentReplayer(tel) if tel.enabled else None
    segments = [r.segments for r in shard_results]
    results: List[Dict[int, float]] = [r.results for r in shard_results]

    def replay(shard: int, op_id: int, tag: str) -> None:
        if replayer is None:
            return
        segment = segments[shard].get((op_id, tag))
        if segment:
            replayer.replay(segment)

    def merge_twopc(rec: TxnRecord):
        decision = rec.decision
        # Pre-prepare defragmentation of every involved shard, in the
        # ascending order the cluster runs it.
        for shard in rec.shards:
            replay(shard, rec.op_id, "defrag")
        # Phase 1 in coordinator order, re-applying the accounting of
        # each planned fault at the position its draw happened.
        for shard in decision.order:
            status = decision.statuses[shard]
            if status == "lost":
                inj.replay_fire(fault_plan.TWOPC_LOST_PREPARE)
                inj.detect(fault_plan.TWOPC_LOST_PREPARE)
                continue
            replay(shard, rec.op_id, "prepare")
            if status == "timeout":
                inj.replay_fire(fault_plan.TWOPC_PARTICIPANT_TIMEOUT)
                inj.detect(fault_plan.TWOPC_PARTICIPANT_TIMEOUT)
        if decision.coordinator_silent:
            inj.replay_fire(fault_plan.TWOPC_COORDINATOR_CRASH)
            inj.detect(fault_plan.TWOPC_COORDINATOR_CRASH)

        def resolve(shard: int, action: str) -> _WorkerTxnResult:
            replay(shard, rec.op_id, "resolve")
            return _WorkerTxnResult(results[shard][rec.op_id])

        return cluster.twopc._settle(
            rec.home,
            list(decision.order),
            decision.statuses,
            {},
            decision.decide_commit,
            decision.coordinator_silent,
            decision.abort_cause,
            resolve,
        )

    def merge_query(rec: QueryRecord) -> float:
        cluster.queries_run += 1
        if num_shards == 1:
            replay(0, rec.op_id, "query")
            return results[0][rec.op_id]
        for shard in range(num_shards):
            replay(shard, rec.op_id, "query")
        gather = (num_shards - 1) * cluster.interconnect_ns
        cluster.gather_time += gather
        if tel.enabled:
            tel.counter("cluster.olap.scatter_queries").inc()
            tel.record_span(
                "cluster.gather",
                gather,
                {"query": rec.name, "shards": num_shards},
            )
        # ClusterQueryResult.total_time: shard scans run in parallel, so
        # the client sees the slowest shard plus the gather.
        slowest = max(
            (results[shard][rec.op_id] for shard in range(num_shards)),
            default=0.0,
        )
        return slowest + gather

    records = run_plan.records
    index = 0

    def maybe_replay_check(index: int) -> int:
        # Mirrors ClusterWorkload._maybe_check: the pending count is
        # drained at every safe point; the plan already decided where a
        # check actually runs.
        if not workload.invariant_checkers:
            return index
        inj.take_pending_checks()
        if index < len(records) and isinstance(records[index], CheckRecord):
            rec = records[index]
            for shard in range(num_shards):
                replay(shard, rec.op_id, "check")
            return index + 1
        return index

    for interval in range(num_queries):
        t0 = tel.sim_time if tel.enabled else 0.0
        for _ in range(workload.txns_per_query):
            rec = records[index]
            index += 1
            if not rec.cross_shard:
                replay(rec.home, rec.op_id, "txn")
                latency = results[rec.home][rec.op_id]
                committed = True
            else:
                outcome = merge_twopc(rec)
                latency = outcome.latency
                committed = outcome.committed
            report.transactions += 1
            if not committed:
                # note_abort was already applied at plan time.
                report.aborted += 1
            report.observe_txn(latency)
            home = report.per_shard[rec.home]
            home.oltp_latency.observe(latency)
            if latency > workload.slo_targets.oltp_ns:
                home.slo_violations += 1
            index = maybe_replay_check(index)
        qrec = records[index]
        index += 1
        total_time = merge_query(qrec)
        report.queries += 1
        report.observe_query(qrec.name, total_time)
        index = maybe_replay_check(index)
        if tel.enabled:
            tel.record_span(
                "workload.interval",
                tel.sim_time - t0,
                {"interval": interval, "query": qrec.name},
                start=t0,
            )

    # Mirror the workers' final engine stats onto the coordinator's
    # engines: the pristine precondition makes the absolutes equal the
    # run's deltas, so the caller's ordinary stats-delta bookkeeping
    # (and cluster-level busy-time/makespan accounting) just works. The
    # engines' *data* is not synced — it lives in the workers.
    for shard, worker in enumerate(shard_results):
        stats = worker.stats
        engine = cluster.engines[shard]
        engine.stats.transactions += int(stats["transactions"])
        engine.stats.queries += int(stats["queries"])
        engine.stats.defrag_runs += int(stats["defrag_runs"])
        engine.stats.oltp_time += stats["oltp_time"]
        engine.stats.olap_time += stats["olap_time"]
        engine.stats.defrag_time += stats["defrag_time"]
