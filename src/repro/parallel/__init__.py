"""Parallel shard execution for cluster workloads.

The cluster model is embarrassingly parallel between coordination
points: each shard engine is an independent serial machine, and the
workload's global interleaving is fully determined by the seeded
drivers and the seeded fault plan — not by execution timing. The
``repro.parallel`` layer exploits that in three deterministic passes:

1. :mod:`~repro.parallel.plan` replays the workload's *decision* loop
   on the coordinator without executing any engine, producing one
   operation sub-stream per shard plus a global record list (including
   every 2PC fault decision, drawn from the plan ahead of time).
2. :mod:`~repro.parallel.worker` executes each shard's sub-stream in a
   process-pool worker, journaling telemetry segments with a
   :class:`~repro.telemetry.record.RecordingRegistry`.
3. :mod:`~repro.parallel.merge` re-applies the per-shard results on
   the coordinator in the *sequential* interleaving order, so every
   report, histogram, outcome log, and telemetry export is
   byte-identical to a ``jobs=1`` run.
"""

from repro.parallel.runner import run_parallel_cluster_workload

__all__ = ["run_parallel_cluster_workload"]
