"""The worker pass: execute one shard's operation sub-stream.

Each worker owns exactly one shard engine. Under the ``fork`` start
method the engine is inherited copy-on-write from the coordinator's
pristine cluster (zero rebuild cost — the fast path that makes
``jobs=N`` beat ``jobs=1`` on wall-clock); under ``spawn`` the worker
rebuilds its shard from the shared generator stream via
:func:`~repro.cluster.partition.build_shard`, which produces the
bit-identical engine.

Workers never consult the fault plan — every fault decision was drawn
at plan time — so the injector is deactivated for the whole worker
lifetime. Telemetry, when the coordinator records, runs through a
:class:`~repro.telemetry.record.RecordingRegistry` whose journaled
segments travel back for sequential-order replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import perf
from repro.errors import ParallelExecutionError
from repro.faults import injector as faults
from repro.faults.invariants import InvariantChecker
from repro.telemetry import registry as telemetry
from repro.telemetry.record import RecordingRegistry, Segment

__all__ = ["WorkerConfig", "ShardResult", "run_shard_ops"]

#: Coordinator's pristine cluster, inherited copy-on-write by forked
#: workers. ``None`` in spawned workers, which rebuild their shard.
_FORK_CLUSTER = None


def _set_fork_cluster(cluster) -> None:
    global _FORK_CLUSTER
    _FORK_CLUSTER = cluster


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs besides its operation list."""

    num_shards: int
    counts: Dict[str, int]
    #: ``PushTapEngine.build`` kwargs for the spawn-rebuild path
    #: (None means the fork fast path is mandatory).
    build_kwargs: Optional[Dict[str, object]]
    vectorized: bool
    #: Telemetry propagation: None disables telemetry in the worker;
    #: otherwise ``(max_histogram_samples, detail_spans, roofline)``.
    telemetry: Optional[Tuple[Optional[int], bool, bool]]
    #: Build a per-shard invariant checker and run the planned checks.
    checkers: bool
    checker_raises: bool
    #: Run one extra check after the stream ends (the fault sweep's
    #: post-run audit, executed where the engine state lives).
    final_check: bool


@dataclass
class ShardResult:
    """One worker's journal: results, segments, and final engine state."""

    shard: int
    #: ``op_id`` → simulated execution time of this shard's part (ns).
    results: Dict[int, float]
    #: ``(op_id, tag)`` → journaled telemetry segment.
    segments: Dict[Tuple[int, str], Segment]
    #: Final engine stats (engines start pristine, so absolute == delta).
    stats: Dict[str, float]
    checks: int
    violations: List[str]


def run_shard_ops(shard: int, ops: List[tuple], cfg: WorkerConfig) -> ShardResult:
    """Execute ``ops`` against shard ``shard``; returns the journal."""
    # Every fault decision was drawn at plan time; a live injector here
    # would double-draw. Deactivate before anything else runs.
    faults.deactivate()
    perf.set_vectorized(cfg.vectorized)
    telemetry.disable()

    cluster = _FORK_CLUSTER
    if cluster is not None:
        engine = cluster.engines[shard]
        router = cluster.router
    else:
        if cfg.build_kwargs is None:
            raise ParallelExecutionError(
                "worker cannot rebuild its shard: the cluster was not "
                "constructed via PushTapCluster.build and the platform "
                "does not support fork"
            )
        from repro.cluster.partition import build_shard
        from repro.cluster.router import ShardRouter

        # Build with telemetry off (as the coordinator built its
        # engines), then start recording.
        engine = build_shard(shard, cfg.num_shards, cfg.counts, **cfg.build_kwargs)
        router = ShardRouter(cfg.num_shards, int(cfg.counts["warehouse"]))

    recorder: Optional[RecordingRegistry] = None
    if cfg.telemetry is not None:
        max_samples, detail_spans, roofline = cfg.telemetry
        recorder = RecordingRegistry(max_histogram_samples=max_samples)
        recorder.detail_spans = detail_spans
        recorder.roofline = roofline
        telemetry.install(recorder)

    checker = (
        InvariantChecker(engine, raise_on_violation=cfg.checker_raises)
        if cfg.checkers
        else None
    )

    from repro.oltp.tpcc import rebuild_transaction

    results: Dict[int, float] = {}
    segments: Dict[Tuple[int, str], Segment] = {}

    def begin() -> None:
        if recorder is not None:
            recorder.begin_segment()

    def end(op_id: int, tag: str) -> None:
        if recorder is not None:
            segments[(op_id, tag)] = recorder.end_segment()

    for op in ops:
        kind = op[0]
        if kind == "txn":
            _, op_id, name, params = op
            txn = rebuild_transaction(name, params)
            begin()
            result = engine.execute_transaction(txn)
            end(op_id, "txn")
            if result.aborted:
                raise ParallelExecutionError(
                    f"shard {shard}: single-shard {name} (op {op_id}) "
                    "aborted, but the plan assumed it commits"
                )
            results[op_id] = result.total_time
        elif kind == "part":
            _, op_id, name, params, status, resolution = op
            # Participants defragment before the prepare phase — the
            # same rule PushTapCluster.execute_transaction applies to
            # every involved shard (lost-prepare ones included).
            begin()
            if engine.defrag_due():
                engine.defragment()
            end(op_id, "defrag")
            if status == "lost":
                continue
            txn = rebuild_transaction(name, params)
            sub = router.split(txn)[shard]
            begin()
            handle = engine.oltp.prepare(sub)
            end(op_id, "prepare")
            if not handle.vote_yes:
                raise ParallelExecutionError(
                    f"shard {shard}: prepare of {name} (op {op_id}) voted "
                    "no, but the plan assumed a yes vote"
                )
            begin()
            if resolution == "commit":
                result = engine.oltp.commit_prepared(handle)
            else:
                result = engine.oltp.abort_prepared(handle)
            end(op_id, "resolve")
            # Mirror the cluster's per-participant accounting (the 2PC
            # path bypasses PushTapEngine.execute_transaction).
            engine.stats.oltp_time += result.total_time
            if resolution == "commit":
                engine.stats.transactions += 1
                engine._txns_since_defrag += 1
            results[op_id] = result.total_time
        elif kind == "query":
            _, op_id, name = op
            begin()
            query = engine.query(name)
            end(op_id, "query")
            results[op_id] = query.total_time
        elif kind == "check":
            _, op_id = op
            begin()
            checker.check()
            end(op_id, "check")
        else:  # pragma: no cover - plan corruption
            raise ParallelExecutionError(f"unknown shard op {op!r}")

    if checker is not None and cfg.final_check:
        # The sweep's end-of-run audit runs where the data lives; its
        # telemetry is post-run and intentionally not journaled.
        checker.check()

    stats = engine.stats
    return ShardResult(
        shard=shard,
        results=results,
        segments=segments,
        stats={
            "transactions": stats.transactions,
            "queries": stats.queries,
            "defrag_runs": stats.defrag_runs,
            "oltp_time": stats.oltp_time,
            "olap_time": stats.olap_time,
            "defrag_time": stats.defrag_time,
        },
        checks=checker.checks if checker is not None else 0,
        violations=list(checker.violations) if checker is not None else [],
    )
