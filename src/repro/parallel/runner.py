"""Validation and process-pool orchestration for ``jobs > 1`` runs.

The parallel path is only sound when the run's nondeterminism is fully
front-loaded into the seeded streams the plan pass replays, so the
runner enforces the preconditions instead of silently diverging:

* the cluster and workload must be **pristine** (no prior transactions,
  queries, or cursor movement) — workers rebuild/inherit engines from
  the initial state, so mid-stream resumption has no parallel meaning;
* an active fault injector may only use the 2PC hooks (the plan pass
  draws those ahead of time; engine-local hooks would fire inside
  workers on divergent streams);
* invariant checkers, when present, must be the canonical one-per-shard
  set so workers can reconstruct them.

Workers run on a ``concurrent.futures`` process pool. Where the
platform offers ``fork`` the workers inherit the coordinator's pristine
engines copy-on-write (no rebuild cost); otherwise each worker rebuilds
its shard from the shared generator stream, bit-identically.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing

from repro.errors import ConfigError
from repro.faults import injector as faults
from repro.faults.plan import TWOPC_HOOKS
from repro.telemetry import registry as telemetry

from repro import perf
from repro.parallel import worker as worker_mod
from repro.parallel.merge import merge_cluster_run
from repro.parallel.plan import plan_cluster_run
from repro.parallel.worker import WorkerConfig, run_shard_ops

__all__ = ["run_parallel_cluster_workload"]


def _validate(workload) -> None:
    cluster = workload.cluster
    pristine = (
        workload._txn_cursor == 0
        and workload._query_cursor == 0
        and cluster.queries_run == 0
        and cluster.gather_time == 0.0
        and cluster.twopc.attempted == 0
        and not cluster.twopc.outcomes
        and cluster.twopc.coordination_time == 0.0
        and all(
            engine.stats.transactions == 0
            and engine.stats.queries == 0
            and engine.stats.defrag_runs == 0
            and engine.stats.oltp_time == 0.0
            and engine.stats.olap_time == 0.0
            and engine.stats.defrag_time == 0.0
            and engine._txns_since_defrag == 0
            for engine in cluster.engines
        )
    )
    if not pristine:
        raise ConfigError(
            "jobs > 1 requires a pristine cluster and workload: workers "
            "start from the freshly built engines, so a cluster that "
            "already ran transactions or queries cannot be resumed in "
            "parallel (run with jobs=1, or build a fresh cluster)"
        )
    inj = faults.active()
    if inj.enabled:
        extra = [
            hook
            for hook in inj.plan.rates.active_hooks
            if hook not in TWOPC_HOOKS
        ]
        if extra:
            raise ConfigError(
                "jobs > 1 supports only the cluster 2PC fault hooks "
                f"({', '.join(TWOPC_HOOKS)}); active engine-local hooks "
                f"{', '.join(extra)} would draw inside workers on "
                "divergent streams (run with jobs=1)"
            )
    checkers = workload.invariant_checkers
    if checkers:
        if len(checkers) != cluster.num_shards or any(
            checker.engine is not cluster.engines[shard]
            for shard, checker in enumerate(checkers)
        ):
            raise ConfigError(
                "jobs > 1 requires one invariant checker per shard, in "
                "shard order over the cluster's engines (workers rebuild "
                "the checkers; any other arrangement cannot be mirrored)"
            )
        if len({checker.raise_on_violation for checker in checkers}) > 1:
            raise ConfigError(
                "jobs > 1 requires a uniform raise_on_violation across "
                "the invariant checkers"
            )


def _worker_config(workload) -> WorkerConfig:
    cluster = workload.cluster
    tel = telemetry.active()
    checkers = workload.invariant_checkers
    return WorkerConfig(
        num_shards=cluster.num_shards,
        counts=dict(cluster.counts),
        build_kwargs=getattr(cluster, "_shard_build_kwargs", None),
        vectorized=perf.vectorized(),
        telemetry=(
            (tel.max_histogram_samples, tel.detail_spans, tel.roofline)
            if tel.enabled
            else None
        ),
        checkers=bool(checkers),
        checker_raises=checkers[0].raise_on_violation if checkers else True,
        final_check=bool(getattr(workload, "worker_final_check", False)),
    )


def _execute(cluster, run_plan, cfg: WorkerConfig, jobs: int):
    num_shards = cluster.num_shards
    max_workers = max(1, min(int(jobs), num_shards))
    start_methods = multiprocessing.get_all_start_methods()
    use_fork = "fork" in start_methods
    context = multiprocessing.get_context("fork" if use_fork else None)
    if use_fork:
        # Forked workers inherit the pristine cluster copy-on-write —
        # zero rebuild cost, which is where the wall-clock win lives.
        worker_mod._set_fork_cluster(cluster)
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers, mp_context=context
        ) as pool:
            futures = [
                pool.submit(run_shard_ops, shard, run_plan.shard_ops[shard], cfg)
                for shard in range(num_shards)
            ]
            return [future.result() for future in futures]
    finally:
        if use_fork:
            worker_mod._set_fork_cluster(None)


def run_parallel_cluster_workload(workload, num_queries: int, jobs: int, report) -> None:
    """Run ``num_queries`` intervals of ``workload`` on ``jobs`` workers.

    Fills ``report`` (and the coordinator-side cluster/telemetry/fault
    state) byte-identically to a sequential run.
    """
    _validate(workload)
    run_plan = plan_cluster_run(workload, num_queries)
    cfg = _worker_config(workload)
    shard_results = _execute(workload.cluster, run_plan, cfg, jobs)
    workload.worker_invariants = [
        {"checks": result.checks, "violations": list(result.violations)}
        for result in shard_results
    ]
    merge_cluster_run(workload, num_queries, run_plan, shard_results, report)
