#!/usr/bin/env python
"""Defragmentation policy study (§5.3, §7.4).

Shows the Eq. 1–3 cost model in action: the break-even row width, the
CPU / PIM / hybrid strategy comparison on the real CH layouts, and the
fragmentation-vs-defragmentation trade-off that picks the
defragmentation period.
"""

from repro.core.config import dimm_system
from repro.core.defrag import comm_cpu_time, comm_pim_time, pim_breakeven_width
from repro.experiments import fig11, fig12
from repro.mvcc.metadata import METADATA_BYTES
from repro.report import format_table, format_time_ns


def breakeven() -> None:
    print("— Eq. 3: the CPU/PIM break-even row width —")
    config = dimm_system()
    bdw_cpu = config.total_cpu_bandwidth
    bdw_pim = config.total_pim_bandwidth
    p = 0.9
    threshold = pim_breakeven_width(METADATA_BYTES, p, bdw_cpu, bdw_pim)
    print(f"  m={METADATA_BYTES}B, p={p}, bdw_cpu={bdw_cpu:.0f}GB/s, "
          f"bdw_pim={bdw_pim:.0f}GB/s  ->  w* = {threshold:.1f} B")
    rows = []
    for width in (2, 4, 8, 16, 32):
        cpu = comm_cpu_time(METADATA_BYTES, 50_000, p, 8, width, bdw_cpu)
        pim = comm_pim_time(METADATA_BYTES, 50_000, p, 8, width, bdw_cpu, bdw_pim)
        winner = "PIM" if pim < cpu else "CPU"
        rows.append([width, format_time_ns(cpu), format_time_ns(pim), winner])
    print(format_table(["row width (B)", "Eq.1 CPU", "Eq.2 PIM", "winner"], rows))


def strategies() -> None:
    print("\n— Fig. 12a: strategy comparison on the real CH layouts —")
    rows = []
    for point in fig12.defrag_strategy_comparison():
        rows.append([point.strategy, format_time_ns(point.total_time)])
    print(format_table(["strategy", "defragmentation time"], rows))


def period_selection() -> None:
    print("\n— Fig. 11b: choosing the defragmentation period —")
    rows = []
    for point in fig11.fragmentation_vs_defrag():
        rows.append(
            [
                f"{point.num_txns:,}",
                format_time_ns(point.fragmentation_overhead),
                format_time_ns(point.defrag_overhead),
                f"{point.ratio:.2f}x",
            ]
        )
    print(format_table(
        ["txns between defrags", "fragmentation penalty", "defrag cost", "ratio"],
        rows,
    ))
    print("  (the paper defragments every 10k transactions — roughly where\n"
          "   the fragmentation penalty starts to dominate)")


def main() -> None:
    breakeven()
    strategies()
    period_selection()


if __name__ == "__main__":
    main()
