#!/usr/bin/env python
"""Architecture comparison (§6.1, §7.5): PUSHtap's controller vs the
original general-purpose PIM architecture.

Runs the same filter scan functionally under both memory controllers and
sweeps the analytic Q6 cost across WRAM sizes (Fig. 12b). Also shows the
launch-request protocol at work (Fig. 7b).
"""

from repro.core.engine import PushTapEngine
from repro.experiments import fig12
from repro.olap.operators import FilterOperation
from repro.pim.pim_unit import Condition
from repro.pim.requests import LaunchRequest, OpType, decode_launch
from repro.report import format_percent, format_table, format_time_ns


def protocol_demo() -> None:
    print("— Fig. 7b: launch requests disguised as memory writes —")
    request = LaunchRequest(
        OpType.FILTER,
        {"bitmap_offset": 0, "data_offset": 128, "result_offset": 8192,
         "data_width": 4, "condition": Condition("lt", 500).encode()},
    )
    payload = request.encode()
    print(f"  64-byte payload, type byte = {payload[0]} (FILTER)")
    decoded = decode_launch(payload)
    print(f"  decoded: data_width={decoded.get('data_width')}, "
          f"condition={Condition.decode(decoded.get('condition'))}")
    print(f"  needs bank handover: {decoded.op.needs_bank_handover} "
          "(compute phases leave DRAM to the CPU)\n")


def functional_comparison() -> None:
    print("— Functional scan under both controllers (same data, same ops) —")
    rows = []
    for kind in ("pushtap", "original"):
        engine = PushTapEngine.build(
            scale=3e-5, controller_kind=kind, defrag_period=0, block_rows=256
        )
        table = engine.table("orderline")
        ts = engine.db.oracle.read_timestamp()
        table.snapshots.update_to(ts)
        op = FilterOperation(
            table.storage, engine.units, "ol_quantity",
            Condition("le", 5), table.region_rows(),
        )
        result = engine.olap.executor.execute(op)
        matches = sum(int(m.sum()) for m in op.masks.values())
        rows.append(
            [
                kind,
                matches,
                format_time_ns(result.total_time),
                format_time_ns(result.cpu_blocked_time),
                format_percent(result.control_fraction),
            ]
        )
    print(format_table(
        ["controller", "matches", "scan time", "CPU blocked", "control share"], rows
    ))
    print("  (identical results; the original architecture pays per-unit\n"
          "   messaging and blocks the CPU through compute phases)\n")


def wram_sweep() -> None:
    print("— Fig. 12b: Q6 vs WRAM size at paper scale (analytic) —")
    rows = []
    for point in fig12.wram_size_sweep():
        rows.append(
            [
                point.controller,
                f"{point.wram_bytes // 1024} kB",
                format_time_ns(point.q6_time),
                format_percent(point.control_fraction),
            ]
        )
    print(format_table(["controller", "WRAM", "Q6 time", "mode-switch share"], rows))


def main() -> None:
    protocol_demo()
    functional_comparison()
    wram_sweep()


if __name__ == "__main__":
    main()
