#!/usr/bin/env python
"""Mixed HTAP workload: freshness, isolation, and MVCC snapshots.

Interleaves TPC-C transactions with analytical queries and demonstrates
the single-instance design goals of §1:

* **data freshness** — a query issued right after a commit sees it;
* **snapshot consistency** — queries never see half-applied updates, and
  results match a row-by-row MVCC reference;
* **performance isolation** — the CPU is blocked only for PIM load
  phases, not compute phases.

Pass ``--metrics-out metrics.json`` to record per-layer telemetry
(OLTP txn histograms, OLAP operator spans, PIM phase spans, defrag
counters) and dump it as JSON; view it with
``python -m repro.experiments report-metrics metrics.json``.
"""

import argparse

from repro import PushTapEngine, telemetry
from repro.olap.queries import _Q6_DELIVERY_HI, _Q6_DELIVERY_LO, _Q6_QTY_HI, _Q6_QTY_LO
from repro.report import format_table, format_time_ns
from repro.telemetry import export as telemetry_export


def q6_reference(engine: PushTapEngine) -> int:
    """Row-by-row Q6 over the MVCC-visible rows (ground truth)."""
    table = engine.table("orderline")
    ts = engine.db.oracle.read_timestamp()
    total = 0
    for row_id in range(table.num_rows):
        row = table.read_row(row_id, ts)
        if (
            _Q6_DELIVERY_LO <= row["ol_delivery_d"] < _Q6_DELIVERY_HI
            and _Q6_QTY_LO <= row["ol_quantity"] <= _Q6_QTY_HI
        ):
            total += row["ol_amount"]
    return total


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="record telemetry and dump metrics JSON to PATH",
    )
    args = parser.parse_args()
    if args.metrics_out:
        # Fail fast on an unwritable path rather than after the run.
        with open(args.metrics_out, "a", encoding="utf-8"):
            pass
    registry = telemetry.enable() if args.metrics_out else None

    engine = PushTapEngine.build(scale=3e-5, defrag_period=150, block_rows=256)
    driver = engine.make_driver(seed=5)

    print("Interleaving transaction batches with Q6 (freshness check)...")
    rows = []
    for batch in range(4):
        engine.run_transactions(60, driver)
        result = engine.query("Q6")
        reference = q6_reference(engine)
        fresh = "yes" if result.rows["revenue"] == reference else "NO"
        rows.append(
            [
                batch,
                engine.table("orderline").num_rows,
                result.rows["revenue"],
                reference,
                fresh,
                format_time_ns(result.total_time),
            ]
        )
    print(
        format_table(
            ["batch", "orderlines", "Q6 (PIM)", "Q6 (reference)", "fresh?", "query time"],
            rows,
        )
    )

    print("\nPerformance isolation (§6.2): per-query CPU-blocked time")
    result = engine.query("Q6")
    scan = result.timing.scan
    print(f"  total query time:   {format_time_ns(result.total_time)}")
    print(f"  CPU blocked for:    {format_time_ns(scan.cpu_blocked_time)} "
          f"({scan.cpu_blocked_time / scan.total_time:.0%} of the scan — "
          "load phases only; compute phases run concurrently with OLTP)")

    print("\nSnapshot bookkeeping:")
    table = engine.table("orderline")
    print(f"  visible rows in snapshot: {table.snapshots.visible_count()}")
    print(f"  delta region high-water:  {table.mvcc.delta.high_water_rows} rows")
    print(f"  stale versions awaiting defragmentation: "
          f"{table.mvcc.stale_version_count()}")

    print(f"\nTotals: {engine.stats.transactions} transactions, "
          f"{engine.stats.queries} queries, "
          f"{engine.stats.defrag_runs} defragmentation runs")

    if registry is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(telemetry_export.to_json(registry))
        print(f"\nmetrics written to {args.metrics_out}")
        telemetry.disable()


if __name__ == "__main__":
    main()
