#!/usr/bin/env python
"""Quickstart: build a PUSHtap engine, run transactions, run queries.

Builds the CH-benCHmark database at a reduced scale inside the simulated
PIM rank, executes a TPC-C transaction mix through the MVCC engine, then
runs the three analytical queries snapshot-consistently on the PIM units.
"""

from repro import PushTapEngine
from repro.report import format_table, format_time_ns


def main() -> None:
    print("Building PUSHtap engine (CH-benCHmark at scale 5e-5, th=0.6)...")
    engine = PushTapEngine.build(scale=5e-5, defrag_period=300, block_rows=256)
    print(f"  tables: {len(engine.db.tables)}, PIM units: {engine.num_units}")
    print(
        format_table(
            ["table", "rows", "parts", "stored B/row"],
            [
                [name, t.num_rows, t.layout.num_parts, t.layout.bytes_per_row()]
                for name, t in engine.db.tables.items()
            ],
        )
    )

    print("\nRunning 200 TPC-C transactions (Payment + New-Order)...")
    engine.run_transactions(200)
    print(f"  mean transaction latency: {format_time_ns(engine.oltp.mean_txn_time)}")
    print(f"  defragmentation runs so far: {engine.stats.defrag_runs}")

    print("\nRunning analytical queries on the PIM units...")
    for name in ("Q1", "Q6", "Q9"):
        result = engine.query(name)
        timing = result.timing
        print(f"  {name}: {format_time_ns(result.total_time)} "
              f"(consistency {format_time_ns(timing.consistency_time)}, "
              f"scan {format_time_ns(timing.scan.total_time)}, "
              f"{timing.scan.phases} two-phase rounds)")
        if name == "Q1":
            print(f"       {len(result.rows)} groups, e.g. "
                  f"{dict(list(result.rows.items())[:2])}")
        else:
            print(f"       {result.rows}")

    print("\nDefragmenting (hybrid strategy, §5.3)...")
    results = engine.defragment()
    moved = sum(r.moved_rows for r in results.values())
    print(f"  moved {moved} newest-version rows back to the data region")

    check = engine.query("Q6")
    print(f"  Q6 after defragmentation: {check.rows} (results unchanged)")


if __name__ == "__main__":
    main()
