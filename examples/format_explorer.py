#!/usr/bin/env python
"""Explore the unified data format (§4): layouts, th trade-off, placement.

Walks through the paper's own CUSTOMER example (Fig. 3/4), sweeps the
bin-packing threshold over the full CH-benCHmark, and shows how the
block-circulant placement spreads one column over all devices.
"""

from repro.core.config import dimm_system
from repro.experiments import fig8
from repro.format.binpack import compact_aligned_layout_with_report
from repro.format.circulant import BlockCirculantPlacement
from repro.format.schema import Column, TableSchema
from repro.report import format_percent, format_table


def paper_example() -> None:
    """Reproduce Fig. 4's compact aligned format generation."""
    print("— Fig. 4: the paper's CUSTOMER example (d=4, th=3/4) —")
    schema = TableSchema.of(
        "customer",
        [
            Column("id", 2),
            Column("d_id", 2),
            Column("w_id", 4),
            Column("zip", 9, kind="bytes"),
            Column("state", 2),
            Column("credit", 2),
        ],
    )
    layout, report = compact_aligned_layout_with_report(
        schema, ["id", "d_id", "w_id", "state"], 4, 0.75
    )
    for part in layout.parts:
        slots = []
        for slot in part.slots:
            fields = "+".join(
                f"{f.column}[{f.col_offset}:{f.col_offset + f.length}]"
                for f in slot.fields
            ) or "(pad)"
            slots.append(fields)
        print(f"  part {part.index} (W={part.row_width}B): " + " | ".join(slots))
    print(f"  padding: {report.padding_bytes_per_row} B/row of "
          f"{report.stored_bytes_per_row} B stored\n")


def th_tradeoff() -> None:
    """Fig. 8a: the CPU/PIM bandwidth trade-off across th."""
    print("— Fig. 8a: threshold trade-off on the full CH-benCHmark —")
    rows = []
    for point in fig8.th_sweep():
        rows.append(
            [
                point.th,
                format_percent(point.cpu_bandwidth),
                format_percent(point.pim_bandwidth),
                point.total_parts,
            ]
        )
    print(format_table(["th", "CPU eff bw", "PIM eff bw", "total parts"], rows))
    print("  (the paper picks th = 0.6: high PIM bandwidth at workable CPU cost)\n")


def circulant_placement() -> None:
    """Fig. 5: block-circulant placement spreads columns over devices."""
    print("— Fig. 5: block-circulant placement (B = 1024) —")
    placement = BlockCirculantPlacement(num_devices=4, block_rows=1024)
    rows = []
    for block in range(4):
        row = [f"block {block} (rows {block * 1024}-{block * 1024 + 1023})"]
        row += [placement.device_for(block * 1024, slot) for slot in range(4)]
        rows.append(row)
    print(format_table(["rows", "col0 dev", "col1 dev", "col2 dev", "col3 dev"], rows))
    for rows_scanned in (1024, 2048, 4096):
        frac = placement.scan_parallelism(rows_scanned)
        print(f"  scanning one column over {rows_scanned} rows keeps "
              f"{format_percent(frac)} of PIM units busy")


def main() -> None:
    paper_example()
    th_tradeoff()
    circulant_placement()


if __name__ == "__main__":
    main()
