#!/usr/bin/env python
"""A tour of the transaction engine: MVCC versions, aborts, deliveries.

Walks a single customer's row through its MVCC life-cycle: committed
Payments create delta-region versions; an aborted Payment rolls back
without a trace; a Delivery tombstones NEWORDER rows; defragmentation
folds everything back into the data region.
"""

from repro import PushTapEngine
from repro.oltp.tpcc import delivery, new_order, payment
from repro.report import format_table


def customer_state(engine, key):
    ts = engine.db.oracle.read_timestamp()
    row_id = engine.db.index("customer_pk").probe(key).row_id
    row = engine.table("customer").read_row(row_id, ts)
    chain = engine.table("customer").mvcc.chain_length(row_id)
    return row, chain


def main() -> None:
    engine = PushTapEngine.build(scale=3e-5, defrag_period=0, block_rows=256)
    driver = engine.make_driver(seed=12)

    params = driver.next_payment()
    key = (params.w_id, params.d_id, params.c_id)
    print(f"Following customer {key} through its MVCC life-cycle.\n")

    states = []
    row, chain = customer_state(engine, key)
    states.append(["initial", row["c_balance"], row["c_payment_cnt"], chain])

    engine.execute_transaction(payment(params))
    row, chain = customer_state(engine, key)
    states.append(["after Payment #1 (committed)", row["c_balance"], row["c_payment_cnt"], chain])

    from repro.oltp.tpcc import PaymentParams

    params2 = PaymentParams(key[0], key[1], key[2], amount=500, h_date=params.h_date)
    engine.execute_transaction(payment(params2))
    row, chain = customer_state(engine, key)
    states.append(["after Payment #2 (committed)", row["c_balance"], row["c_payment_cnt"], chain])

    # An aborted payment leaves no trace — the rollback pops the version.
    inner = payment(PaymentParams(key[0], key[1], key[2], 9_999, params.h_date))

    def aborting(ctx):
        inner(ctx)
        ctx.abort("credit check failed")

    result = engine.oltp.execute(aborting)
    row, chain = customer_state(engine, key)
    states.append([f"after Payment #3 (ABORTED={result.aborted})", row["c_balance"], row["c_payment_cnt"], chain])

    print(format_table(
        ["event", "c_balance", "c_payment_cnt", "version chain"], states
    ))

    print("\nNew order + Delivery (tombstones the NEWORDER row):")
    no_params = driver.next_new_order()
    engine.execute_transaction(new_order(no_params))
    d_params = driver.next_delivery()
    neworder = engine.table("neworder")
    neworder.snapshots.update_to(engine.db.oracle.read_timestamp())
    before = neworder.snapshots.visible_count()
    engine.execute_transaction(delivery(d_params))
    neworder.snapshots.update_to(engine.db.oracle.read_timestamp())
    after = neworder.snapshots.visible_count()
    print(f"  visible NEWORDER rows: {before} -> {after} "
          f"({len(neworder.mvcc.tombstoned_rows())} tombstoned)")

    print("\nDefragmentation folds the delta region home:")
    customer = engine.table("customer")
    print(f"  before: delta high-water {customer.mvcc.delta.high_water_rows} rows, "
          f"{customer.mvcc.stale_version_count()} stale versions")
    engine.defragment()
    row, chain = customer_state(engine, key)
    print(f"  after:  delta empty, customer chain length {chain}, "
          f"balance still {row['c_balance']}")


if __name__ == "__main__":
    main()
