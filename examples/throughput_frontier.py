#!/usr/bin/env python
"""A functional miniature of Fig. 10: the OLTP/OLAP trade-off.

Sweeps the transaction/query interleaving ratio on the functional engine
and reports the simulated tpmC/QphH operating points — the same
frontier the paper measures, at reduced scale (absolute numbers differ;
the trade-off shape is the point).
"""

from repro import PushTapEngine
from repro.report import format_table
from repro.workloads.driver import MixedWorkload


def main() -> None:
    rows = []
    for txns_per_query in (5, 20, 50, 150):
        engine = PushTapEngine.build(
            scale=3e-5, defrag_period=300, block_rows=256, extra_rows=30_000
        )
        workload = MixedWorkload(
            engine, txns_per_query=txns_per_query, queries=("Q1", "Q6", "Q9")
        )
        report = workload.run(num_queries=6)
        rows.append(
            [
                txns_per_query,
                report.transactions,
                report.queries,
                f"{report.oltp_tpmc / 1e6:.2f}",
                f"{report.olap_qphh / 1e3:.1f}k",
            ]
        )
    print("Functional throughput operating points (simulated time):")
    print(
        format_table(
            ["txns/query", "txns", "queries", "OLTP (MtpmC)", "OLAP (kQphH)"],
            rows,
        )
    )
    print(
        "\nMore transactions per query interval buys OLTP throughput at the"
        "\ncost of OLAP throughput — the Fig. 10 frontier, functionally."
    )


if __name__ == "__main__":
    main()
