#!/usr/bin/env python
"""Using PUSHtap with your own schema (not CH-benCHmark).

Builds an engine over the HTAPBench banking schema via
``PushTapEngine.build_custom``: you supply the table schemas, the key
columns your analytical queries scan, and the initial rows — the library
generates the compact-aligned layouts, places everything with
block-circulant rotation, and gives you MVCC transactions plus PIM
operators on top.
"""

import numpy as np

from repro.core.engine import PushTapEngine
from repro.olap import plan as qplan
from repro.olap.engine import QueryTiming
from repro.olap.predicates import col, evaluate
from repro.report import format_table, format_time_ns
from repro.workloads.htapbench import htapbench_key_columns, htapbench_schema


def generate_rows(accounts=500, history=3000, seed=9):
    rng = np.random.RandomState(seed)
    return {
        "branch": [
            {"b_id": i + 1, "b_balance": 0, "b_region": i % 4,
             "b_name": b"branch", "b_address": b"addr"}
            for i in range(4)
        ],
        "teller": [
            {"t_id": i + 1, "t_branch_id": i % 4 + 1, "t_balance": 0, "t_name": b"t"}
            for i in range(20)
        ],
        "account": [
            {"a_id": i + 1, "a_branch_id": i % 4 + 1,
             "a_balance": int(rng.randint(0, 100_000)), "a_type": i % 3,
             "a_opened_d": 1000 + i % 500, "a_owner": b"owner", "a_notes": b"notes"}
            for i in range(accounts)
        ],
        "txn_history": [
            {"x_id": i + 1, "x_a_id": i % accounts + 1, "x_t_id": i % 20 + 1,
             "x_b_id": i % 4 + 1, "x_amount": int(rng.randint(1, 900)),
             "x_time": 1000 + i % 900, "x_kind": i % 4, "x_memo": b"memo"}
            for i in range(history)
        ],
    }


def main() -> None:
    schemas = htapbench_schema()
    key_columns = {name: htapbench_key_columns(name) for name in schemas}
    rows = generate_rows()

    engine = PushTapEngine.build_custom(
        schemas,
        key_columns,
        rows,
        block_rows=256,
        index_keys={"account": ("account_pk", lambda r: r["a_id"])},
    )
    print("Custom HTAPBench engine built:")
    print(format_table(
        ["table", "rows", "parts", "key columns"],
        [
            [name, t.num_rows, t.layout.num_parts, len(t.layout.key_columns)]
            for name, t in engine.db.tables.items()
        ],
    ))

    # OLTP: a hand-written transfer transaction through the MVCC engine.
    def transfer(ctx):
        src = ctx.index_lookup("account_pk", 1)
        dst = ctx.index_lookup("account_pk", 2)
        a = ctx.read("account", src, ["a_balance"])
        b = ctx.read("account", dst, ["a_balance"])
        amount = min(500, a["a_balance"])
        ctx.update("account", src, {"a_balance": a["a_balance"] - amount})
        ctx.update("account", dst, {"a_balance": b["a_balance"] + amount})

    result = engine.oltp.execute(transfer)
    print(f"\ntransfer committed in {format_time_ns(result.total_time)} "
          f"({result.rows_written} versions created)")

    # OLAP: recent large withdrawals, summed on the PIM units.
    table = engine.table("txn_history")
    ts = engine.db.oracle.read_timestamp()
    table.snapshots.update_to(ts)
    timing = QueryTiming()
    predicate = (col("x_time") >= 1400) & (col("x_amount") >= 300) & (col("x_kind") == 2)
    masks = evaluate(predicate, engine.olap, table, timing)
    total = engine.olap.aggregate(
        table, "x_amount", qplan.masks_to_indices(masks), 1, timing
    )
    matches = sum(int(m.sum()) for m in masks.values())
    print(f"\nanalytical scan: {matches} matching history rows, "
          f"sum = {int(total[0])}, query time {format_time_ns(timing.total_time)}")

    engine.defragment()
    print("defragmentation folded the delta region home; done.")


if __name__ == "__main__":
    main()
