"""Unit conventions and arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_time_constants_are_nanosecond_based():
    assert units.NS == 1.0
    assert units.US == 1e3
    assert units.MS == 1e6
    assert units.S == 1e9


def test_size_constants():
    assert units.KIB == 1024
    assert units.MIB == 1024 ** 2
    assert units.GIB == 1024 ** 3


def test_gb_per_s_is_identity():
    assert units.gb_per_s(25.6) == 25.6


def test_time_conversions():
    assert units.to_us(1_500.0) == 1.5
    assert units.to_ms(2_500_000.0) == 2.5
    assert units.to_s(3e9) == 3.0


def test_ceil_div_basic():
    assert units.ceil_div(0, 8) == 0
    assert units.ceil_div(1, 8) == 1
    assert units.ceil_div(8, 8) == 1
    assert units.ceil_div(9, 8) == 2


def test_ceil_div_rejects_bad_input():
    with pytest.raises(ValueError):
        units.ceil_div(1, 0)
    with pytest.raises(ValueError):
        units.ceil_div(-1, 8)


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
def test_ceil_div_matches_definition(a, b):
    q = units.ceil_div(a, b)
    assert (q - 1) * b < a <= q * b or (a == 0 and q == 0)


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
def test_round_up_properties(value, multiple):
    rounded = units.round_up(value, multiple)
    assert rounded >= value
    assert rounded % multiple == 0
    assert rounded - value < multiple
